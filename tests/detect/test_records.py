"""Tests for GridSpec, RunningStat and Histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import GridSpec, Histogram, RunningStat


class TestGridSpec:
    def test_cube(self):
        spec = GridSpec.cube(50, half_extent=25.0, depth=50.0)
        assert spec.shape == (50, 50, 50)
        assert spec.lo == (-25.0, -25.0, 0.0)
        assert spec.hi == (25.0, 25.0, 50.0)
        assert spec.voxel_size == (1.0, 1.0, 1.0)
        assert spec.voxel_volume == pytest.approx(1.0)
        assert spec.n_voxels == 125_000

    def test_banana_box(self):
        spec = GridSpec.banana_box(50, spacing=4.0, margin=2.0)
        assert spec.lo[0] == pytest.approx(-2.0)
        assert spec.hi[0] == pytest.approx(6.0)
        assert spec.lo[2] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            GridSpec(shape=(0, 1, 1), lo=(0, 0, 0), hi=(1, 1, 1))
        with pytest.raises(ValueError, match="lo < hi"):
            GridSpec(shape=(2, 2, 2), lo=(0, 0, 0), hi=(1, 0, 1))
        with pytest.raises(ValueError, match="granularity"):
            GridSpec.cube(0, 1.0, 1.0)

    def test_axis_centres(self):
        spec = GridSpec(shape=(2, 2, 4), lo=(0, 0, 0), hi=(2, 2, 4))
        np.testing.assert_allclose(spec.axis_centres(2), [0.5, 1.5, 2.5, 3.5])

    def test_world_to_index_corners(self):
        spec = GridSpec(shape=(10, 10, 10), lo=(0, 0, 0), hi=(10, 10, 10))
        flat, inside = spec.world_to_index(
            np.array([0.0, 9.999, -0.1, 10.0]),
            np.array([0.0, 9.999, 5.0, 5.0]),
            np.array([0.0, 9.999, 5.0, 5.0]),
        )
        np.testing.assert_array_equal(inside, [True, True, False, False])
        assert flat[0] == 0
        assert flat[1] == 999

    def test_deposit_accumulates(self):
        spec = GridSpec(shape=(4, 4, 4), lo=(0, 0, 0), hi=(4, 4, 4))
        grid = spec.zeros()
        x = np.array([0.5, 0.5, 3.5])
        y = np.array([0.5, 0.5, 3.5])
        z = np.array([0.5, 0.5, 3.5])
        spec.deposit(grid, x, y, z, np.array([1.0, 2.0, 5.0]))
        assert grid[0, 0, 0] == pytest.approx(3.0)  # repeated voxel adds
        assert grid[3, 3, 3] == pytest.approx(5.0)
        assert grid.sum() == pytest.approx(8.0)

    def test_deposit_drops_outside(self):
        spec = GridSpec(shape=(2, 2, 2), lo=(0, 0, 0), hi=(1, 1, 1))
        grid = spec.zeros()
        spec.deposit(grid, np.array([5.0]), np.array([5.0]), np.array([5.0]), 1.0)
        assert grid.sum() == 0.0

    def test_deposit_scalar_weight_broadcast(self):
        spec = GridSpec(shape=(2, 2, 2), lo=(0, 0, 0), hi=(2, 2, 2))
        grid = spec.zeros()
        spec.deposit(grid, np.array([0.5, 1.5]), np.array([0.5, 0.5]),
                     np.array([0.5, 0.5]), 2.0)
        assert grid.sum() == pytest.approx(4.0)

    def test_deposit_shape_mismatch(self):
        spec = GridSpec(shape=(2, 2, 2), lo=(0, 0, 0), hi=(1, 1, 1))
        with pytest.raises(ValueError, match="grid shape"):
            spec.deposit(np.zeros((3, 3, 3)), np.array([0.0]), np.array([0.0]),
                         np.array([0.0]), 1.0)


class TestRunningStat:
    def test_unweighted_moments(self):
        s = RunningStat()
        values = np.array([1.0, 2.0, 3.0, 4.0])
        s.add(values)
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(values.var())
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.count == 4

    def test_weighted_mean(self):
        s = RunningStat()
        s.add(np.array([1.0, 3.0]), np.array([3.0, 1.0]))
        assert s.mean == pytest.approx(1.5)

    def test_merge_equals_bulk(self):
        a, b, bulk = RunningStat(), RunningStat(), RunningStat()
        x = np.array([1.0, 5.0, 2.0])
        y = np.array([7.0, 0.5])
        a.add(x)
        b.add(y)
        bulk.add(np.concatenate([x, y]))
        merged = a.merge(b)
        assert merged.mean == pytest.approx(bulk.mean)
        assert merged.variance == pytest.approx(bulk.variance)
        assert merged.minimum == bulk.minimum
        assert merged.maximum == bulk.maximum

    def test_empty_is_nan(self):
        s = RunningStat()
        assert np.isnan(s.mean)
        assert np.isnan(s.variance)
        assert np.isnan(s.std)

    def test_add_empty_noop(self):
        s = RunningStat()
        s.add(np.empty(0))
        assert s.count == 0

    def test_std(self):
        s = RunningStat()
        s.add(np.array([0.0, 2.0]))
        assert s.std == pytest.approx(1.0)


class TestHistogram:
    def test_linear_constructor(self):
        h = Histogram.linear(0.0, 10.0, 5)
        np.testing.assert_allclose(h.edges, [0, 2, 4, 6, 8, 10])
        assert h.total == 0.0

    def test_add_weighted(self):
        h = Histogram.linear(0.0, 10.0, 5)
        h.add(np.array([1.0, 3.0, 3.5]), np.array([1.0, 2.0, 3.0]))
        assert h.counts[0] == pytest.approx(1.0)
        assert h.counts[1] == pytest.approx(5.0)
        assert h.total == pytest.approx(6.0)

    def test_out_of_range_dropped(self):
        h = Histogram.linear(0.0, 1.0, 2)
        h.add(np.array([-1.0, 2.0]))
        assert h.total == 0.0

    def test_merge(self):
        a = Histogram.linear(0.0, 1.0, 2)
        b = Histogram.linear(0.0, 1.0, 2)
        a.add(np.array([0.25]))
        b.add(np.array([0.75]))
        merged = a.merge(b)
        np.testing.assert_allclose(merged.counts, [1.0, 1.0])

    def test_merge_incompatible(self):
        a = Histogram.linear(0.0, 1.0, 2)
        b = Histogram.linear(0.0, 2.0, 2)
        with pytest.raises(ValueError, match="different bin edges"):
            a.merge(b)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(edges=np.array([0.0, 0.0, 1.0]))
        with pytest.raises(ValueError, match="n_bins"):
            Histogram.linear(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="lo < hi"):
            Histogram.linear(1.0, 1.0, 3)

    def test_centres(self):
        h = Histogram.linear(0.0, 4.0, 4)
        np.testing.assert_allclose(h.centres, [0.5, 1.5, 2.5, 3.5])


class TestPathRecords:
    """Per-detected-photon records: sealing, merging, round-trips."""

    @staticmethod
    def _filled(keys=(0,), n_layers=2, rows=3, base=0.0):
        from repro.detect import PathRecords

        records = PathRecords(n_layers)
        for i, key in enumerate(keys):
            lp = np.arange(rows * n_layers, dtype=float).reshape(rows, n_layers)
            lp = lp + base + 10.0 * i
            records.append(
                lp,
                np.full(rows, 0.5 + i),
                lp.sum(axis=1) * 1.4,
                lp.max(axis=1),
                i,
            )
            records.seal(key)
        return records

    def test_append_and_seal(self):
        from repro.detect import PathRecords

        records = PathRecords(2)
        records.append([1.0, 2.0], 0.5, 4.2, 1.0)
        assert not records.is_sealed and records.n_rows == 1
        records.seal(3)
        assert records.is_sealed
        assert records.segment_keys == (3,)
        np.testing.assert_allclose(records.column("layer_paths"), [[1.0, 2.0]])
        np.testing.assert_allclose(records.column("weight"), [0.5])
        assert records.column("detector").dtype == np.int64
        assert records.nbytes > 0

    def test_empty_seal_is_allowed(self):
        from repro.detect import PathRecords

        records = PathRecords(3)
        records.seal(0)
        assert records.n_rows == 0 and records.segment_keys == (0,)
        assert records.column("weight").size == 0

    def test_column_requires_sealed(self):
        from repro.detect import PathRecords

        records = PathRecords(2)
        records.append([1.0, 2.0], 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="seal"):
            records.column("weight")
        with pytest.raises(KeyError):
            self._filled().column("nope")

    def test_duplicate_seal_rejected(self):
        records = self._filled(keys=(1,))
        with pytest.raises(ValueError, match="already sealed"):
            records.seal(1)

    def test_layer_count_validated(self):
        from repro.detect import PathRecords

        records = PathRecords(2)
        with pytest.raises(ValueError, match="layers"):
            records.append([1.0, 2.0, 3.0], 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            PathRecords(0)

    def test_merge_is_key_ordered_regardless_of_operand_order(self):
        a = self._filled(keys=(0, 2))
        b = self._filled(keys=(1, 3), base=100.0)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.segment_keys == (0, 1, 2, 3)
        assert ab == ba  # commutative in effect: canonical row order
        # rows follow segment keys, not insertion order
        np.testing.assert_allclose(
            ab.column("weight"),
            np.concatenate(
                [a._segments[0][1]["weight"], b._segments[0][1]["weight"],
                 a._segments[1][1]["weight"], b._segments[1][1]["weight"]]
            ),
        )

    def test_merge_rejects_duplicates_unsealed_and_foreign(self):
        from repro.detect import PathRecords

        a = self._filled(keys=(0,))
        with pytest.raises(ValueError, match="both sides"):
            a.merge(self._filled(keys=(0,)))
        with pytest.raises(ValueError, match="layers"):
            a.merge(self._filled(keys=(1,), n_layers=3))
        unsealed = PathRecords(2)
        unsealed.append([1.0, 2.0], 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="seal"):
            a.merge(unsealed)
        with pytest.raises(TypeError):
            a.merge("records")

    def test_copy_is_independent_and_equal(self):
        a = self._filled(keys=(0, 1))
        b = a.copy()
        assert a == b
        b._segments[0][1]["weight"][0] += 1.0
        assert a != b

    def test_roundtrip_through_arrays(self):
        from repro.detect import PathRecords

        a = self._filled(keys=(0, 2, 5), rows=4)
        arrays = a.to_arrays()
        back = PathRecords.from_arrays(2, arrays)
        assert back == a
        assert back.segment_keys == (0, 2, 5)
        # restored records stay mergeable (segmentation survived)
        merged = back.merge(self._filled(keys=(1,), base=50.0))
        assert merged.segment_keys == (0, 1, 2, 5)

    def test_from_arrays_validates(self):
        from repro.detect import PathRecords

        arrays = self._filled(keys=(0, 1)).to_arrays()
        bad = dict(arrays, lengths=arrays["lengths"][:1])
        with pytest.raises(ValueError, match="matching"):
            PathRecords.from_arrays(2, bad)
        bad = dict(arrays, weight=arrays["weight"][:-1])
        with pytest.raises(ValueError, match="rows"):
            PathRecords.from_arrays(2, bad)
        bad = dict(arrays, keys=np.array([0, 0]))
        with pytest.raises(ValueError, match="duplicate"):
            PathRecords.from_arrays(2, bad)
