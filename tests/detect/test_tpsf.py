"""Tests for TPSF extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecordConfig, SimulationConfig, Tally, run_batch_vectorized, task_rng
from repro.detect import tpsf, tpsf_moments
from repro.sources import PencilBeam
from repro.tissue.optical import SPEED_OF_LIGHT_MM_PER_NS


class TestTpsf:
    def test_requires_histogram(self):
        with pytest.raises(ValueError, match="pathlength histogram"):
            tpsf(Tally(n_layers=1))

    def test_requires_photons(self):
        t = Tally(n_layers=1, records=RecordConfig(pathlength_bins=(0, 10, 5)))
        with pytest.raises(ValueError, match="empty"):
            tpsf(t)

    def test_axis_conversion(self):
        t = Tally(n_layers=1, records=RecordConfig(pathlength_bins=(0.0, 10.0, 5)))
        t.n_launched = 100
        t.pathlength_hist.add(np.array([5.0]), np.array([2.0]))
        times, intensity = tpsf(t)
        np.testing.assert_allclose(
            times, t.pathlength_hist.centres / SPEED_OF_LIGHT_MM_PER_NS
        )
        # Integral over time recovers detected weight per photon.
        dt = np.diff(t.pathlength_hist.edges) / SPEED_OF_LIGHT_MM_PER_NS
        assert (intensity * dt).sum() == pytest.approx(2.0 / 100)

    def test_moments_empty(self):
        t = Tally(n_layers=1, records=RecordConfig(pathlength_bins=(0, 10, 5)))
        t.n_launched = 10
        m = tpsf_moments(t)
        assert np.isnan(m["mean_ns"])
        assert m["total_weight_fraction"] == 0.0

    def test_moments_single_bin(self):
        t = Tally(n_layers=1, records=RecordConfig(pathlength_bins=(0.0, 10.0, 10)))
        t.n_launched = 4
        t.pathlength_hist.add(np.array([2.5, 2.6]), np.array([1.0, 1.0]))
        m = tpsf_moments(t)
        assert m["mean_ns"] == pytest.approx(2.5 / SPEED_OF_LIGHT_MM_PER_NS)
        assert m["total_weight_fraction"] == pytest.approx(0.5)

    def test_end_to_end_shape(self, fast_stack):
        """TPSF of a real simulation: rises then decays."""
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            records=RecordConfig(pathlength_bins=(0.0, 20.0, 40)),
        )
        tally = run_batch_vectorized(config, 10_000, task_rng(0, 0))
        times, intensity = tpsf(tally)
        assert intensity.sum() > 0
        peak = int(np.argmax(intensity))
        # The peak is early (strong absorption) but not in the first bin,
        # and the tail decays.
        assert intensity[peak] > intensity[-1]
        assert tpsf_moments(tally)["mean_ns"] > 0
