"""Tests for surface detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import AcceptAll, AnnularDetector, DiscDetector

UP = -1.0  # uz of a photon escaping upwards at normal incidence


class TestDiscDetector:
    def test_inside_accepted(self):
        d = DiscDetector(10.0, 0.0, radius=2.0)
        assert d.accepts(np.array([10.0]), np.array([0.0]), np.array([UP]))[0]
        assert d.accepts(np.array([11.9]), np.array([0.0]), np.array([UP]))[0]

    def test_outside_rejected(self):
        d = DiscDetector(10.0, 0.0, radius=2.0)
        assert not d.accepts(np.array([12.1]), np.array([0.0]), np.array([UP]))[0]
        assert not d.accepts(np.array([0.0]), np.array([0.0]), np.array([UP]))[0]

    def test_boundary_inclusive(self):
        d = DiscDetector(0.0, 0.0, radius=1.0)
        assert d.accepts(np.array([1.0]), np.array([0.0]), np.array([UP]))[0]

    def test_numerical_aperture(self):
        d = DiscDetector(0.0, 0.0, radius=1.0, numerical_aperture=0.5)
        # Exit angle 60 deg from normal: sin = 0.866 > NA -> rejected.
        steep = -np.cos(np.deg2rad(60.0))
        assert not d.accepts(np.array([0.0]), np.array([0.0]), np.array([steep]))[0]
        # Exit angle 20 deg: sin = 0.34 < NA -> accepted.
        shallow = -np.cos(np.deg2rad(20.0))
        assert d.accepts(np.array([0.0]), np.array([0.0]), np.array([shallow]))[0]

    def test_spacing_from_origin(self):
        assert DiscDetector(3.0, 4.0, radius=1.0).spacing_from_origin == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="radius"):
            DiscDetector(0.0, 0.0, radius=0.0)
        with pytest.raises(ValueError, match="numerical_aperture"):
            DiscDetector(0.0, 0.0, radius=1.0, numerical_aperture=1.5)

    def test_vectorised(self, rng):
        d = DiscDetector(5.0, 0.0, radius=1.0)
        x = rng.uniform(-10, 10, 1000)
        y = rng.uniform(-10, 10, 1000)
        uz = np.full(1000, UP)
        mask = d.accepts(x, y, uz)
        expected = (x - 5.0) ** 2 + y**2 <= 1.0
        np.testing.assert_array_equal(mask, expected)


class TestAnnularDetector:
    def test_ring_geometry(self):
        d = AnnularDetector(2.0, 3.0)
        assert d.accepts(np.array([2.5]), np.array([0.0]), np.array([UP]))[0]
        assert not d.accepts(np.array([1.9]), np.array([0.0]), np.array([UP]))[0]
        assert not d.accepts(np.array([3.0]), np.array([0.0]), np.array([UP]))[0]

    def test_azimuthal_symmetry(self):
        d = AnnularDetector(2.0, 3.0)
        for phi in np.linspace(0, 2 * np.pi, 13):
            x, y = 2.5 * np.cos(phi), 2.5 * np.sin(phi)
            assert d.accepts(np.array([x]), np.array([y]), np.array([UP]))[0]

    def test_mean_radius_and_area(self):
        d = AnnularDetector(2.0, 4.0)
        assert d.mean_radius == pytest.approx(3.0)
        assert d.area == pytest.approx(np.pi * (16 - 4))

    def test_validation(self):
        with pytest.raises(ValueError, match="rho_min"):
            AnnularDetector(-1.0, 2.0)
        with pytest.raises(ValueError, match="rho_max"):
            AnnularDetector(2.0, 2.0)

    def test_offset_centre(self):
        d = AnnularDetector(1.0, 2.0, x0=10.0)
        assert d.accepts(np.array([11.5]), np.array([0.0]), np.array([UP]))[0]
        assert not d.accepts(np.array([1.5]), np.array([0.0]), np.array([UP]))[0]


class TestAcceptAll:
    def test_everything_accepted(self, rng):
        d = AcceptAll()
        x = rng.uniform(-100, 100, 50)
        mask = d.accepts(x, x, np.full(50, UP))
        assert mask.all()
        assert mask.shape == (50,)
