"""Tests for time/pathlength gating."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detect import PathlengthGate, TimeGate, open_gate
from repro.tissue.optical import SPEED_OF_LIGHT_MM_PER_NS


class TestPathlengthGate:
    def test_window(self):
        gate = PathlengthGate(10.0, 20.0)
        lengths = np.array([5.0, 10.0, 15.0, 20.0, 25.0])
        np.testing.assert_array_equal(
            gate.accepts(lengths), [False, True, True, False, False]
        )

    def test_open_by_default(self):
        gate = PathlengthGate()
        assert gate.is_open
        assert gate.accepts(np.array([0.0, 1e9])).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="l_min"):
            PathlengthGate(-1.0, 2.0)
        with pytest.raises(ValueError, match="l_max"):
            PathlengthGate(2.0, 2.0)

    def test_not_open_when_bounded(self):
        assert not PathlengthGate(0.0, 10.0).is_open


class TestTimeGate:
    def test_conversion_to_pathlength(self):
        gate = TimeGate(t_min=1.0, t_max=2.0)
        pl = gate.to_pathlength_gate()
        assert pl.l_min == pytest.approx(SPEED_OF_LIGHT_MM_PER_NS)
        assert pl.l_max == pytest.approx(2 * SPEED_OF_LIGHT_MM_PER_NS)

    def test_accepts_matches_conversion(self):
        gate = TimeGate(t_min=0.5, t_max=1.5)
        lengths = np.linspace(0, 3 * SPEED_OF_LIGHT_MM_PER_NS, 50)
        np.testing.assert_array_equal(
            gate.accepts(lengths), gate.to_pathlength_gate().accepts(lengths)
        )

    def test_open(self):
        assert TimeGate().is_open
        assert not TimeGate(0.0, 5.0).is_open

    def test_validation(self):
        with pytest.raises(ValueError, match="t_min"):
            TimeGate(-0.1, 1.0)
        with pytest.raises(ValueError, match="t_max"):
            TimeGate(1.0, 0.5)

    def test_infinite_upper_bound(self):
        gate = TimeGate(t_min=1.0)
        assert math.isinf(gate.to_pathlength_gate().l_max)


def test_open_gate_helper():
    gate = open_gate()
    assert gate.is_open
    assert gate.accepts(np.array([1e12]))[0]
