"""Tests for derived physical quantities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecordConfig, Tally
from repro.detect import (
    layer_absorption_report,
    mean_time_of_flight,
    radial_reflectance,
)
from repro.tissue import Layer, LayerStack, OpticalProperties
from repro.tissue.optical import SPEED_OF_LIGHT_MM_PER_NS


class TestRadialReflectance:
    def test_normalisation_per_area(self):
        t = Tally(n_layers=1, records=RecordConfig(reflectance_rho_bins=(2.0, 2)))
        t.n_launched = 100
        # 5 units of weight into the inner annulus [0,1), 3 into [1,2).
        t.reflectance_rho_hist.add(np.array([0.5]), np.array([5.0]))
        t.reflectance_rho_hist.add(np.array([1.5]), np.array([3.0]))
        rho, r = radial_reflectance(t)
        np.testing.assert_allclose(rho, [0.5, 1.5])
        assert r[0] == pytest.approx(5.0 / (np.pi * 1.0) / 100)
        assert r[1] == pytest.approx(3.0 / (np.pi * 3.0) / 100)

    def test_requires_histogram(self):
        t = Tally(n_layers=1)
        with pytest.raises(ValueError, match="reflectance_rho"):
            radial_reflectance(t)

    def test_requires_photons(self):
        t = Tally(n_layers=1, records=RecordConfig(reflectance_rho_bins=(2.0, 2)))
        with pytest.raises(ValueError, match="empty"):
            radial_reflectance(t)


class TestMeanTimeOfFlight:
    def test_conversion(self):
        t = Tally(n_layers=1)
        t.n_launched = 1
        t.pathlength.add(np.array([SPEED_OF_LIGHT_MM_PER_NS]), np.array([1.0]))
        assert mean_time_of_flight(t) == pytest.approx(1.0)


class TestLayerAbsorptionReport:
    def test_rows(self):
        props = OpticalProperties(mu_a=1.0, mu_s=1.0)
        stack = LayerStack([Layer("top", props, 1.0), Layer("bottom", props, None)])
        t = Tally(n_layers=2)
        t.n_launched = 10
        t.absorbed_by_layer[:] = [4.0, 1.0]
        report = layer_absorption_report(t, stack)
        assert report[0] == {"layer": "top", "absorbed_fraction": pytest.approx(0.4)}
        assert report[1]["absorbed_fraction"] == pytest.approx(0.1)

    def test_mismatch_rejected(self):
        stack = LayerStack.homogeneous(OpticalProperties(mu_a=1.0, mu_s=1.0))
        with pytest.raises(ValueError, match="does not match"):
            layer_absorption_report(Tally(n_layers=2), stack)
