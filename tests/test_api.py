"""Tests of the unified run facade (``repro.api``).

The facade's contract: every execution substrate — serial, thread pool,
process pool, checkpointed resume — routes through one entry point and
produces bit-identical physics for the same request, with telemetry
attaching in exactly one place.
"""

from __future__ import annotations

import json

import pytest

from repro.api import DEFAULT_TASK_SIZE, RunRequest, build_config, run
from repro.observe import MemorySink, Telemetry, validate_event


def _weights(tally):
    return (
        tally.n_launched,
        tally.specular_weight,
        tally.diffuse_reflectance_weight,
        tally.transmittance_weight,
        tally.lost_weight,
        tally.detected_weight,
    )


class TestRunRequest:
    def test_config_xor_model(self, fast_config):
        with pytest.raises(ValueError, match="exactly one"):
            RunRequest()
        with pytest.raises(ValueError, match="exactly one"):
            RunRequest(config=fast_config, model="white_matter")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            RunRequest(model="gray_matter")

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="resume"):
            RunRequest(model="white_matter", resume=True)

    def test_task_size_default_is_worker_independent(self):
        one = RunRequest(model="white_matter", workers=1)
        many = RunRequest(model="white_matter", workers=8)
        assert one.resolved_task_size() == many.resolved_task_size() == DEFAULT_TASK_SIZE

    def test_backend_auto_resolution(self):
        assert RunRequest(model="white_matter").resolved_backend() == "serial"
        assert RunRequest(model="white_matter", workers=4).resolved_backend() == "process"
        assert (
            RunRequest(model="white_matter", workers=4, backend="thread")
            .resolved_backend()
            == "thread"
        )

    def test_build_config_passthrough(self, fast_config):
        assert build_config(RunRequest(config=fast_config)) is fast_config

    def test_build_config_named_model(self):
        config = build_config(RunRequest(model="white_matter", gate=(5.0, 50.0)))
        assert config.gate is not None
        assert config.stack[0].name == "white_matter"

    def test_invalid_span_size_and_sub_batch_rejected(self):
        with pytest.raises(ValueError, match="span_size"):
            RunRequest(model="white_matter", span_size=0)
        with pytest.raises(ValueError, match="sub_batch"):
            RunRequest(model="white_matter", sub_batch=0)
        with pytest.raises(ValueError, match="sub_batch"):
            RunRequest(model="white_matter", sub_batch=-4)

    def test_provenance_records_sub_batch(self):
        assert RunRequest(model="white_matter").provenance()["sub_batch"] is None
        assert (
            RunRequest(model="white_matter", sub_batch=128).provenance()["sub_batch"]
            == 128
        )

    def test_provenance_describes_the_run(self):
        prov = RunRequest(model="adult_head", n_photons=123, seed=9).provenance()
        assert prov["model"] == "adult_head"
        assert prov["n_photons"] == 123
        assert prov["seed"] == 9
        assert prov["task_size"] == DEFAULT_TASK_SIZE
        json.dumps(prov)  # must be JSON-serialisable for save_tally


class TestRunIdentity:
    """Same request, any substrate -> bit-identical tally."""

    def test_serial_vs_thread_pool(self, fast_config):
        base = RunRequest(config=fast_config, n_photons=4000, seed=11, task_size=500)
        serial = run(base)
        threaded = run(
            RunRequest(
                config=fast_config, n_photons=4000, seed=11, task_size=500,
                workers=4, backend="thread",
            )
        )
        assert _weights(serial.tally) == _weights(threaded.tally)

    def test_serial_vs_process_pool(self, fast_config):
        base = RunRequest(config=fast_config, n_photons=2000, seed=5, task_size=500)
        serial = run(base)
        pooled = run(
            RunRequest(
                config=fast_config, n_photons=2000, seed=5, task_size=500,
                workers=2, backend="process",
            )
        )
        assert _weights(serial.tally) == _weights(pooled.tally)

    def test_telemetry_does_not_change_physics(self, fast_config):
        kwargs = dict(config=fast_config, n_photons=2000, seed=3, task_size=500)
        plain = run(RunRequest(**kwargs))
        observed = run(
            RunRequest(**kwargs, telemetry=Telemetry(sink=MemorySink()))
        )
        assert _weights(plain.tally) == _weights(observed.tally)

    def test_disabled_metrics_attaches_nothing(self, fast_config):
        report = run(RunRequest(config=fast_config, n_photons=1000, seed=0))
        assert report.metrics is None


class TestRunTelemetry:
    def test_jsonl_events_schema_valid_and_monotone(self, fast_config, tmp_path):
        path = tmp_path / "events.jsonl"
        report = run(
            RunRequest(
                config=fast_config, n_photons=2000, seed=1, task_size=500,
                workers=2, backend="thread", metrics_path=path,
            )
        )
        events = [json.loads(line) for line in path.read_text().splitlines()]
        for event in events:
            validate_event(event)
        times = [e["t"] for e in events]
        assert times == sorted(times)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "metrics"
        assert "span_start" in kinds and "span_end" in kinds
        assert report.metrics is not None
        counter_names = {c["name"] for c in report.metrics["counters"]}
        assert {"tasks.dispatched", "tasks.completed", "photons.traced"} <= counter_names

    def test_serial_and_pooled_share_event_schema(self, fast_config, tmp_path):
        def kinds_of(workers, backend):
            path = tmp_path / f"{backend}{workers}.jsonl"
            run(
                RunRequest(
                    config=fast_config, n_photons=1000, seed=1, task_size=500,
                    workers=workers, backend=backend, metrics_path=path,
                )
            )
            return {
                json.loads(line)["event"] for line in path.read_text().splitlines()
            }

        assert kinds_of(1, "serial") == kinds_of(4, "thread")

    def test_caller_owned_telemetry_not_finished(self, fast_config):
        tel = Telemetry(sink=MemorySink())
        run(RunRequest(config=fast_config, n_photons=1000, seed=0, telemetry=tel))
        # facade must not close a telemetry it does not own: no final
        # "metrics" event until the caller finishes it.
        assert all(e["event"] != "metrics" for e in tel.sink.events)
        snap = tel.finish()
        assert tel.sink.events[-1]["event"] == "metrics"
        assert snap["counters"]


class TestRunCheckpoint:
    def test_resume_through_facade(self, fast_config, tmp_path):
        ck = tmp_path / "ck"
        first = run(
            RunRequest(
                config=fast_config, n_photons=1500, seed=2, task_size=500,
                checkpoint=ck,
            )
        )
        # a second run over the same directory must be refused without resume
        with pytest.raises(ValueError, match="resume"):
            run(
                RunRequest(
                    config=fast_config, n_photons=1500, seed=2, task_size=500,
                    checkpoint=ck,
                )
            )
        resumed = run(
            RunRequest(
                config=fast_config, n_photons=1500, seed=2, task_size=500,
                checkpoint=ck, resume=True,
            )
        )
        assert resumed.n_tasks == first.n_tasks
        assert _weights(first.tally) == _weights(resumed.tally)
