"""Tests for the modified Beer-Lambert law module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inverse import (
    EXTINCTION_HB,
    absorption_change,
    concentration_change,
    haemoglobin_changes,
)


class TestAbsorptionChange:
    def test_inverse_of_forward(self):
        # forward: delta_OD = delta_mu_a * rho * DPF
        delta_mu_a = 0.003
        rho, dpf = 30.0, 6.0
        delta_od = delta_mu_a * rho * dpf
        assert absorption_change(delta_od, rho, dpf) == pytest.approx(delta_mu_a)

    def test_validation(self):
        with pytest.raises(ValueError):
            absorption_change(0.1, 0.0, 6.0)
        with pytest.raises(ValueError):
            absorption_change(0.1, 30.0, -1.0)


class TestConcentrationChange:
    def test_scaling(self):
        delta_c = concentration_change(0.6, rho=30.0, dpf=6.0, extinction=100.0)
        assert delta_c == pytest.approx(0.6 / (30.0 * 6.0 * 100.0))

    def test_validation(self):
        with pytest.raises(ValueError, match="extinction"):
            concentration_change(0.1, 30.0, 6.0, 0.0)


class TestHaemoglobinChanges:
    def synthesize(self, d_hbo2, d_hbr, rho=30.0, dpf=None):
        """Forward MBLL: build delta_OD from known concentration changes."""
        dpf = dpf or {760: 6.2, 850: 5.6}
        delta_od = {}
        for wl in (760, 850):
            d_mu_a = (
                EXTINCTION_HB[wl]["HbO2"] * d_hbo2 + EXTINCTION_HB[wl]["HbR"] * d_hbr
            )
            delta_od[wl] = d_mu_a * rho * dpf[wl]
        return delta_od, dpf

    def test_round_trip(self):
        truth = (2e-6, -1e-6)  # a classic activation response: HbO2 up, HbR down
        delta_od, dpf = self.synthesize(*truth)
        result = haemoglobin_changes(delta_od, rho=30.0, dpf=dpf)
        assert result.delta_hbo2 == pytest.approx(truth[0], rel=1e-9)
        assert result.delta_hbr == pytest.approx(truth[1], rel=1e-9)

    def test_derived_signals(self):
        delta_od, dpf = self.synthesize(2e-6, -1e-6)
        result = haemoglobin_changes(delta_od, rho=30.0, dpf=dpf)
        assert result.delta_total == pytest.approx(1e-6, rel=1e-9)
        assert result.delta_diff == pytest.approx(3e-6, rel=1e-9)

    def test_dpf_matters(self):
        """Wrong DPF -> wrong concentrations: why the paper's model exists."""
        truth = (2e-6, -1e-6)
        delta_od, dpf = self.synthesize(*truth)
        wrong_dpf = {wl: v * 2.0 for wl, v in dpf.items()}
        wrong = haemoglobin_changes(delta_od, rho=30.0, dpf=wrong_dpf)
        assert wrong.delta_hbo2 == pytest.approx(truth[0] / 2.0, rel=1e-9)

    def test_needs_exactly_two_wavelengths(self):
        with pytest.raises(ValueError, match="exactly 2"):
            haemoglobin_changes({760: 0.1}, rho=30.0, dpf={760: 6.0})

    def test_missing_extinction(self):
        with pytest.raises(ValueError, match="missing"):
            haemoglobin_changes(
                {760: 0.1, 999: 0.2}, rho=30.0, dpf={760: 6.0, 999: 6.0}
            )

    def test_extinction_table_sane(self):
        # 760 nm is HbR-dominant, 850 nm HbO2-dominant (opposite sides of
        # the 800 nm isosbestic point) - the condition for a stable solve.
        assert EXTINCTION_HB[760]["HbR"] > EXTINCTION_HB[760]["HbO2"]
        assert EXTINCTION_HB[850]["HbO2"] > EXTINCTION_HB[850]["HbR"]
