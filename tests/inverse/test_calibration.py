"""Tests for optode calibration (the paper's stated future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion import mean_time_of_flight_theory, reflectance_farrell
from repro.inverse import calibrate_spacing, detector_sensitivities
from repro.tissue import OpticalProperties

MEDIUM = OpticalProperties.from_reduced(mu_a=0.02, mu_s_reduced=1.5, g=0.9, n=1.4)


class TestSpacingCalibration:
    def synthetic_tof(self, true_offset: float, nominal: np.ndarray) -> np.ndarray:
        return np.array(
            [mean_time_of_flight_theory(s + true_offset, MEDIUM) for s in nominal]
        )

    def test_zero_offset(self):
        nominal = np.array([15.0, 25.0, 35.0])
        cal = calibrate_spacing(nominal, self.synthetic_tof(0.0, nominal), MEDIUM)
        assert cal.offset == pytest.approx(0.0, abs=0.05)

    @pytest.mark.parametrize("true_offset", [-3.0, 2.0, 5.0])
    def test_recovers_offset(self, true_offset):
        nominal = np.array([15.0, 20.0, 25.0, 30.0])
        cal = calibrate_spacing(nominal, self.synthetic_tof(true_offset, nominal), MEDIUM)
        assert cal.offset == pytest.approx(true_offset, abs=0.1)
        assert cal.residual_rms < 1e-3

    def test_corrected_spacings(self):
        nominal = np.array([20.0, 30.0])
        cal = calibrate_spacing(nominal, self.synthetic_tof(2.0, nominal), MEDIUM)
        np.testing.assert_allclose(cal.corrected(nominal), nominal + cal.offset)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            calibrate_spacing(np.array([1.0, 2.0]), np.array([1.0]), MEDIUM)
        with pytest.raises(ValueError, match=">= 2"):
            calibrate_spacing(np.array([10.0]), np.array([1.0]), MEDIUM)
        with pytest.raises(ValueError, match="> 0"):
            calibrate_spacing(np.array([-1.0, 10.0]), np.array([1.0, 1.0]), MEDIUM)


class TestDetectorSensitivities:
    def test_unit_gain_for_perfect_detectors(self):
        spacings = np.array([10.0, 20.0, 30.0])
        intensity = np.asarray(reflectance_farrell(spacings, MEDIUM)) * 2.5
        gains = detector_sensitivities(
            spacings, intensity, MEDIUM, detector_area=2.5
        )
        np.testing.assert_allclose(gains, 1.0, rtol=1e-12)

    def test_recovers_per_detector_gains(self):
        spacings = np.array([10.0, 20.0, 30.0])
        true_gains = np.array([0.8, 1.0, 1.3])
        intensity = np.asarray(reflectance_farrell(spacings, MEDIUM)) * true_gains
        gains = detector_sensitivities(spacings, intensity, MEDIUM)
        np.testing.assert_allclose(gains, true_gains, rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal shapes"):
            detector_sensitivities(np.array([1.0]), np.array([1.0, 2.0]), MEDIUM)
        with pytest.raises(ValueError, match="detector_area"):
            detector_sensitivities(
                np.array([10.0]), np.array([1.0]), MEDIUM, detector_area=0.0
            )


class TestEndToEndCalibration:
    def test_mc_driven_spacing_calibration(self):
        """Detect a probe-position error using MC 'measurements'.

        The 'instrument' reports nominal spacings, but the simulated data
        were generated at spacings shifted by +2 mm.  The calibration must
        find the shift.
        """
        from repro.core import RouletteConfig, Simulation, SimulationConfig
        from repro.detect import AnnularDetector, mean_time_of_flight
        from repro.sources import PencilBeam
        from repro.tissue import LayerStack

        medium = OpticalProperties.from_reduced(
            mu_a=0.05, mu_s_reduced=2.0, g=0.9, n=1.0
        )
        true_offset = 2.0
        nominal = np.array([3.0, 5.0, 7.0])
        measured = []
        for rho_nominal in nominal:
            rho_true = rho_nominal + true_offset
            config = SimulationConfig(
                stack=LayerStack.homogeneous(medium),
                source=PencilBeam(),
                detector=AnnularDetector(rho_true - 0.5, rho_true + 0.5),
                roulette=RouletteConfig(threshold=1e-3, boost=10),
            )
            tally = Simulation(config).run(40_000, seed=int(rho_nominal))
            assert tally.detected_count > 100
            measured.append(mean_time_of_flight(tally))
        cal = calibrate_spacing(nominal, np.array(measured), medium)
        assert cal.offset == pytest.approx(true_offset, abs=1.0)
