"""Tests for optical-property fitting (round trips through the forward model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion import reflectance_farrell
from repro.inverse import fit_optical_properties, mu_a_from_slope
from repro.tissue import OpticalProperties

TRUTH = OpticalProperties.from_reduced(mu_a=0.02, mu_s_reduced=1.5, g=0.9, n=1.4)
RHO = np.linspace(2.0, 25.0, 24)


def synthetic_data(amplitude=1.0, noise=0.0, seed=0):
    r = amplitude * np.asarray(reflectance_farrell(RHO, TRUTH))
    if noise:
        rng = np.random.default_rng(seed)
        r = r * np.exp(rng.normal(0.0, noise, r.shape))
    return r


class TestFitRoundTrip:
    def test_noise_free_exact_recovery(self):
        fit = fit_optical_properties(RHO, synthetic_data(), n=1.4, g=0.9)
        assert fit.mu_a == pytest.approx(TRUTH.mu_a, rel=1e-3)
        assert fit.mu_s_reduced == pytest.approx(TRUTH.mu_s_reduced, rel=1e-3)
        assert fit.amplitude == pytest.approx(1.0, rel=1e-3)
        assert fit.residual_rms < 1e-6

    def test_amplitude_recovered(self):
        fit = fit_optical_properties(RHO, synthetic_data(amplitude=3.7), n=1.4, g=0.9)
        assert fit.amplitude == pytest.approx(3.7, rel=1e-2)
        assert fit.mu_a == pytest.approx(TRUTH.mu_a, rel=1e-2)

    def test_robust_to_multiplicative_noise(self):
        fit = fit_optical_properties(
            RHO, synthetic_data(noise=0.05, seed=3), n=1.4, g=0.9
        )
        assert fit.mu_a == pytest.approx(TRUTH.mu_a, rel=0.15)
        assert fit.mu_s_reduced == pytest.approx(TRUTH.mu_s_reduced, rel=0.15)

    def test_fixed_amplitude_mode(self):
        fit = fit_optical_properties(
            RHO, synthetic_data(), n=1.4, g=0.9, fit_amplitude=False
        )
        assert fit.amplitude == 1.0
        assert fit.mu_a == pytest.approx(TRUTH.mu_a, rel=1e-3)

    def test_properties_object(self):
        fit = fit_optical_properties(RHO, synthetic_data(), n=1.4, g=0.9)
        props = fit.properties(g=0.9, n=1.4)
        assert props.mu_s_reduced == pytest.approx(fit.mu_s_reduced)

    def test_distinguishes_media(self):
        other = OpticalProperties.from_reduced(mu_a=0.05, mu_s_reduced=0.8, g=0.9, n=1.4)
        data = np.asarray(reflectance_farrell(RHO, other))
        fit = fit_optical_properties(RHO, data, n=1.4, g=0.9)
        assert fit.mu_a == pytest.approx(0.05, rel=0.02)
        assert fit.mu_s_reduced == pytest.approx(0.8, rel=0.02)


class TestFitValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            fit_optical_properties(RHO, synthetic_data()[:-1])

    def test_too_few_points(self):
        with pytest.raises(ValueError, match=">= 3"):
            fit_optical_properties(RHO[:2], synthetic_data()[:2])

    def test_negative_reflectance(self):
        bad = synthetic_data()
        bad[0] = -1.0
        with pytest.raises(ValueError, match="> 0"):
            fit_optical_properties(RHO, bad)

    def test_non_positive_rho(self):
        with pytest.raises(ValueError, match="rho"):
            fit_optical_properties(
                np.array([0.0, 1.0, 2.0]), np.array([1.0, 1.0, 1.0])
            )


class TestMuAFromSlope:
    def test_recovers_mu_a_at_large_rho(self):
        rho = np.linspace(15.0, 40.0, 20)
        r = np.asarray(reflectance_farrell(rho, TRUTH))
        estimate = mu_a_from_slope(rho, r, TRUTH.mu_s_reduced)
        assert estimate == pytest.approx(TRUTH.mu_a, rel=0.1)

    def test_amplitude_free(self):
        rho = np.linspace(15.0, 40.0, 20)
        r = 42.0 * np.asarray(reflectance_farrell(rho, TRUTH))
        estimate = mu_a_from_slope(rho, r, TRUTH.mu_s_reduced)
        assert estimate == pytest.approx(TRUTH.mu_a, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 2"):
            mu_a_from_slope(np.array([1.0]), np.array([1.0]), 1.0)
        with pytest.raises(ValueError, match="mu_s_reduced"):
            mu_a_from_slope(np.array([1.0, 2.0]), np.array([1.0, 0.5]), 0.0)
        with pytest.raises(ValueError, match="decay"):
            mu_a_from_slope(np.array([1.0, 2.0]), np.array([0.1, 100.0]), 1.0)


class TestFitAgainstMonteCarlo:
    """The full inverse pipeline: MC forward data -> recovered medium."""

    def test_recover_from_mc_reflectance(self):
        from repro.core import (
            RecordConfig,
            RouletteConfig,
            Simulation,
            SimulationConfig,
        )
        from repro.detect import radial_reflectance
        from repro.sources import PencilBeam
        from repro.tissue import LayerStack

        medium = OpticalProperties.from_reduced(
            mu_a=0.05, mu_s_reduced=2.0, g=0.9, n=1.0
        )
        config = SimulationConfig(
            stack=LayerStack.homogeneous(medium),
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
            records=RecordConfig(reflectance_rho_bins=(12.0, 24)),
        )
        tally = Simulation(config).run(120_000, seed=31)
        rho, r_mc = radial_reflectance(tally)
        window = (rho >= 1.5) & (r_mc > 0)
        fit = fit_optical_properties(rho[window], r_mc[window], n=1.0, g=0.9)
        # Diffusion theory vs transport: 15-25% systematic is expected.
        assert fit.mu_a == pytest.approx(medium.mu_a, rel=0.3)
        assert fit.mu_s_reduced == pytest.approx(medium.mu_s_reduced, rel=0.3)
