"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.cluster import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, fired.append, "b")
        q.schedule(1.0, fired.append, "a")
        q.schedule(3.0, fired.append, "c")
        q.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(1.0, fired.append, name)
        q.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        q = EventQueue()
        times = []
        q.schedule(1.5, lambda: times.append(q.now))
        q.schedule(4.0, lambda: times.append(q.now))
        q.run()
        assert times == [1.5, 4.0]

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule(1.0, chain, n + 1)

        q.schedule(0.0, chain, 0)
        count = q.run()
        assert fired == [0, 1, 2, 3]
        assert count == 4
        assert q.now == pytest.approx(3.0)

    def test_absolute_scheduling(self):
        q = EventQueue()
        fired = []
        q.at(5.0, fired.append, "x")
        q.run()
        assert fired == ["x"]
        with pytest.raises(ValueError, match="past"):
            q.at(1.0, fired.append, "y")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            EventQueue().schedule(-1.0, lambda: None)

    def test_event_budget(self):
        q = EventQueue()

        def forever():
            q.schedule(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)

    def test_step_on_empty(self):
        assert EventQueue().step() is False

    def test_len(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        assert len(q) == 1
