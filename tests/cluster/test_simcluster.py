"""Tests for the discrete-event cluster simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Dedicated,
    MasterModel,
    NetworkModel,
    OwnerInterference,
    UniformAvailability,
    efficiency,
    homogeneous_cluster,
    simulate_run,
    speedup,
    speedup_curve,
    static_block,
    static_weighted,
    table2_cluster,
)

FAST_NET = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e12,
                        task_bytes=0, result_bytes=0)
FREE_MASTER = MasterModel(assign_overhead_s=0.0, merge_overhead_s=0.0)


def run_ideal(k, n_photons, task_size, **kw):
    return simulate_run(
        homogeneous_cluster(k), n_photons, task_size,
        network=FAST_NET, master=FREE_MASTER, **kw,
    )


class TestIdealScaling:
    def test_single_machine_time_is_work_over_rate(self):
        from repro.cluster import HOMOGENEOUS_MFLOPS, PHOTONS_PER_MFLOP

        rep = run_ideal(1, 1_000_000, 100_000)
        expected = 1_000_000 / (HOMOGENEOUS_MFLOPS * PHOTONS_PER_MFLOP)
        assert rep.makespan_seconds == pytest.approx(expected, rel=1e-9)

    def test_perfect_speedup_without_overheads(self):
        # k divides the task count evenly and overheads are zero.
        p1 = run_ideal(1, 1_000_000, 100_000).makespan_seconds
        p10 = run_ideal(10, 1_000_000, 100_000).makespan_seconds
        assert speedup(p1, p10) == pytest.approx(10.0, rel=1e-9)

    def test_all_photons_processed(self):
        rep = run_ideal(7, 123_456, 10_000)
        assert rep.n_photons == 123_456
        assert sum(s.photons for s in rep.per_machine.values()) == 123_456

    def test_quantisation_straggler(self):
        # 3 machines, 4 equal tasks: makespan = 2 tasks' time.
        rep = run_ideal(3, 400_000, 100_000)
        one_task = run_ideal(1, 100_000, 100_000).makespan_seconds
        assert rep.makespan_seconds == pytest.approx(2 * one_task, rel=1e-9)


class TestOverheads:
    def test_master_serialisation_bounds_throughput(self):
        # With a slow master, efficiency at high k collapses.
        slow_master = MasterModel(assign_overhead_s=1.0, merge_overhead_s=1.0)
        p1 = simulate_run(homogeneous_cluster(1), 10_000_000, 100_000,
                          network=FAST_NET, master=slow_master).makespan_seconds
        p50 = simulate_run(homogeneous_cluster(50), 10_000_000, 100_000,
                           network=FAST_NET, master=slow_master).makespan_seconds
        eff = efficiency(p1, p50, 50)
        assert eff < 0.9

    def test_master_busy_accounted(self):
        master = MasterModel(assign_overhead_s=0.01, merge_overhead_s=0.02)
        rep = simulate_run(homogeneous_cluster(4), 1_000_000, 100_000,
                           network=FAST_NET, master=master)
        assert rep.master_busy_seconds == pytest.approx(10 * 0.03, rel=1e-9)

    def test_network_latency_extends_makespan(self):
        fast = run_ideal(5, 1_000_000, 100_000).makespan_seconds
        slow_net = NetworkModel(latency_s=5.0, bandwidth_bytes_per_s=1e12,
                                task_bytes=0, result_bytes=0)
        slow = simulate_run(homogeneous_cluster(5), 1_000_000, 100_000,
                            network=slow_net, master=FREE_MASTER).makespan_seconds
        assert slow > fast + 5.0


class TestAvailability:
    def test_dedicated_is_deterministic(self):
        a = run_ideal(5, 1_000_000, 50_000, seed=1).makespan_seconds
        b = run_ideal(5, 1_000_000, 50_000, seed=2).makespan_seconds
        assert a == pytest.approx(b)

    def test_interference_slows_down(self):
        base = run_ideal(5, 1_000_000, 50_000).makespan_seconds
        loaded = run_ideal(
            5, 1_000_000, 50_000,
            availability=OwnerInterference(p_busy=0.5, busy_multiplier=0.25),
            seed=3,
        ).makespan_seconds
        assert loaded > base * 1.2

    def test_reproducible_given_seed(self):
        kw = dict(availability=UniformAvailability(0.5, 1.0), seed=7)
        a = run_ideal(5, 1_000_000, 50_000, **kw).makespan_seconds
        b = run_ideal(5, 1_000_000, 50_000, **kw).makespan_seconds
        assert a == pytest.approx(b)


class TestStaticScheduling:
    def test_block_on_homogeneous_matches_self(self):
        machines = homogeneous_cluster(4)
        n_tasks = 40
        assignment = static_block(n_tasks, machines)
        static = simulate_run(machines, 4_000_000, 100_000,
                              network=FAST_NET, master=FREE_MASTER,
                              static_assignment=assignment)
        pull = run_ideal(4, 4_000_000, 100_000)
        assert static.makespan_seconds == pytest.approx(
            pull.makespan_seconds, rel=1e-6
        )

    def test_block_collapses_on_heterogeneous(self):
        # Equal task counts on wildly different machines: the slowest class
        # dominates; weighted assignment must be much better.
        machines = table2_cluster()
        n_photons, task_size = 100_000_000, 100_000
        n_tasks = n_photons // task_size
        block = simulate_run(machines, n_photons, task_size,
                             network=FAST_NET, master=FREE_MASTER,
                             static_assignment=static_block(n_tasks, machines))
        weighted = simulate_run(machines, n_photons, task_size,
                                network=FAST_NET, master=FREE_MASTER,
                                static_assignment=static_weighted(n_tasks, machines))
        assert weighted.makespan_seconds < 0.5 * block.makespan_seconds

    def test_self_scheduling_beats_block_on_heterogeneous(self):
        machines = table2_cluster()
        n_photons, task_size = 100_000_000, 100_000
        n_tasks = n_photons // task_size
        block = simulate_run(machines, n_photons, task_size,
                             network=FAST_NET, master=FREE_MASTER,
                             static_assignment=static_block(n_tasks, machines))
        pull = simulate_run(machines, n_photons, task_size,
                            network=FAST_NET, master=FREE_MASTER)
        assert pull.makespan_seconds < block.makespan_seconds

    def test_assignment_validation(self):
        machines = homogeneous_cluster(2)
        with pytest.raises(ValueError, match="map all"):
            simulate_run(machines, 300_000, 100_000,
                         static_assignment=np.array([0, 1]))
        with pytest.raises(ValueError, match="unknown machines"):
            simulate_run(machines, 200_000, 100_000,
                         static_assignment=np.array([0, 99]))


class TestReportInvariants:
    def test_utilisation_bounded(self):
        rep = simulate_run(table2_cluster(), 50_000_000, 100_000, seed=0,
                           availability=UniformAvailability())
        assert 0.0 < rep.mean_utilisation <= 1.0

    def test_empty_run(self):
        rep = simulate_run(homogeneous_cluster(3), 0, 1000)
        assert rep.makespan_seconds == 0.0
        assert rep.n_tasks == 0

    def test_needs_machines(self):
        with pytest.raises(ValueError, match="machine"):
            simulate_run([], 1000, 100)


class TestSpeedupCurve:
    def test_fig2_shape(self):
        """The headline Fig. 2 claim: near-linear speedup, >=97% at 60."""
        points = speedup_curve([1, 20, 40, 60], 100_000_000, 100_000)
        by_k = {p.k: p for p in points}
        assert by_k[1].speedup == pytest.approx(1.0)
        assert by_k[60].efficiency >= 0.97
        ks = [p.k for p in points]
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)  # monotone increasing

    def test_efficiency_definition(self):
        points = speedup_curve([1, 10], 10_000_000, 100_000)
        p10 = next(p for p in points if p.k == 10)
        assert p10.efficiency == pytest.approx(p10.speedup / 10)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            speedup_curve([], 1000, 100)
        with pytest.raises(ValueError, match="k must be"):
            speedup_curve([0], 1000, 100)


class TestMetrics:
    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 10.0) == pytest.approx(10.0)
        assert efficiency(100.0, 10.0, 20) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)
