"""Tests for static schedulers and the GA scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    GAConfig,
    ga_schedule,
    homogeneous_cluster,
    predicted_makespan,
    static_block,
    static_weighted,
    table2_cluster,
)

PPM = 10.0  # photons per mflop used throughout these tests


class TestStaticBlock:
    def test_round_robin(self):
        machines = homogeneous_cluster(3)
        assignment = static_block(7, machines)
        counts = np.bincount(assignment, minlength=3)
        assert sorted(counts.tolist()) == [2, 2, 3]

    def test_empty(self):
        assert static_block(0, homogeneous_cluster(2)).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            static_block(-1, homogeneous_cluster(1))
        with pytest.raises(ValueError):
            static_block(1, [])


class TestStaticWeighted:
    def test_counts_sum(self):
        machines = table2_cluster()
        assignment = static_weighted(1000, machines)
        assert assignment.shape == (1000,)

    def test_proportionality(self):
        machines = table2_cluster()
        assignment = static_weighted(10_000, machines)
        rates = {m.machine_id: m.mflops for m in machines}
        counts = np.bincount(assignment, minlength=150)
        # Fast machines (P4 2.4GHz ~ 209 Mflops) get ~7x the tasks of the
        # slow P3 600MHz (~29.5 Mflops).
        fast = [m.machine_id for m in machines if rates[m.machine_id] > 150][:5]
        slow = [m.machine_id for m in machines if rates[m.machine_id] < 35][:5]
        assert counts[fast].mean() > 5 * counts[slow].mean()

    def test_homogeneous_equal_split(self):
        machines = homogeneous_cluster(4)
        counts = np.bincount(static_weighted(100, machines), minlength=4)
        np.testing.assert_array_equal(counts, 25)


class TestPredictedMakespan:
    def test_single_machine(self):
        machines = homogeneous_cluster(1)
        sizes = [100, 200]
        t = predicted_makespan(np.array([0, 0]), sizes, machines, PPM)
        rate = machines[0].mflops * PPM
        assert t == pytest.approx(300 / rate)

    def test_overhead_term(self):
        machines = homogeneous_cluster(1)
        t0 = predicted_makespan(np.array([0]), [100], machines, PPM)
        t1 = predicted_makespan(np.array([0]), [100], machines, PPM,
                                per_task_overhead_s=0.5)
        assert t1 == pytest.approx(t0 + 0.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            predicted_makespan(np.array([0]), [1, 2], homogeneous_cluster(1), PPM)


class TestGAScheduler:
    def test_never_worse_than_weighted_heuristic(self):
        machines = table2_cluster()
        sizes = [100_000] * 300
        weighted = predicted_makespan(
            static_weighted(len(sizes), machines), sizes, machines, PPM
        )
        result = ga_schedule(sizes, machines, PPM,
                             config=GAConfig(population=20, generations=30, seed=0))
        assert result.makespan <= weighted + 1e-9

    def test_history_monotone_non_increasing(self):
        machines = table2_cluster()
        sizes = [100_000] * 100
        result = ga_schedule(sizes, machines, PPM,
                             config=GAConfig(population=16, generations=20, seed=1))
        diffs = np.diff(result.history)
        assert (diffs <= 1e-12).all()

    def test_approaches_lower_bound_on_small_problem(self):
        # 2 machines, rates 1:3 -> optimal makespan = total/(sum of rates).
        from repro.cluster import Machine

        machines = [
            Machine(0, "slow", mflops=10.0, ram_mb=1, os="x"),
            Machine(1, "fast", mflops=30.0, ram_mb=1, os="x"),
        ]
        sizes = [1000] * 20
        result = ga_schedule(sizes, machines, PPM,
                             config=GAConfig(population=30, generations=60, seed=2))
        lower_bound = sum(sizes) / ((10.0 + 30.0) * PPM)
        assert result.makespan <= lower_bound * 1.15

    def test_assignment_shape_and_validity(self):
        machines = homogeneous_cluster(3)
        result = ga_schedule([10] * 7, machines, PPM,
                             config=GAConfig(population=8, generations=5))
        assert result.assignment.shape == (7,)
        assert set(result.assignment.tolist()) <= {0, 1, 2}

    def test_empty_tasks(self):
        result = ga_schedule([], homogeneous_cluster(1), PPM)
        assert result.makespan == 0.0
        assert result.assignment.shape == (0,)

    def test_no_machines_rejected(self):
        with pytest.raises(ValueError, match="machine"):
            ga_schedule([1], [], PPM)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population=1)
        with pytest.raises(ValueError):
            GAConfig(tournament=100)
        with pytest.raises(ValueError):
            GAConfig(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(elitism=40, population=40)

    def test_reproducible(self):
        machines = table2_cluster()
        sizes = [50_000] * 50
        cfg = GAConfig(population=10, generations=10, seed=5)
        a = ga_schedule(sizes, machines, PPM, config=cfg)
        b = ga_schedule(sizes, machines, PPM, config=cfg)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.makespan == b.makespan
