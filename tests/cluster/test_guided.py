"""Tests for guided self-scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    GuidedConfig,
    MasterModel,
    NetworkModel,
    UniformAvailability,
    homogeneous_cluster,
    simulate_run,
    simulate_run_guided,
    table2_cluster,
)

FAST_NET = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e12,
                        task_bytes=0, result_bytes=0)
FREE_MASTER = MasterModel(assign_overhead_s=0.0, merge_overhead_s=0.0)


class TestGuidedConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_chunk"):
            GuidedConfig(min_chunk=0)
        with pytest.raises(ValueError, match="over_partition"):
            GuidedConfig(over_partition=0.5)


class TestGuidedSimulation:
    def test_all_photons_processed(self):
        rep = simulate_run_guided(
            homogeneous_cluster(5), 1_234_567,
            network=FAST_NET, master=FREE_MASTER,
        )
        assert rep.n_photons == 1_234_567
        assert sum(s.photons for s in rep.per_machine.values()) == 1_234_567

    def test_chunks_taper(self):
        rep = simulate_run_guided(
            homogeneous_cluster(4), 10_000_000,
            config=GuidedConfig(min_chunk=1_000),
            network=FAST_NET, master=FREE_MASTER,
        )
        # More tasks than machines: the pool was split repeatedly.
        assert rep.n_tasks > 4

    def test_single_machine_time_equals_fixed(self):
        guided = simulate_run_guided(
            homogeneous_cluster(1), 1_000_000,
            network=FAST_NET, master=FREE_MASTER,
        )
        fixed = simulate_run(
            homogeneous_cluster(1), 1_000_000, 1_000_000,
            network=FAST_NET, master=FREE_MASTER,
        )
        assert guided.makespan_seconds == pytest.approx(
            fixed.makespan_seconds, rel=1e-9
        )

    def test_beats_fixed_chunks_on_heterogeneous(self):
        """The headline property: no tail straggler."""
        cluster = table2_cluster(np.random.default_rng(0))
        availability = UniformAvailability(0.7, 1.0)
        fixed = simulate_run(
            cluster, 100_000_000, 200_000, availability=availability, seed=3
        )
        guided = simulate_run_guided(
            cluster, 100_000_000, availability=availability, seed=3
        )
        assert guided.makespan_seconds < fixed.makespan_seconds
        assert guided.mean_utilisation > fixed.mean_utilisation

    def test_speed_weighting_helps(self):
        cluster = table2_cluster()
        weighted = simulate_run_guided(
            cluster, 100_000_000,
            config=GuidedConfig(speed_weighted=True),
            network=FAST_NET, master=FREE_MASTER,
        )
        unweighted = simulate_run_guided(
            cluster, 100_000_000,
            config=GuidedConfig(speed_weighted=False),
            network=FAST_NET, master=FREE_MASTER,
        )
        assert weighted.makespan_seconds <= unweighted.makespan_seconds * 1.05

    def test_reproducible(self):
        kw = dict(availability=UniformAvailability(0.6, 1.0), seed=9)
        cluster = table2_cluster()
        a = simulate_run_guided(cluster, 50_000_000, **kw)
        b = simulate_run_guided(cluster, 50_000_000, **kw)
        assert a.makespan_seconds == pytest.approx(b.makespan_seconds)
        assert a.n_tasks == b.n_tasks

    def test_zero_photons(self):
        rep = simulate_run_guided(homogeneous_cluster(2), 0)
        assert rep.makespan_seconds == 0.0
        assert rep.n_tasks == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="machine"):
            simulate_run_guided([], 1000)
        with pytest.raises(ValueError, match="n_photons"):
            simulate_run_guided(homogeneous_cluster(1), -1)

    def test_min_chunk_respected(self):
        rep = simulate_run_guided(
            homogeneous_cluster(3), 1_000_000,
            config=GuidedConfig(min_chunk=100_000),
            network=FAST_NET, master=FREE_MASTER,
        )
        # 1M photons at >= 100k per chunk: at most 10 tasks.
        assert rep.n_tasks <= 10
