"""Tests for DES execution traces and Gantt rendering."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ascii_gantt,
    extract_intervals,
    homogeneous_cluster,
    simulate_run,
    table2_cluster,
)


class TestExtractIntervals:
    def test_one_interval_per_task(self):
        rep = simulate_run(homogeneous_cluster(3), 1_000_000, 100_000, trace=True)
        intervals = extract_intervals(rep)
        assert len(intervals) == rep.n_tasks

    def test_intervals_cover_busy_time(self):
        rep = simulate_run(homogeneous_cluster(3), 1_000_000, 100_000, trace=True)
        total = sum(iv.duration for iv in extract_intervals(rep))
        assert total == pytest.approx(rep.cluster_busy_seconds, rel=1e-9)

    def test_no_overlap_per_machine(self):
        rep = simulate_run(homogeneous_cluster(4), 2_000_000, 100_000, trace=True)
        intervals = extract_intervals(rep)
        by_machine: dict[int, list] = {}
        for iv in intervals:
            by_machine.setdefault(iv.machine_id, []).append(iv)
        for machine_intervals in by_machine.values():
            ordered = sorted(machine_intervals, key=lambda iv: iv.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end <= b.start + 1e-9

    def test_intervals_inside_makespan(self):
        rep = simulate_run(homogeneous_cluster(3), 1_000_000, 100_000, trace=True)
        for iv in extract_intervals(rep):
            assert 0.0 <= iv.start < iv.end <= rep.makespan_seconds + 1e-9

    def test_untraced_report_empty(self):
        rep = simulate_run(homogeneous_cluster(2), 500_000, 100_000)
        assert extract_intervals(rep) == []


class TestAsciiGantt:
    def test_renders_all_machines(self):
        rep = simulate_run(homogeneous_cluster(5), 2_000_000, 100_000, trace=True)
        chart = ascii_gantt(rep, width=40)
        lines = chart.split("\n")
        assert len(lines) == 6  # header + 5 machines
        assert all("#" in line for line in lines[1:])

    def test_machine_cap(self):
        rep = simulate_run(table2_cluster(), 30_000_000, 100_000, trace=True)
        chart = ascii_gantt(rep, width=40, max_machines=5)
        assert "more machines" in chart

    def test_untraced_rejected(self):
        rep = simulate_run(homogeneous_cluster(2), 500_000, 100_000)
        with pytest.raises(ValueError, match="trace"):
            ascii_gantt(rep)

    def test_straggler_visible(self):
        """With 4 tasks on 3 machines, one machine's row is busy twice as
        long — the quantisation straggler shows as a longer bar."""
        rep = simulate_run(homogeneous_cluster(3), 400_000, 100_000, trace=True)
        chart = ascii_gantt(rep, width=60)
        rows = chart.split("\n")[1:]
        busy_lengths = sorted(row.count("#") for row in rows)
        assert busy_lengths[-1] > 1.5 * busy_lengths[0]
