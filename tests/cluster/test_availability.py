"""Tests for the availability models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Dedicated, OwnerInterference, UniformAvailability


class TestDedicated:
    def test_always_one(self, rng):
        model = Dedicated()
        assert all(model.sample(rng) == 1.0 for _ in range(10))


class TestUniform:
    def test_range(self, rng):
        model = UniformAvailability(0.6, 0.9)
        samples = np.array([model.sample(rng) for _ in range(1000)])
        assert (samples >= 0.6).all() and (samples <= 0.9).all()
        assert samples.mean() == pytest.approx(0.75, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformAvailability(0.0, 0.5)
        with pytest.raises(ValueError):
            UniformAvailability(0.9, 0.5)
        with pytest.raises(ValueError):
            UniformAvailability(0.5, 1.5)


class TestOwnerInterference:
    def test_two_states(self, rng):
        model = OwnerInterference(p_busy=0.5, busy_multiplier=0.25)
        samples = {model.sample(rng) for _ in range(200)}
        assert samples == {0.25, 1.0}

    def test_busy_probability(self, rng):
        model = OwnerInterference(p_busy=0.3, busy_multiplier=0.5)
        samples = np.array([model.sample(rng) for _ in range(20_000)])
        assert (samples == 0.5).mean() == pytest.approx(0.3, abs=0.01)

    def test_never_busy(self, rng):
        model = OwnerInterference(p_busy=0.0)
        assert model.sample(rng) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OwnerInterference(p_busy=1.5)
        with pytest.raises(ValueError):
            OwnerInterference(busy_multiplier=0.0)
