"""Tests for machine models and the Table 2 census."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    HOMOGENEOUS_MFLOPS,
    Machine,
    MachineClass,
    TABLE2_CLASSES,
    expand_classes,
    homogeneous_cluster,
    table2_cluster,
    total_mflops,
)


class TestMachineClass:
    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            MachineClass(0, 1.0, 2.0, 256, "Linux", "P3")
        with pytest.raises(ValueError, match="mflops"):
            MachineClass(1, 3.0, 2.0, 256, "Linux", "P3")
        with pytest.raises(ValueError, match="ram"):
            MachineClass(1, 1.0, 2.0, 0, "Linux", "P3")

    def test_midpoint(self):
        cls = MachineClass(1, 10.0, 20.0, 256, "Linux", "P3")
        assert cls.mflops_mid == pytest.approx(15.0)


class TestMachine:
    def test_photon_rate(self):
        m = Machine(0, "m", mflops=100.0, ram_mb=256, os="Linux")
        assert m.photon_rate(10.0) == pytest.approx(1000.0)
        assert m.photon_rate(10.0, availability=0.5) == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="mflops"):
            Machine(0, "m", mflops=0.0, ram_mb=1, os="x")
        m = Machine(0, "m", mflops=1.0, ram_mb=1, os="x")
        with pytest.raises(ValueError, match="photons_per_mflop"):
            m.photon_rate(0.0)
        with pytest.raises(ValueError, match="availability"):
            m.photon_rate(1.0, availability=0.0)


class TestExpandClasses:
    def test_midpoint_without_rng(self):
        cls = MachineClass(3, 10.0, 20.0, 256, "Linux", "P3")
        machines = expand_classes([cls])
        assert len(machines) == 3
        assert all(m.mflops == pytest.approx(15.0) for m in machines)
        assert [m.machine_id for m in machines] == [0, 1, 2]

    def test_sampled_within_range(self):
        cls = MachineClass(100, 10.0, 20.0, 256, "Linux", "P3")
        machines = expand_classes([cls], np.random.default_rng(0))
        rates = np.array([m.mflops for m in machines])
        assert (rates >= 10.0).all() and (rates <= 20.0).all()
        assert rates.std() > 0.5  # actually sampled


class TestTable2:
    def test_census_matches_paper(self):
        """Table 2 row for row: counts, rate ranges, RAM, OS."""
        expected = [
            (91, 28.0, 31.0, 256, "Linux"),
            (50, 190.0, 229.0, 512, "Linux"),
            (4, 15.0, 15.0, 192, "Linux"),
            (1, 154.0, 154.0, 1024, "Windows XP"),
            (1, 25.0, 25.0, 512, "Linux"),
            (1, 37.0, 37.0, 256, "Linux"),
            (1, 72.0, 72.0, 256, "Linux"),
            (1, 91.0, 91.0, 1024, "FreeBSD"),
        ]
        assert len(TABLE2_CLASSES) == 8
        for cls, (count, lo, hi, ram, os_name) in zip(TABLE2_CLASSES, expected):
            assert cls.count == count
            assert cls.mflops_min == lo
            assert cls.mflops_max == hi
            assert cls.ram_mb == ram
            assert cls.os == os_name

    def test_150_clients(self):
        assert sum(c.count for c in TABLE2_CLASSES) == 150
        assert len(table2_cluster()) == 150

    def test_total_mflops_order_of_magnitude(self):
        total = total_mflops(table2_cluster())
        # Midpoint census: 91*29.5 + 50*209.5 + 4*15 + 154+25+37+72+91.
        assert total == pytest.approx(13538.5, rel=0.02)

    def test_unique_machine_ids(self):
        ids = [m.machine_id for m in table2_cluster()]
        assert len(set(ids)) == 150


class TestHomogeneousCluster:
    def test_count_and_rate(self):
        machines = homogeneous_cluster(60)
        assert len(machines) == 60
        assert all(m.mflops == pytest.approx(HOMOGENEOUS_MFLOPS) for m in machines)

    def test_invalid(self):
        with pytest.raises(ValueError, match="k"):
            homogeneous_cluster(0)
