"""Tests for the perturbation-MC reweighting kernels (repro.perturb)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import PathRecords
from repro.io import save_tally
from repro.perturb import (
    DERIVED_FIELDS,
    PARENT_VALUED_FIELDS,
    PerturbationDelta,
    PerturbationError,
    derive_from_archive,
    derive_tally,
    derived_std,
    reweight_factors,
)

from .conftest import PARENT_MU_A, PARENT_MU_S, run_tally


def _records(rows=4, n_layers=2, seed=0):
    """Hand-built sealed records with reproducible pseudo-random contents."""
    rng = np.random.default_rng(seed)
    records = PathRecords(n_layers)
    lp = rng.uniform(0.1, 2.0, size=(rows, n_layers))
    weights = rng.uniform(0.2, 1.0, size=rows)
    records.append(lp, weights, lp.sum(axis=1) * 1.4, lp.max(axis=1))
    records.seal(0)
    return records


class TestPerturbationDelta:
    def test_validation(self):
        with pytest.raises(ValueError, match="layers"):
            PerturbationDelta(d_mu_a=(0.1, 0.2), alpha_s=(1.0,))
        with pytest.raises(ValueError, match="at least one layer"):
            PerturbationDelta(d_mu_a=(), alpha_s=())
        with pytest.raises(ValueError, match="non-finite"):
            PerturbationDelta(d_mu_a=(float("nan"),), alpha_s=(1.0,))
        with pytest.raises(ValueError, match="finite and > 0"):
            PerturbationDelta(d_mu_a=(0.0,), alpha_s=(0.0,))
        with pytest.raises(ValueError, match="finite and > 0"):
            PerturbationDelta(d_mu_a=(0.0,), alpha_s=(-1.0,))

    def test_identity_and_exactness_flags(self):
        identity = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(1.0, 1.0))
        assert identity.is_zero and identity.is_exact
        absorb = PerturbationDelta(d_mu_a=(0.1, 0.0), alpha_s=(1.0, 1.0))
        assert not absorb.is_zero and absorb.is_exact
        scatter = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(1.05, 1.0))
        assert not scatter.is_zero and not scatter.is_exact

    def test_between_is_additive_in_mu_a_multiplicative_in_mu_s(self):
        delta = PerturbationDelta.between(
            {"mu_a": [0.05, 0.02], "mu_s": [10.0, 5.0]},
            {"mu_a": [0.07, 0.02], "mu_s": [10.5, 5.0]},
        )
        assert delta.d_mu_a == pytest.approx((0.02, 0.0))
        assert delta.alpha_s == pytest.approx((1.05, 1.0))

    def test_between_validation(self):
        with pytest.raises(ValueError, match="layer count"):
            PerturbationDelta.between(
                {"mu_a": [0.05], "mu_s": [10.0]},
                {"mu_a": [0.05, 0.02], "mu_s": [10.0, 5.0]},
            )
        with pytest.raises(ValueError, match="mu_s"):
            PerturbationDelta.between(
                {"mu_a": [0.05], "mu_s": [0.0]},
                {"mu_a": [0.05], "mu_s": [10.0]},
            )

    def test_dict_round_trip(self):
        delta = PerturbationDelta(d_mu_a=(0.02, -0.01), alpha_s=(1.03, 1.0))
        d = delta.as_dict()
        assert d["exact"] is False
        assert PerturbationDelta.from_dict(d) == delta


class TestReweightFactors:
    def test_matches_manual_formula(self):
        records = _records()
        delta = PerturbationDelta(d_mu_a=(0.3, -0.1), alpha_s=(1.05, 0.97))
        mu_s = np.array([10.0, 5.0])
        factors = reweight_factors(records, delta, mu_s=mu_s)

        lp = records.column("layer_paths")
        alpha = np.asarray(delta.alpha_s)
        expected = np.exp(
            lp @ -np.asarray(delta.d_mu_a)
            + (lp * mu_s) @ (np.log(alpha) - alpha + 1.0)
        )
        np.testing.assert_allclose(factors, expected, rtol=1e-14)

    def test_absorption_only_needs_no_mu_s(self):
        records = _records()
        delta = PerturbationDelta(d_mu_a=(0.3, 0.0), alpha_s=(1.0, 1.0))
        factors = reweight_factors(records, delta)
        lp = records.column("layer_paths")
        np.testing.assert_allclose(factors, np.exp(-0.3 * lp[:, 0]), rtol=1e-14)

    def test_scattering_requires_valid_mu_s(self):
        records = _records()
        delta = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(1.05, 1.0))
        with pytest.raises(PerturbationError, match="mu_s"):
            reweight_factors(records, delta)
        with pytest.raises(PerturbationError, match="shape"):
            reweight_factors(records, delta, mu_s=[10.0])
        with pytest.raises(PerturbationError, match="finite and > 0"):
            reweight_factors(records, delta, mu_s=[10.0, 0.0])

    def test_layer_count_mismatch_rejected(self):
        delta = PerturbationDelta(d_mu_a=(0.1,), alpha_s=(1.0,))
        with pytest.raises(PerturbationError, match="layers"):
            reweight_factors(_records(n_layers=2), delta)

    def test_derived_std_is_root_sum_of_squares(self):
        records = _records()
        factors = np.full(records.n_rows, 2.0)
        rw = records.column("weight") * factors
        assert derived_std(records, factors) == pytest.approx(
            float(np.sqrt((rw * rw).sum()))
        )


class TestDeriveTally:
    def test_zero_delta_is_bit_identical(self, parent_tally):
        identity = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(1.0, 1.0))
        derived = derive_tally(parent_tally, identity)
        assert derived == parent_tally  # Tally.__eq__ covers every field
        assert derived.paths == parent_tally.paths
        assert derived.paths is not parent_tally.paths
        assert derived.derivation["fields_at_parent_properties"] == []
        assert derived.derivation["perturbation"]["exact"] is True

    def test_detected_weight_stays_consistent_with_records(self, parent_tally):
        delta = PerturbationDelta(d_mu_a=(0.04, -0.01), alpha_s=(1.0, 1.0))
        derived = derive_tally(parent_tally, delta)
        # The derived tally remains self-consistent: its detected weight is
        # the sum of its (reweighted) record weights, so it can itself seed
        # a further derivation.
        assert derived.detected_weight == pytest.approx(
            float(derived.paths.column("weight").sum()), rel=1e-12
        )
        assert derived.paths.n_rows == parent_tally.paths.n_rows
        assert derived.paths.segment_keys == parent_tally.paths.segment_keys

    def test_parent_valued_fields_untouched(self, parent_tally):
        delta = PerturbationDelta(d_mu_a=(0.04, 0.0), alpha_s=(1.0, 1.0))
        derived = derive_tally(parent_tally, delta)
        for name in PARENT_VALUED_FIELDS:
            parent_value = getattr(parent_tally, name, None)
            derived_value = getattr(derived, name, None)
            if isinstance(parent_value, np.ndarray):
                np.testing.assert_array_equal(derived_value, parent_value)
            else:
                assert derived_value == parent_value
        assert set(derived.derivation["fields_at_parent_properties"]) == set(
            PARENT_VALUED_FIELDS
        )
        assert derived.detected_weight != parent_tally.detected_weight

    def test_absorption_derivation_matches_direct_run(self, parent_tally):
        d = 0.03
        delta = PerturbationDelta(d_mu_a=(d, d), alpha_s=(1.0, 1.0))
        derived = derive_tally(parent_tally, delta)
        direct = run_tally(mu_a=tuple(a + d for a in PARENT_MU_A))
        sigma = np.hypot(
            derived.derivation["derived_std"],
            derived_std(direct.paths, np.ones(direct.paths.n_rows)),
        )
        assert abs(derived.detected_weight - direct.detected_weight) < 3 * sigma
        assert abs(
            derived.pathlength.mean - direct.pathlength.mean
        ) < 0.1 * direct.pathlength.mean

    def test_scattering_derivation_matches_direct_run(self, parent_tally):
        alpha = 1.03
        delta = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(alpha, alpha))
        derived = derive_tally(parent_tally, delta, mu_s=PARENT_MU_S)
        direct = run_tally(mu_s=tuple(alpha * s for s in PARENT_MU_S))
        sigma = np.hypot(
            derived.derivation["derived_std"],
            derived_std(direct.paths, np.ones(direct.paths.n_rows)),
        )
        assert abs(derived.detected_weight - direct.detected_weight) < 3 * sigma
        assert derived.derivation["perturbation"]["exact"] is False

    def test_absorption_derivations_compose(self, parent_tally):
        d1 = PerturbationDelta(d_mu_a=(0.02, 0.0), alpha_s=(1.0, 1.0))
        d2 = PerturbationDelta(d_mu_a=(0.0, 0.01), alpha_s=(1.0, 1.0))
        both = PerturbationDelta(d_mu_a=(0.02, 0.01), alpha_s=(1.0, 1.0))
        chained = derive_tally(derive_tally(parent_tally, d1), d2)
        direct = derive_tally(parent_tally, both)
        assert chained.detected_weight == pytest.approx(
            direct.detected_weight, rel=1e-12
        )
        np.testing.assert_allclose(
            chained.paths.column("weight"),
            direct.paths.column("weight"),
            rtol=1e-12,
        )

    def test_fails_closed_without_usable_records(self, parent_tally):
        delta = PerturbationDelta(d_mu_a=(0.01, 0.0), alpha_s=(1.0, 1.0))

        bare = parent_tally.copy()
        bare.paths = None
        with pytest.raises(PerturbationError, match="no path records"):
            derive_tally(bare, delta)

        open_records = parent_tally.copy()
        open_records.paths = PathRecords(2)
        open_records.paths.append(
            np.ones((1, 2)), np.ones(1), np.ones(1), np.ones(1)
        )
        with pytest.raises(PerturbationError, match="not sealed"):
            derive_tally(open_records, delta)

        partial = parent_tally.copy()
        partial.paths = PathRecords(2)
        partial.paths.seal(0)
        with pytest.raises(PerturbationError, match="partial records"):
            derive_tally(partial, delta)

        narrow = PerturbationDelta(d_mu_a=(0.01,), alpha_s=(1.0,))
        with pytest.raises(PerturbationError, match="layers"):
            derive_tally(parent_tally, narrow)


class TestDeriveFromArchive:
    def test_round_trip_matches_in_memory_derivation(
        self, parent_tally, tmp_path
    ):
        archive = tmp_path / "parent.npz"
        save_tally(archive, parent_tally)
        delta = PerturbationDelta(d_mu_a=(0.02, 0.01), alpha_s=(1.0, 1.0))
        from_disk = derive_from_archive(archive, delta)
        in_memory = derive_tally(parent_tally, delta)
        assert from_disk.detected_weight == pytest.approx(
            in_memory.detected_weight, rel=1e-12
        )
        assert from_disk.paths == in_memory.paths

    def test_pathless_archive_fails_closed(self, tmp_path):
        tally = run_tally(capture=False, n=1000)
        archive = tmp_path / "bare.npz"
        save_tally(archive, tally)
        delta = PerturbationDelta(d_mu_a=(0.01, 0.0), alpha_s=(1.0, 1.0))
        with pytest.raises(PerturbationError, match="no path records"):
            derive_from_archive(archive, delta)

    def test_mu_s_read_from_provenance_coefficients(
        self, parent_tally, tmp_path
    ):
        archive = tmp_path / "parent.npz"
        save_tally(
            archive,
            parent_tally,
            provenance={"coefficients": {"mu_s": list(PARENT_MU_S)}},
        )
        delta = PerturbationDelta(d_mu_a=(0.0, 0.0), alpha_s=(1.02, 1.0))
        from_disk = derive_from_archive(archive, delta)
        in_memory = derive_tally(parent_tally, delta, mu_s=PARENT_MU_S)
        assert from_disk.detected_weight == pytest.approx(
            in_memory.detected_weight, rel=1e-12
        )


def test_derived_fields_partition_is_disjoint():
    assert not set(DERIVED_FIELDS) & set(PARENT_VALUED_FIELDS)
