"""Shared fixtures for the perturbation-MC tests.

The parent run is module-agnostic and expensive relative to the rest of the
suite, so it is session-scoped: every reweighting test derives from the same
captured two-layer run.  The medium follows the suite's fast-media
convention (absorption within an order of magnitude of scattering) but is
two-layered so per-layer reweighting is non-trivial.
"""

from __future__ import annotations

import pytest

from repro.api import RunRequest, run
from repro.core import SimulationConfig
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties

PARENT_MU_A = (0.05, 0.02)
PARENT_MU_S = (10.0, 5.0)


def two_layer_config(
    mu_a=PARENT_MU_A, mu_s=PARENT_MU_S
) -> SimulationConfig:
    stack = LayerStack(
        [
            Layer(
                "top",
                OpticalProperties(mu_a=mu_a[0], mu_s=mu_s[0], g=0.8, n=1.4),
                0.6,
            ),
            Layer(
                "bottom",
                OpticalProperties(mu_a=mu_a[1], mu_s=mu_s[1], g=0.6, n=1.4),
                1.2,
            ),
        ]
    )
    return SimulationConfig(stack=stack, source=PencilBeam())


def run_tally(mu_a=PARENT_MU_A, mu_s=PARENT_MU_S, *, capture=True, n=4000):
    """One deterministic run on the two-layer medium (same seed throughout)."""
    report = run(
        RunRequest(
            config=two_layer_config(mu_a, mu_s),
            n_photons=n,
            seed=11,
            task_size=1000,
            backend="thread",
            workers=2,
            capture_paths=capture,
        )
    )
    return report.tally


@pytest.fixture(scope="session")
def parent_tally():
    """A captured 4000-photon parent run; tests must not mutate it."""
    tally = run_tally()
    assert tally.paths is not None and tally.paths.n_rows > 0
    return tally
