"""Path-record capture invariants across kernels, backends and the TCP wire.

Capture is an execution-only knob: it must not change any other tally field,
and the captured records must agree bit-for-bit no matter which backend or
transport produced them (sealing under the task key makes merge order
deterministic).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.distributed import (
    DataManager,
    NetworkServer,
    SerialBackend,
    ThreadBackend,
    make_backend,
    run_network_client,
)
from repro.distributed.protocol import (
    ResultValidationError,
    TaskSpec,
    validate_result,
)
from repro.distributed.worker import execute_task

from .conftest import two_layer_config


def _run_clients(port: int, count: int) -> list[threading.Thread]:
    threads = [
        threading.Thread(
            target=run_network_client,
            args=("127.0.0.1", port),
            kwargs={"worker_name": f"client-{i}"},
            daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return threads


def _capture_run(config, *, kernel="vector", n=2000, task_size=500, backend=None,
                 capture=True):
    manager = DataManager(
        config, n, seed=5, task_size=task_size, kernel=kernel,
        capture_paths=capture,
    )
    return manager.run(backend or SerialBackend())


class TestKernelCapture:
    @pytest.mark.parametrize(
        "kernel,n,task_size",
        [("vector", 2000, 500), ("scalar", 600, 200)],
    )
    def test_records_are_consistent_with_the_tally(self, kernel, n, task_size):
        config = two_layer_config()
        tally = _capture_run(
            config, kernel=kernel, n=n, task_size=task_size
        ).tally
        records = tally.paths
        assert records is not None and records.is_sealed

        assert records.n_rows == tally.detected_count
        assert records.segment_keys == tuple(range(n // task_size))
        np.testing.assert_allclose(
            records.column("weight").sum(), tally.detected_weight, rtol=1e-12
        )
        # The optical pathlength is the refractive-index-weighted sum of the
        # per-layer geometric paths.
        n_vec = np.array([l.properties.n for l in config.stack.layers])
        np.testing.assert_allclose(
            records.column("opl"), records.column("layer_paths") @ n_vec,
            rtol=1e-9,
        )
        depth = records.column("max_depth")
        assert np.all(depth >= 0.0)
        assert np.all(depth <= config.stack.total_thickness + 1e-12)

    @pytest.mark.parametrize(
        "kernel,n,task_size",
        [("vector", 2000, 500), ("scalar", 600, 200)],
    )
    def test_capture_changes_no_other_field(self, kernel, n, task_size):
        config = two_layer_config()
        captured = _capture_run(
            config, kernel=kernel, n=n, task_size=task_size
        ).tally
        plain = _capture_run(
            config, kernel=kernel, n=n, task_size=task_size, capture=False
        ).tally
        assert plain.paths is None
        # Tally equality covers every physics field; capture adds no RNG
        # draws so the two runs are bit-identical apart from the records.
        assert captured == plain


class TestBackendParity:
    def test_thread_and_process_backends_capture_identically(self):
        config = two_layer_config()
        serial = _capture_run(config, n=1500, task_size=300).tally
        threaded = _capture_run(
            config, n=1500, task_size=300, backend=ThreadBackend(2)
        ).tally
        assert threaded.paths == serial.paths
        assert threaded == serial

        process = _capture_run(
            config, n=1500, task_size=300, backend=make_backend("process", 2)
        ).tally
        assert process.paths == serial.paths
        assert process == serial


class TestNetworkCapture:
    def test_tcp_round_trip_matches_serial_run(self):
        config = two_layer_config()
        server = NetworkServer(
            config, n_photons=1000, seed=3, task_size=250, capture_paths=True
        ).start()
        threads = _run_clients(server.port, 2)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=10)

        serial = DataManager(
            config, 1000, seed=3, task_size=250, capture_paths=True
        ).run(SerialBackend())
        assert report.tally.paths == serial.tally.paths
        assert report.tally == serial.tally


class TestResultValidation:
    def _result(self, capture=True):
        task = TaskSpec(
            task_index=0, n_photons=200, seed=5, capture_paths=capture
        )
        return execute_task(two_layer_config(), task), task

    def test_valid_captured_result_passes(self):
        result, task = self._result()
        validate_result(result, task)  # must not raise

    def test_missing_records_fail_closed(self):
        result, task = self._result(capture=False)
        task_wanting_paths = TaskSpec(
            task_index=0, n_photons=200, seed=5, capture_paths=True
        )
        with pytest.raises(ResultValidationError, match="no path records"):
            validate_result(result, task_wanting_paths)

    def test_unsealed_records_fail_closed(self):
        result, task = self._result()
        sealed = result.tally.paths
        from repro.detect import PathRecords

        open_records = PathRecords(sealed.n_layers)
        open_records.append(
            sealed.column("layer_paths"),
            sealed.column("weight"),
            sealed.column("opl"),
            sealed.column("max_depth"),
        )
        result.tally.paths = open_records
        with pytest.raises(ResultValidationError, match="not sealed"):
            validate_result(result, task)

    def test_row_count_mismatch_fails_closed(self):
        result, task = self._result()
        records = result.tally.paths
        # Drop the records entirely but keep detected_count > 0: simulate a
        # worker that lost rows in transit.
        empty = type(records)(records.n_layers)
        empty.seal(0)
        result.tally.paths = empty
        assert result.tally.detected_count > 0
        with pytest.raises(ResultValidationError, match="path records for"):
            validate_result(result, task)
