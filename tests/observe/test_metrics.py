"""Tests of the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import threading

import pytest

from repro.observe import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("tasks")
        assert c.value == 0.0
        c.add(3)
        c.add(0.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("tasks").add(-1)

    def test_create_or_get_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("tasks") is reg.counter("tasks")

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("photons", worker="a").add(10)
        reg.counter("photons", worker="b").add(20)
        assert reg.counter("photons", worker="a").value == 10
        assert reg.counter("photons", worker="b").value == 20

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("in_flight")
        g.set(4)
        g.set(2)
        assert g.value == 2


class TestHistogram:
    def test_observations_accumulate(self):
        h = MetricsRegistry().histogram("latency")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.6)
        assert h.mean == pytest.approx(0.2)
        assert h.minimum == pytest.approx(0.1)
        assert h.maximum == pytest.approx(0.3)

    def test_bucket_counts_cumulative_style(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        # one per bucket plus the overflow bucket
        assert sum(h.bucket_counts) == 3


class TestRegistry:
    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").add(1)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert [r["name"] for r in snap["counters"]] == ["c"]
        assert snap["counters"][0]["labels"] == {"k": "v"}
        assert snap["gauges"][0]["value"] == 2
        assert snap["histograms"][0]["count"] == 1

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        for name in ("b", "a", "c"):
            reg.counter(name)
        assert [r["name"] for r in reg.snapshot()["counters"]] == ["a", "b", "c"]

    def test_thread_safe_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("n")

        def work():
            for _ in range(10_000):
                c.add(1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000
