"""Tests of the telemetry pipeline: sinks, events, spans, progress."""

from __future__ import annotations

import io
import json

import pytest

from repro.observe import (
    EVENT_KINDS,
    JsonlSink,
    MemorySink,
    NullSink,
    StreamProgress,
    Telemetry,
    TTYProgress,
    validate_event,
)


class TestSinks:
    def test_null_sink_disabled(self):
        assert NullSink().enabled is False

    def test_memory_sink_records(self):
        sink = MemorySink()
        sink.emit({"event": "counter", "t": 0.0, "name": "x", "value": 1.0})
        assert len(sink.events) == 1

    def test_jsonl_sink_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "run_start", "t": 0.0})
        sink.emit({"event": "run_end", "t": 1.0})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["run_start", "run_end"]


class TestValidateEvent:
    def test_all_emitted_kinds_are_known(self):
        assert "span_start" in EVENT_KINDS
        assert "metrics" in EVENT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            validate_event({"event": "nope", "t": 0.0})

    def test_missing_time_rejected(self):
        with pytest.raises(ValueError):
            validate_event({"event": "run_start"})

    def test_span_end_needs_duration(self):
        with pytest.raises(ValueError):
            validate_event(
                {"event": "span_end", "t": 1.0, "name": "task", "span_id": 1}
            )


class TestTelemetry:
    def test_disabled_by_default(self):
        tel = Telemetry()
        assert tel.enabled is False
        with tel.span("task"):
            pass
        tel.count("photons", 10)
        assert len(tel.registry) > 0  # registry still counts

    def test_span_emits_start_end_pair(self):
        tel = Telemetry.in_memory()
        with tel.span("task", task=3):
            pass
        events = tel.sink.events
        assert [e["event"] for e in events] == ["span_start", "span_end"]
        start, end = events
        assert start["span_id"] == end["span_id"]
        assert end["duration_s"] >= 0
        assert start["task"] == 3

    def test_events_schema_valid_and_monotone(self):
        tel = Telemetry.in_memory()
        with tel.span("a"):
            tel.count("photons", 5)
        tel.gauge("in_flight", 2)
        tel.progress_update(1, 4)
        snap = tel.finish()
        events = tel.sink.events
        for event in events:
            validate_event(event)
        times = [e["t"] for e in events]
        assert times == sorted(times)
        assert events[-1]["event"] == "metrics"
        assert snap["counters"][0]["name"] == "photons"

    def test_count_mirrors_cumulative_value(self):
        tel = Telemetry.in_memory()
        tel.count("photons", 5)
        tel.count("photons", 7)
        counter_events = [e for e in tel.sink.events if e["event"] == "counter"]
        assert [e["value"] for e in counter_events] == [5, 12]

    def test_span_handle_api_for_split_call_sites(self):
        tel = Telemetry.in_memory()
        handle = tel.span_begin("task", task=0)
        tel.span_finish("task", handle, outcome="merged")
        start, end = tel.sink.events
        assert start["span_id"] == end["span_id"]
        assert end["outcome"] == "merged"

    def test_explicit_simulated_time(self):
        tel = Telemetry.in_memory()
        tel.emit("run_start", t=0.0, sim=True)
        tel.emit("run_end", t=12.5, sim=True)
        assert [e["t"] for e in tel.sink.events] == [0.0, 12.5]
        assert "ts" not in tel.sink.events[0]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry.to_jsonl(path)
        with tel.span("task"):
            pass
        tel.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        for event in events:
            validate_event(event)
        assert events[-1]["event"] == "metrics"


class TestProgress:
    def test_stream_progress_emits_json_lines(self):
        stream = io.StringIO()
        reporter = StreamProgress(stream)
        reporter.update(1, 4, photons_per_s=100.0)
        reporter.close()
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert payload["progress"]["done"] == 1
        assert payload["progress"]["total"] == 4

    def test_tty_progress_draws_bar(self):
        stream = io.StringIO()
        reporter = TTYProgress(stream=stream, min_interval=0.0)
        reporter.update(2, 4)
        reporter.update(4, 4)
        reporter.close()
        text = stream.getvalue()
        assert "4/4" in text
        assert text.endswith("\n")

    def test_progress_update_routed_through_telemetry(self):
        stream = io.StringIO()
        tel = Telemetry.in_memory(progress=StreamProgress(stream))
        tel.progress_update(3, 10)
        assert '"done": 3' in stream.getvalue()
        progress_events = [e for e in tel.sink.events if e["event"] == "progress"]
        assert progress_events[0]["done"] == 3
