"""Tests for the Simulation facade and the canonical task decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Simulation, run_photons, split_photons, task_rng
from repro.core.simulation import _KERNELS


class TestSplitPhotons:
    def test_exact_division(self):
        assert split_photons(300, 100) == [100, 100, 100]

    def test_remainder(self):
        assert split_photons(250, 100) == [100, 100, 50]

    def test_small_budget(self):
        assert split_photons(5, 100) == [5]

    def test_zero(self):
        assert split_photons(0, 100) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="n_photons"):
            split_photons(-1, 10)
        with pytest.raises(ValueError, match="task_size"):
            split_photons(10, 0)


class TestRunPhotons:
    def test_unknown_kernel(self, fast_config):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_photons(fast_config, 10, task_rng(0, 0), "warp")

    def test_kernel_registry_contains_both(self):
        assert {"vector", "scalar"} <= set(_KERNELS)

    def test_dispatch_equivalence(self, fast_config):
        direct = run_photons(fast_config, 100, task_rng(1, 0), "vector")
        from repro.core import run_batch_vectorized

        again = run_batch_vectorized(fast_config, 100, task_rng(1, 0))
        assert direct.summary() == again.summary()


class TestSimulationFacade:
    def test_basic_run(self, fast_config):
        tally = Simulation(fast_config).run(200, seed=1)
        assert tally.n_launched == 200
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_zero_photons(self, fast_config):
        tally = Simulation(fast_config).run(0)
        assert tally.n_launched == 0
        assert np.isnan(tally.diffuse_reflectance)

    def test_reproducible(self, fast_config):
        a = Simulation(fast_config).run(150, seed=3)
        b = Simulation(fast_config).run(150, seed=3)
        assert a.summary() == b.summary()

    def test_seed_matters(self, fast_config):
        a = Simulation(fast_config).run(150, seed=3)
        b = Simulation(fast_config).run(150, seed=4)
        assert a.diffuse_reflectance != b.diffuse_reflectance

    def test_task_size_changes_streams_not_physics(self, fast_config):
        one = Simulation(fast_config).run(400, seed=5, task_size=400)
        split = Simulation(fast_config).run(400, seed=5, task_size=100)
        # Different stream decomposition -> different realisation ...
        assert one.diffuse_reflectance != split.diffuse_reflectance
        # ... same physics.
        assert one.diffuse_reflectance == pytest.approx(
            split.diffuse_reflectance, rel=0.3
        )

    def test_scalar_kernel_selectable(self, fast_config):
        tally = Simulation(fast_config).run(50, seed=1, kernel="scalar")
        assert tally.n_launched == 50


class TestKernelTelemetryForwarding:
    """Telemetry reaches only kernels that declare the parameter."""

    def test_declaring_kernel_is_traced(self, fast_config):
        from repro.observe import Telemetry

        tel = Telemetry.in_memory()
        run_photons(fast_config, 50, task_rng(0, 0), "vector", telemetry=tel)
        assert any(e["event"] == "span_start" for e in tel.sink.events)

    def test_legacy_kernel_without_parameter_runs_untraced(self, fast_config):
        from repro.observe import Telemetry

        def legacy_kernel(config, n_photons, rng):
            return run_photons(config, n_photons, rng, "vector")

        _KERNELS["legacy-test"] = legacy_kernel
        try:
            tel = Telemetry.in_memory()
            tally = run_photons(
                fast_config, 50, task_rng(0, 0), "legacy-test", telemetry=tel
            )
            assert tally.n_launched == 50
        finally:
            del _KERNELS["legacy-test"]
