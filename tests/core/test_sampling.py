"""Tests for the Monte Carlo sampling primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import (
    hg_pdf,
    rotate_direction,
    sample_azimuth,
    sample_hg_cosine,
    sample_step_length,
)


class TestStepLength:
    def test_mean_is_mean_free_path(self, rng):
        mu_t = 2.5
        s = sample_step_length(mu_t, rng, 200_000)
        assert s.mean() == pytest.approx(1.0 / mu_t, rel=0.01)

    def test_all_positive_finite(self, rng):
        s = sample_step_length(3.0, rng, 100_000)
        assert (s > 0).all()
        assert np.isfinite(s).all()

    def test_exponential_distribution(self, rng):
        # P(S > s) = exp(-mu_t s): check the survival function at a few points.
        mu_t = 1.0
        s = sample_step_length(mu_t, rng, 200_000)
        for q in (0.5, 1.0, 2.0):
            expected = np.exp(-mu_t * q)
            assert (s > q).mean() == pytest.approx(expected, abs=0.01)

    def test_zero_mu_t_gives_infinite_steps(self, rng):
        s = sample_step_length(0.0, rng, 10)
        assert np.isinf(s).all()

    def test_array_mu_t_broadcast(self, rng):
        mu_t = np.array([1.0, 2.0, 4.0])
        s = sample_step_length(mu_t, rng)
        assert s.shape == (3,)

    def test_per_photon_coefficients(self, rng):
        # Larger mu_t must give stochastically shorter steps in aggregate.
        mu_t = np.full(50_000, 1.0)
        s1 = sample_step_length(mu_t, rng)
        s4 = sample_step_length(4.0 * mu_t, rng)
        assert s4.mean() < s1.mean() / 2


class TestHGCosine:
    @pytest.mark.parametrize("g", [-0.9, -0.5, 0.0, 0.3, 0.8, 0.99])
    def test_mean_cosine_equals_g(self, rng, g):
        mu = sample_hg_cosine(g, rng, 400_000)
        # Var of HG cosine is bounded by 1; SE < 0.002.
        assert mu.mean() == pytest.approx(g, abs=0.01)

    def test_range(self, rng):
        mu = sample_hg_cosine(0.9, rng, 100_000)
        assert (mu >= -1.0).all() and (mu <= 1.0).all()

    def test_isotropic_uniform(self, rng):
        mu = sample_hg_cosine(0.0, rng, 200_000)
        # Uniform on [-1, 1]: variance 1/3.
        assert mu.var() == pytest.approx(1.0 / 3.0, rel=0.02)

    def test_per_photon_g_array(self, rng):
        g = np.array([0.0, 0.9])
        mu = sample_hg_cosine(np.repeat(g, 100_000), rng)
        assert mu[:100_000].mean() == pytest.approx(0.0, abs=0.02)
        assert mu[100_000:].mean() == pytest.approx(0.9, abs=0.02)

    def test_distribution_matches_pdf(self, rng):
        g = 0.7
        mu = sample_hg_cosine(g, rng, 400_000)
        hist, edges = np.histogram(mu, bins=50, range=(-1, 1), density=True)
        centres = 0.5 * (edges[:-1] + edges[1:])
        expected = hg_pdf(centres, g)
        # Allow a few percent everywhere except the sharp forward peak.
        ratio = hist / expected
        assert np.abs(ratio[:-2] - 1.0).max() < 0.15


class TestHGPdf:
    def test_normalised(self):
        mu = np.linspace(-1, 1, 20_001)
        for g in (0.0, 0.5, 0.9):
            integral = np.trapezoid(hg_pdf(mu, g), mu)
            assert integral == pytest.approx(1.0, rel=1e-4)

    def test_mean_is_g(self):
        mu = np.linspace(-1, 1, 20_001)
        for g in (0.0, 0.5, 0.9):
            mean = np.trapezoid(mu * hg_pdf(mu, g), mu)
            assert mean == pytest.approx(g, abs=1e-4)

    def test_invalid_g_rejected(self):
        with pytest.raises(ValueError, match="g must lie"):
            hg_pdf(0.0, 1.0)


class TestAzimuth:
    def test_range_and_uniformity(self, rng):
        psi = sample_azimuth(rng, 200_000)
        assert (psi >= 0).all() and (psi < 2 * np.pi).all()
        assert psi.mean() == pytest.approx(np.pi, rel=0.01)
        # Uniform variance (2pi)^2/12.
        assert psi.var() == pytest.approx((2 * np.pi) ** 2 / 12, rel=0.02)


class TestRotateDirection:
    def test_preserves_unit_norm(self, rng):
        n = 10_000
        u = rng.normal(size=(n, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        mu = sample_hg_cosine(0.8, rng, n)
        psi = sample_azimuth(rng, n)
        nux, nuy, nuz = rotate_direction(u[:, 0], u[:, 1], u[:, 2], mu, psi)
        norm = np.sqrt(nux**2 + nuy**2 + nuz**2)
        np.testing.assert_allclose(norm, 1.0, atol=1e-12)

    def test_rotation_angle_matches_cos_theta(self, rng):
        n = 10_000
        u = rng.normal(size=(n, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        mu = sample_hg_cosine(0.5, rng, n)
        psi = sample_azimuth(rng, n)
        nux, nuy, nuz = rotate_direction(u[:, 0], u[:, 1], u[:, 2], mu, psi)
        dot = u[:, 0] * nux + u[:, 1] * nuy + u[:, 2] * nuz
        np.testing.assert_allclose(dot, mu, atol=1e-9)

    def test_vertical_up_special_case(self, rng):
        mu = np.array([0.6])
        psi = np.array([1.0])
        nux, nuy, nuz = rotate_direction(
            np.array([0.0]), np.array([0.0]), np.array([1.0]), mu, psi
        )
        assert nuz[0] == pytest.approx(0.6)
        assert nux[0] ** 2 + nuy[0] ** 2 + nuz[0] ** 2 == pytest.approx(1.0)

    def test_vertical_down_special_case(self):
        mu = np.array([0.6])
        psi = np.array([0.5])
        nux, nuy, nuz = rotate_direction(
            np.array([0.0]), np.array([0.0]), np.array([-1.0]), mu, psi
        )
        assert nuz[0] == pytest.approx(-0.6)

    def test_identity_rotation(self):
        # cos_theta = 1 leaves the direction unchanged.
        nux, nuy, nuz = rotate_direction(
            np.array([0.6]), np.array([0.0]), np.array([0.8]),
            np.array([1.0]), np.array([2.0]),
        )
        assert nux[0] == pytest.approx(0.6, abs=1e-12)
        assert nuz[0] == pytest.approx(0.8, abs=1e-12)

    def test_azimuthal_symmetry(self, rng):
        # Averaged over uniform psi, the transverse components vanish.
        n = 200_000
        mu = np.full(n, 0.3)
        psi = sample_azimuth(rng, n)
        nux, nuy, _ = rotate_direction(
            np.zeros(n), np.zeros(n), np.ones(n), mu, psi
        )
        assert abs(nux.mean()) < 0.005
        assert abs(nuy.mean()) < 0.005
