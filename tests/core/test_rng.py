"""Tests for the per-task RNG stream factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import StreamFactory, spawn_rngs, task_rng


class TestTaskRng:
    def test_same_key_same_stream(self):
        a = task_rng(42, 3).random(100)
        b = task_rng(42, 3).random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_tasks_differ(self):
        a = task_rng(42, 0).random(100)
        b = task_rng(42, 1).random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = task_rng(1, 0).random(100)
        b = task_rng(2, 0).random(100)
        assert not np.array_equal(a, b)

    def test_negative_task_index_rejected(self):
        with pytest.raises(ValueError, match="task_index"):
            task_rng(0, -1)

    def test_streams_are_statistically_independent(self):
        # Correlation between distinct streams should be tiny.
        a = task_rng(7, 0).random(20_000)
        b = task_rng(7, 1).random(20_000)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.03

    def test_large_task_index(self):
        g = task_rng(0, 10**9)
        assert 0.0 <= g.random() < 1.0


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_empty(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="n_tasks"):
            spawn_rngs(0, -1)

    def test_matches_task_rng(self):
        generators = spawn_rngs(9, 3)
        for i, g in enumerate(generators):
            np.testing.assert_array_equal(g.random(10), task_rng(9, i).random(10))


class TestStreamFactory:
    def test_factory_equals_function(self):
        f = StreamFactory(seed=5)
        np.testing.assert_array_equal(f.for_task(2).random(10), task_rng(5, 2).random(10))

    def test_factory_is_picklable(self):
        import pickle

        f = pickle.loads(pickle.dumps(StreamFactory(seed=11)))
        np.testing.assert_array_equal(f.for_task(0).random(5), task_rng(11, 0).random(5))

    def test_spawn(self):
        f = StreamFactory(seed=3)
        gens = f.spawn(4)
        assert len(gens) == 4
        values = [g.random() for g in gens]
        assert len(set(values)) == 4
