"""Tests for Russian-roulette termination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.roulette import RouletteConfig, roulette


class TestRouletteConfig:
    def test_defaults(self):
        cfg = RouletteConfig()
        assert cfg.threshold == pytest.approx(1e-4)
        assert cfg.boost == pytest.approx(10.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            RouletteConfig(threshold=-1.0)

    def test_invalid_boost(self):
        with pytest.raises(ValueError, match="boost"):
            RouletteConfig(boost=1.0)


class TestRoulette:
    def test_above_threshold_untouched(self, rng):
        w = np.full(100, 0.5)
        alive = np.ones(100, dtype=bool)
        roulette(w, alive, rng, RouletteConfig(threshold=1e-4))
        np.testing.assert_array_equal(w, 0.5)
        assert alive.all()

    def test_below_threshold_processed(self, rng):
        n = 100_000
        w = np.full(n, 1e-5)
        alive = np.ones(n, dtype=bool)
        cfg = RouletteConfig(threshold=1e-4, boost=10.0)
        roulette(w, alive, rng, cfg)
        survivors = alive.sum()
        # ~1/boost survive.
        assert survivors / n == pytest.approx(0.1, abs=0.01)
        # Survivors are boosted, losers zeroed.
        np.testing.assert_allclose(w[alive], 1e-4)
        np.testing.assert_array_equal(w[~alive], 0.0)

    def test_expected_weight_conserved(self, rng):
        n = 200_000
        w = np.full(n, 1e-5)
        alive = np.ones(n, dtype=bool)
        before = w.sum()
        roulette(w, alive, rng, RouletteConfig(threshold=1e-4, boost=10.0))
        after = w.sum()
        assert after == pytest.approx(before, rel=0.02)

    def test_dead_photons_ignored(self, rng):
        w = np.full(10, 1e-5)
        alive = np.zeros(10, dtype=bool)
        roulette(w, alive, rng)
        np.testing.assert_array_equal(w, 1e-5)  # untouched
        assert not alive.any()

    def test_zero_weight_not_rouletted(self, rng):
        w = np.zeros(10)
        alive = np.ones(10, dtype=bool)
        roulette(w, alive, rng)
        assert alive.all()  # zero-weight photons are not the roulette's job

    def test_empty_arrays(self, rng):
        w = np.empty(0)
        alive = np.empty(0, dtype=bool)
        roulette(w, alive, rng)  # must not raise

    def test_rng_consumption_only_for_candidates(self, rng):
        # With no candidates the generator must not advance: the next draw
        # equals the draw of a fresh generator with the same seed.
        w = np.full(10, 0.5)
        alive = np.ones(10, dtype=bool)
        roulette(w, alive, rng)
        untouched = np.random.default_rng(12345)  # same seed as the fixture
        assert rng.random() == untouched.random()
