"""Tests for simulation configuration objects."""

from __future__ import annotations

import pickle

import pytest

from repro.core import RecordConfig, SimulationConfig
from repro.detect import AcceptAll, DiscDetector, GridSpec, PathlengthGate, TimeGate
from repro.sources import PencilBeam
from repro.tissue.optical import SPEED_OF_LIGHT_MM_PER_NS


class TestRecordConfig:
    def test_defaults_disabled(self):
        r = RecordConfig()
        assert r.absorption_grid is None
        assert r.path_grid is None
        assert r.pathlength_bins is None

    @pytest.mark.parametrize("field,value", [
        ("pathlength_bins", (5.0, 1.0, 10)),
        ("pathlength_bins", (0.0, 1.0, 0)),
        ("reflectance_rho_bins", (0.0, 10)),
        ("reflectance_rho_bins", (1.0, 0)),
        ("penetration_bins", (-1.0, 10)),
        ("penetration_bins", (1.0, -1)),
    ])
    def test_invalid_bins(self, field, value):
        with pytest.raises(ValueError):
            RecordConfig(**{field: value})

    def test_grid_spec_accepted(self):
        spec = GridSpec.cube(10, 5.0, 5.0)
        r = RecordConfig(absorption_grid=spec, path_grid=spec)
        assert r.absorption_grid is spec


class TestSimulationConfig:
    def test_defaults(self, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=PencilBeam())
        assert isinstance(config.detector, AcceptAll)
        assert config.gate is None
        assert config.boundary_mode == "probabilistic"
        assert config.max_steps > 0

    def test_invalid_boundary_mode(self, fast_stack):
        with pytest.raises(ValueError, match="boundary_mode"):
            SimulationConfig(
                stack=fast_stack, source=PencilBeam(), boundary_mode="quantum"
            )

    def test_invalid_max_steps(self, fast_stack):
        with pytest.raises(ValueError, match="max_steps"):
            SimulationConfig(stack=fast_stack, source=PencilBeam(), max_steps=0)

    def test_pathlength_gate_passthrough(self, fast_stack):
        gate = PathlengthGate(1.0, 2.0)
        config = SimulationConfig(stack=fast_stack, source=PencilBeam(), gate=gate)
        assert config.pathlength_gate() is gate

    def test_time_gate_converted(self, fast_stack):
        config = SimulationConfig(
            stack=fast_stack, source=PencilBeam(), gate=TimeGate(1.0, 2.0)
        )
        converted = config.pathlength_gate()
        assert converted.l_min == pytest.approx(SPEED_OF_LIGHT_MM_PER_NS)

    def test_no_gate(self, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=PencilBeam())
        assert config.pathlength_gate() is None

    def test_with_functional_update(self, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=PencilBeam())
        detector = DiscDetector(5.0, 0.0, radius=1.0)
        updated = config.with_(detector=detector)
        assert updated.detector is detector
        assert isinstance(config.detector, AcceptAll)  # original untouched

    def test_picklable(self, fast_stack):
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            detector=DiscDetector(1.0, 0.0, radius=0.5),
            gate=PathlengthGate(0.0, 10.0),
            records=RecordConfig(penetration_bins=(10.0, 5)),
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.gate == config.gate
        assert clone.records == config.records
        assert len(clone.stack) == len(config.stack)
