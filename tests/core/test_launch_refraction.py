"""Tests for angle-dependent launch physics (specular + Snell at entry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    fresnel_reflectance,
    run_batch_scalar,
    run_batch_vectorized,
    specular_reflectance,
    task_rng,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)


def config_with_tilt(tilt: float) -> SimulationConfig:
    return SimulationConfig(
        stack=LayerStack.homogeneous(PROPS), source=PencilBeam(tilt=tilt)
    )


class TestNormalIncidence:
    @pytest.mark.parametrize("kernel", [run_batch_scalar, run_batch_vectorized])
    def test_matches_classic_specular(self, kernel):
        tally = kernel(config_with_tilt(0.0), 200, task_rng(0, 0))
        expected = specular_reflectance(1.0, 1.4)
        assert tally.specular_reflectance == pytest.approx(expected, rel=1e-12)


class TestTiltedIncidence:
    @pytest.mark.parametrize("kernel", [run_batch_scalar, run_batch_vectorized])
    def test_specular_grows_with_tilt(self, kernel):
        normal = kernel(config_with_tilt(0.0), 100, task_rng(1, 0))
        tilted = kernel(config_with_tilt(1.2), 100, task_rng(1, 0))
        assert tilted.specular_reflectance > normal.specular_reflectance

    @pytest.mark.parametrize("kernel", [run_batch_scalar, run_batch_vectorized])
    def test_specular_equals_fresnel_at_angle(self, kernel):
        tilt = 0.8
        tally = kernel(config_with_tilt(tilt), 100, task_rng(2, 0))
        expected = float(fresnel_reflectance(np.cos(tilt), 1.0, 1.4))
        assert tally.specular_reflectance == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("kernel", [run_batch_scalar, run_batch_vectorized])
    def test_energy_conserved_with_tilt(self, kernel):
        tally = kernel(config_with_tilt(1.0), 300, task_rng(3, 0))
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_voxel_kernel_matches(self):
        from repro.voxel import VoxelConfig, homogeneous_block, run_voxel_batch

        tilt = 0.8
        block = homogeneous_block(PROPS, (16, 16, 16), half_extent=8.0, depth=8.0)
        config = VoxelConfig(medium=block, source=PencilBeam(tilt=tilt))
        tally = run_voxel_batch(config, 100, task_rng(4, 0))
        expected = float(fresnel_reflectance(np.cos(tilt), 1.0, 1.4))
        assert tally.specular_reflectance == pytest.approx(expected, rel=1e-12)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)


class TestSnellRefractionAtEntry:
    def test_refracted_direction_statistics(self):
        """A strongly tilted beam in a forward-scattering medium deposits
        its first-interaction energy displaced along +x by the *refracted*
        angle, not the incident one."""
        from repro.core import RecordConfig
        from repro.detect import GridSpec

        # Ballistic absorption along the entry ray; the grid is much finer
        # than the mean free path so voxel-centre binning cannot bias the
        # deposit centroid.
        props = OpticalProperties(mu_a=1.0, mu_s=0.0, g=0.0, n=1.5)
        tilt = 1.0  # 57 degrees in air
        spec = GridSpec.cube(120, 12.0, 12.0)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(props, 12.0),
            source=PencilBeam(tilt=tilt),
            records=RecordConfig(absorption_grid=spec),
        )
        tally = run_batch_vectorized(config, 5_000, task_rng(5, 0))
        grid = tally.absorption_grid
        x = spec.axis_centres(0)
        z = spec.axis_centres(2)
        w = grid.sum(axis=1)  # (x, z)
        x_mean = (w.sum(axis=1) * x).sum() / w.sum()
        z_mean = (w.sum(axis=0) * z).sum() / w.sum()
        observed_tan = x_mean / z_mean
        # Snell: sin(t) = sin(tilt)/1.5.
        sin_t = np.sin(tilt) / 1.5
        expected_tan = sin_t / np.sqrt(1 - sin_t**2)
        incident_tan = np.tan(tilt)
        assert observed_tan == pytest.approx(expected_tan, rel=0.05)
        assert abs(observed_tan - incident_tan) > 0.3  # clearly not unrefracted
