"""Tests for the incremental pairwise tally reduction (repro.core.reduce)."""

from __future__ import annotations

import copy
import math
import pickle
import random

import numpy as np
import pytest

from repro.core import (
    PairwiseReducer,
    TallyFrontier,
    RecordConfig,
    SimulationConfig,
    SpanFolder,
    Tally,
    aligned_spans,
    prefix_spans,
    reduce_all,
    span_level,
    task_rng,
)
from repro.core.simulation import run_photons
from repro.detect.records import GridSpec
from repro.observe import Telemetry
from repro.sources import PencilBeam


@pytest.fixture
def rich_config(fast_stack) -> SimulationConfig:
    """Config with every optional recording on, so merges touch all fields."""
    return SimulationConfig(
        stack=fast_stack,
        source=PencilBeam(),
        records=RecordConfig(
            absorption_grid=GridSpec(shape=(4, 4, 4), lo=(-2, -2, 0), hi=(2, 2, 4)),
            pathlength_bins=(0.0, 50.0, 16),
            penetration_bins=(10.0, 16),
        ),
    )


def make_tallies(config: SimulationConfig, n: int, photons: int = 30) -> list[Tally]:
    return [run_photons(config, photons, task_rng(7, i)) for i in range(n)]


class TestImerge:
    def test_bit_identical_to_merge(self, rich_config):
        a, b = make_tallies(rich_config, 2)
        merged = a.merge(b)
        accumulated = copy.deepcopy(a).imerge(b)
        assert accumulated == merged  # Tally.__eq__ is bitwise-strict

    def test_returns_self_and_leaves_other_untouched(self, rich_config):
        a, b = make_tallies(rich_config, 2)
        b_before = copy.deepcopy(b)
        out = a.imerge(b)
        assert out is a
        assert b == b_before

    def test_operand_order_is_bitwise_irrelevant(self, rich_config):
        """IEEE-754 addition is commutative bitwise, so accumulate-into-a
        equals accumulate-into-b — the property that lets the reducer mutate
        whichever operand it owns."""
        a, b = make_tallies(rich_config, 2)
        ab = copy.deepcopy(a).imerge(b)
        ba = copy.deepcopy(b).imerge(a)
        assert ab == ba

    def test_shape_mismatch_rejected(self, rich_config, fast_config):
        a = make_tallies(rich_config, 1)[0]
        c = make_tallies(fast_config, 1)[0]
        with pytest.raises(ValueError, match="RecordConfig"):
            a.imerge(c)


class TestPairwiseReducer:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_any_completion_order_is_bit_identical(self, rich_config, n):
        tallies = make_tallies(rich_config, n)
        baseline = reduce_all([copy.deepcopy(t) for t in tallies], owned=True)
        rng = random.Random(42)
        for _ in range(4):
            order = list(range(n))
            rng.shuffle(order)
            reducer = PairwiseReducer(n)
            for i in order:
                reducer.add(i, copy.deepcopy(tallies[i]), owned=True)
            result = reducer.result()
            assert result == baseline
            assert pickle.dumps(result) == pickle.dumps(baseline)

    def test_owned_and_copied_paths_match(self, rich_config):
        tallies = make_tallies(rich_config, 5)
        owned = PairwiseReducer(5)
        shared = PairwiseReducer(5)
        for i, t in enumerate(tallies):
            owned.add(i, copy.deepcopy(t), owned=True)
            shared.add(i, t, owned=False)
        assert owned.result() == shared.result()

    def test_unowned_leaves_never_mutated(self, rich_config):
        tallies = make_tallies(rich_config, 4)
        snapshots = [copy.deepcopy(t) for t in tallies]
        reducer = PairwiseReducer(4)
        for i, t in enumerate(tallies):
            reducer.add(i, t, owned=False)
        reducer.result()
        for t, snap in zip(tallies, snapshots):
            assert t == snap

    def test_duplicate_index_rejected(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        reducer = PairwiseReducer(3)
        reducer.add(1, t)
        with pytest.raises(ValueError, match="duplicate"):
            reducer.add(1, t)

    def test_out_of_range_rejected(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        reducer = PairwiseReducer(3)
        with pytest.raises(ValueError, match="out of range"):
            reducer.add(3, t)
        with pytest.raises(ValueError, match="out of range"):
            reducer.add(-1, t)

    def test_incomplete_result_raises(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        reducer = PairwiseReducer(2)
        reducer.add(0, t)
        with pytest.raises(ValueError, match="incomplete"):
            reducer.result()

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError, match="n_tasks"):
            PairwiseReducer(0)

    def test_reduce_all_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            reduce_all([])


class TestAlignedSpans:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 16, 17])
    @pytest.mark.parametrize("span_size", [1, 2, 3, 4, 8, 64])
    def test_spans_cover_range_and_are_tree_aligned(self, n, span_size):
        spans = aligned_spans(n, span_size)
        assert spans[0][0] == 0
        assert spans[-1][1] == n
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start  # contiguous, no overlap
        for start, stop in spans:
            span_level(start, stop, n)  # raises if not a canonical subtree

    def test_span_size_rounds_down_to_power_of_two(self):
        assert aligned_spans(16, 3) == aligned_spans(16, 2)
        assert aligned_spans(16, 7) == aligned_spans(16, 4)
        assert [e - s for s, e in aligned_spans(16, 4)] == [4, 4, 4, 4]

    def test_tail_span_may_be_short(self):
        assert aligned_spans(13, 4) == [(0, 4), (4, 8), (8, 12), (12, 13)]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            aligned_spans(8, 0)
        with pytest.raises(ValueError):
            aligned_spans(-1, 4)


class TestSpanLevel:
    def test_misaligned_start_rejected(self):
        with pytest.raises(ValueError, match="align"):
            span_level(2, 6, 8)  # width 4 but start not a multiple of 4

    def test_partial_non_tail_block_rejected(self):
        with pytest.raises(ValueError, match="align"):
            span_level(0, 3, 8)  # [0, 3) is not a subtree when 3 < 8

    def test_tail_block_accepted(self):
        # [8, 13) is the clipped level-3 block [8, 16) of a 13-task run,
        # and a single-task tail is its own leaf.
        assert span_level(8, 13, 13) == 3
        assert span_level(12, 13, 13) == 0


class TestSpanFolding:
    """Worker-local folds must reproduce the coordinator's merges bitwise."""

    @pytest.mark.parametrize("n,span_size", [(8, 4), (13, 4), (16, 8), (5, 2)])
    def test_span_folds_bit_identical_to_per_leaf(self, rich_config, n, span_size):
        tallies = make_tallies(rich_config, n, photons=10)
        baseline = PairwiseReducer(n)
        for i, t in enumerate(tallies):
            baseline.add(i, copy.deepcopy(t), owned=True)
        expected = baseline.result()

        rng = random.Random(9)
        for _ in range(3):
            spans = aligned_spans(n, span_size)
            rng.shuffle(spans)  # spans complete in any order
            reducer = PairwiseReducer(n)
            for start, stop in spans:
                folder = SpanFolder(n, start, stop)
                order = list(range(start, stop))
                rng.shuffle(order)  # leaves fold in any order too
                for i in order:
                    folder.add(i, copy.deepcopy(tallies[i]), owned=True)
                reducer.add_span(start, stop, folder.partial(), owned=True)
            result = reducer.result()
            assert result == expected
            assert pickle.dumps(result) == pickle.dumps(expected)

    def test_mixed_spans_and_singles(self, rich_config):
        n = 11
        tallies = make_tallies(rich_config, n, photons=10)
        expected = reduce_all([copy.deepcopy(t) for t in tallies], owned=True)

        reducer = PairwiseReducer(n)
        folder = SpanFolder(n, 0, 4)
        for i in range(4):
            folder.add(i, copy.deepcopy(tallies[i]), owned=True)
        reducer.add_span(0, 4, folder.partial(), owned=True)
        for i in range(4, 8):
            reducer.add(i, copy.deepcopy(tallies[i]), owned=True)
        tail = SpanFolder(n, 8, 11)
        for i in range(8, 11):
            tail.add(i, copy.deepcopy(tallies[i]), owned=True)
        reducer.add_span(8, 11, tail.partial(), owned=True)
        assert reducer.result() == expected

    def test_misaligned_span_rejected(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        reducer = PairwiseReducer(8)
        with pytest.raises(ValueError, match="align"):
            reducer.add_span(2, 6, t)

    def test_duplicate_across_span_and_leaf_rejected(self, rich_config):
        tallies = make_tallies(rich_config, 4, photons=10)
        reducer = PairwiseReducer(8)
        folder = SpanFolder(8, 0, 4)
        for i in range(4):
            folder.add(i, tallies[i])
        reducer.add_span(0, 4, folder.partial())
        with pytest.raises(ValueError, match="duplicate"):
            reducer.add(2, tallies[2])
        with pytest.raises(ValueError, match="duplicate"):
            reducer.add_span(0, 4, tallies[0])

    def test_folder_rejects_out_of_span_and_duplicate(self, rich_config):
        tallies = make_tallies(rich_config, 3, photons=10)
        folder = SpanFolder(8, 0, 4)
        with pytest.raises(ValueError, match="outside"):
            folder.add(5, tallies[0])
        folder.add(1, tallies[1])
        with pytest.raises(ValueError, match="duplicate"):
            folder.add(1, tallies[1])

    def test_incomplete_folder_partial_raises(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        folder = SpanFolder(8, 0, 4)
        folder.add(0, t)
        with pytest.raises(ValueError, match="incomplete"):
            folder.partial()


class TestMemoryBound:
    def test_in_order_peak_is_logarithmic(self, rich_config):
        """In-order completion is a binary counter: ≤ ⌈log₂ n⌉ pending."""
        n = 100
        tallies = make_tallies(rich_config, n, photons=5)
        reducer = PairwiseReducer(n)
        for i, t in enumerate(tallies):
            reducer.add(i, t, owned=True)
        assert reducer.pending == 1
        assert reducer.pending_peak <= math.ceil(math.log2(n))

    @pytest.mark.parametrize("window", [1, 4, 8])
    def test_windowed_completion_peak_bound(self, rich_config, window):
        """Self-scheduling dispatch is in task order, so completions are a
        shuffle within a bounded window: pending stays ≤ ⌈log₂ n⌉ + window
        (the issue's acceptance bound, with `window` = tasks in flight)."""
        n = 64
        tallies = make_tallies(rich_config, n, photons=5)
        rng = np.random.default_rng(window)
        reducer = PairwiseReducer(n)
        in_flight: list[int] = []
        next_task = 0
        while reducer.n_added < n:
            while next_task < n and len(in_flight) < window:
                in_flight.append(next_task)
                next_task += 1
            done = in_flight.pop(rng.integers(len(in_flight)))
            reducer.add(done, tallies[done], owned=True)
            assert reducer.pending <= math.ceil(math.log2(n)) + window
        assert reducer.pending_peak <= math.ceil(math.log2(n)) + window
        reducer.result()


class TestTelemetry:
    def test_metrics_emitted_at_result(self, rich_config):
        tel = Telemetry.in_memory()
        tallies = make_tallies(rich_config, 6, photons=5)
        reducer = PairwiseReducer(6, telemetry=tel)
        for i, t in enumerate(tallies):
            reducer.add(i, t, owned=True)
        reducer.result()
        snapshot = tel.snapshot()
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert gauges["reduce.pending_peak"] >= 1
        assert gauges["reduce.pending_peak"] <= math.ceil(math.log2(6))
        assert counters["reduce.seconds"] >= 0.0


class TestPrefixSpans:
    def test_binary_decomposition(self):
        assert prefix_spans(0) == []
        assert prefix_spans(1) == [(0, 1)]
        assert prefix_spans(13) == [(0, 8), (8, 12), (12, 13)]

    @pytest.mark.parametrize("k", list(range(1, 40)))
    def test_tiles_prefix_with_aligned_power_of_two_spans(self, k):
        spans = prefix_spans(k)
        cursor = 0
        for start, stop in spans:
            width = stop - start
            assert start == cursor
            assert width & (width - 1) == 0  # power of two
            assert start % width == 0  # tree-aligned
            cursor = stop
        assert cursor == k

    def test_smaller_prefix_spans_nest_inside_larger(self):
        # The invariant extension relies on: every capture span of a smaller
        # budget lies entirely inside one capture span of any larger budget,
        # so a primed k1-frontier folds cleanly up to the k2 positions.
        for k1 in range(1, 32):
            for k2 in range(k1 + 1, 33):
                larger = prefix_spans(k2)
                for start, stop in prefix_spans(k1):
                    assert any(s <= start and stop <= e for s, e in larger), (
                        k1, k2, (start, stop),
                    )


class TestTallyFrontier:
    def test_validation(self, rich_config):
        (t,) = make_tallies(rich_config, 1)
        with pytest.raises(ValueError):
            TallyFrontier([(2, 2, t)])  # empty span
        with pytest.raises(ValueError):
            TallyFrontier([(0, 2, t), (1, 3, t)])  # overlap
        with pytest.raises(ValueError):
            TallyFrontier([(2, 4, t), (0, 2, t)])  # unsorted

    def test_prefix_tasks(self, rich_config):
        a, b = make_tallies(rich_config, 2)
        assert TallyFrontier([(0, 2, a), (2, 3, b)]).prefix_tasks == 3
        assert TallyFrontier([(1, 2, a)]).prefix_tasks == 0  # hole at 0
        assert TallyFrontier([(0, 2, a), (3, 4, b)]).prefix_tasks == 0  # gap
        assert TallyFrontier([]).prefix_tasks == 0


class TestFrontierCapture:
    @pytest.mark.parametrize("k,n", [(1, 2), (2, 5), (3, 8), (5, 13), (8, 9)])
    def test_extension_is_bit_identical(self, rich_config, k, n):
        tallies = make_tallies(rich_config, n)
        base = PairwiseReducer(k, capture_spans=prefix_spans(k))
        for i in range(k):
            base.add(i, copy.deepcopy(tallies[i]), owned=True)
        base.result()
        frontier = base.captured_frontier()
        assert frontier.prefix_tasks == k

        cold = PairwiseReducer(n)
        for i in range(n):
            cold.add(i, copy.deepcopy(tallies[i]), owned=True)
        baseline = cold.result()

        order = list(range(k, n))
        random.Random(1).shuffle(order)
        extended = PairwiseReducer(n)
        extended.prime(frontier)
        for i in order:
            extended.add(i, copy.deepcopy(tallies[i]), owned=True)
        assert extended.result() == baseline

    def test_captured_frontier_requires_completion(self, rich_config):
        tallies = make_tallies(rich_config, 2)
        reducer = PairwiseReducer(2, capture_spans=prefix_spans(2))
        reducer.add(0, tallies[0])
        with pytest.raises(ValueError, match="incomplete"):
            reducer.captured_frontier()

    def test_export_pending_resumes_bit_identically(self, rich_config):
        tallies = make_tallies(rich_config, 6)
        cold = PairwiseReducer(6)
        for i, t in enumerate(tallies):
            cold.add(i, copy.deepcopy(t), owned=True)
        baseline = cold.result()

        first = PairwiseReducer(6)
        for i in (0, 1, 4):
            first.add(i, copy.deepcopy(tallies[i]), owned=True)
        pending = first.export_pending()
        second = PairwiseReducer(6)
        second.prime(pending)
        for i in (2, 3, 5):
            second.add(i, copy.deepcopy(tallies[i]), owned=True)
        assert second.result() == baseline

    def test_capture_with_remainder_task(self, rich_config):
        # n_photons not divisible by task_size: the tree has one more task
        # than the capture decomposition covers (the clipped remainder).
        tallies = make_tallies(rich_config, 5)
        reducer = PairwiseReducer(5, capture_spans=prefix_spans(4))
        for i, t in enumerate(tallies):
            reducer.add(i, copy.deepcopy(t), owned=True)
        reducer.result()
        frontier = reducer.captured_frontier()
        assert [(s, e) for s, e, _ in frontier] == [(0, 4)]
        assert frontier.prefix_tasks == 4

    def test_clipped_capture_span_rejected(self):
        # (4, 7) is a legal clipped tail span of a 7-task tree, but clipped
        # spans are not canonical across budgets so capture refuses them.
        with pytest.raises(ValueError, match="clipped"):
            PairwiseReducer(7, capture_spans=[(4, 7)])
