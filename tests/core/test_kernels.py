"""Tests of the transport kernels (scalar reference and vectorised).

Most cases are parametrised over both kernels: the physics contracts must
hold identically.  Cross-kernel statistical equivalence has its own class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecordConfig,
    RouletteConfig,
    SimulationConfig,
    run_batch_scalar,
    run_batch_vectorized,
    specular_reflectance,
    task_rng,
)
from repro.detect import DiscDetector, GridSpec, PathlengthGate
from repro.sources import IsotropicPoint, PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties

KERNELS = {
    "scalar": run_batch_scalar,
    "vector": run_batch_vectorized,
}


def run(kernel, config, n, seed=0):
    return KERNELS[kernel](config, n, task_rng(seed, 0))


@pytest.fixture(params=sorted(KERNELS))
def kernel(request):
    return request.param


class TestEnergyConservation:
    def test_semi_infinite(self, kernel, fast_config):
        tally = run(kernel, fast_config, 500)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert tally.transmittance == 0.0  # semi-infinite: nothing leaves below

    def test_finite_slab(self, kernel, fast_slab):
        config = SimulationConfig(stack=fast_slab, source=PencilBeam())
        tally = run(kernel, config, 500)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert tally.transmittance > 0.0

    def test_multi_layer(self, kernel, three_layer_stack):
        config = SimulationConfig(stack=three_layer_stack, source=PencilBeam())
        tally = run(kernel, config, 500)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_classical_mode(self, kernel, fast_stack):
        config = SimulationConfig(
            stack=fast_stack, source=PencilBeam(), boundary_mode="classical"
        )
        tally = run(kernel, config, 500)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)


class TestSpecular:
    def test_surface_launch_pays_specular(self, kernel, fast_config):
        tally = run(kernel, fast_config, 100)
        expected = specular_reflectance(1.0, 1.4)
        assert tally.specular_reflectance == pytest.approx(expected, rel=1e-12)

    def test_buried_source_no_specular(self, kernel, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=IsotropicPoint(z0=1.0))
        tally = run(kernel, config, 100)
        assert tally.specular_weight == 0.0

    def test_matched_boundary_no_specular(self, kernel, matched_stack):
        config = SimulationConfig(stack=matched_stack, source=PencilBeam())
        tally = run(kernel, config, 100)
        assert tally.specular_weight == 0.0


class TestBeerLambert:
    """Ballistic (unscattered) transmission through an absorbing-only slab."""

    @pytest.mark.parametrize("mu_a,thickness", [(0.5, 2.0), (1.0, 1.0), (2.0, 0.5)])
    def test_absorbing_only_slab(self, kernel, mu_a, thickness):
        props = OpticalProperties(mu_a=mu_a, mu_s=0.0, g=0.0, n=1.0)
        stack = LayerStack.homogeneous(props, thickness)
        config = SimulationConfig(stack=stack, source=PencilBeam())
        n = 20_000 if kernel == "vector" else 2_000
        tally = run(kernel, config, n)
        # No scattering: photons fly straight; continuous absorption is
        # realised as discrete weighted interactions, so T = exp(-mu_a d)
        # in expectation.
        assert tally.transmittance == pytest.approx(
            np.exp(-mu_a * thickness), rel=0.05
        )
        assert tally.diffuse_reflectance == 0.0

    def test_transparent_slab_full_transmission(self, kernel):
        props = OpticalProperties(mu_a=0.0, mu_s=0.0, g=0.0, n=1.0)
        stack = LayerStack.homogeneous(props, 3.0)
        config = SimulationConfig(stack=stack, source=PencilBeam())
        tally = run(kernel, config, 100)
        assert tally.transmittance == pytest.approx(1.0)
        assert tally.total_absorbed_fraction == 0.0


class TestScatteringOnlyMedium:
    def test_no_absorption_all_weight_escapes(self, kernel):
        # mu_a = 0 in a slab: everything must eventually leave (R + T = 1).
        props = OpticalProperties(mu_a=0.0, mu_s=2.0, g=0.5, n=1.0)
        stack = LayerStack.homogeneous(props, 2.0)
        config = SimulationConfig(stack=stack, source=PencilBeam())
        n = 2_000 if kernel == "vector" else 300
        tally = run(kernel, config, n)
        assert tally.total_absorbed_fraction == 0.0
        total_out = tally.diffuse_reflectance + tally.transmittance
        assert total_out == pytest.approx(1.0, abs=1e-9)


class TestDetection:
    def test_detector_subsets_reflectance(self, kernel, fast_config):
        config = fast_config.with_(detector=DiscDetector(0.0, 0.0, radius=1.0))
        tally = run(kernel, config, 1_000)
        assert 0 < tally.detected_weight <= tally.diffuse_reflectance_weight
        assert 0 < tally.detected_count <= tally.n_launched

    def test_far_detector_detects_nothing(self, kernel, fast_config):
        config = fast_config.with_(detector=DiscDetector(1e6, 0.0, radius=0.1))
        tally = run(kernel, config, 200)
        assert tally.detected_count == 0

    def test_gate_reduces_detection(self, kernel, fast_config):
        open_tally = run(kernel, fast_config, 1_000)
        gated = fast_config.with_(gate=PathlengthGate(l_min=0.0, l_max=1.0))
        gated_tally = run(kernel, gated, 1_000)
        assert gated_tally.detected_count < open_tally.detected_count
        # Gating affects detection only, not the energy balance.
        assert gated_tally.diffuse_reflectance == pytest.approx(
            open_tally.diffuse_reflectance
        )

    def test_gated_pathlengths_inside_window(self, kernel, fast_config):
        gate = PathlengthGate(l_min=2.0, l_max=5.0)
        tally = run(kernel, fast_config.with_(gate=gate), 2_000)
        if tally.detected_count:
            assert tally.pathlength.minimum >= gate.l_min
            assert tally.pathlength.maximum < gate.l_max

    def test_pathlengths_are_optical(self, kernel, matched_stack):
        # In an n=1 medium the optical pathlength of any detected photon is
        # at least the geometric distance from source to exit (>= 0) and
        # the minimum over many photons approaches a couple of mean free
        # paths; just check positivity and finiteness here.
        config = SimulationConfig(stack=matched_stack, source=PencilBeam())
        tally = run(kernel, config, 500)
        assert tally.detected_count > 0
        assert tally.pathlength.minimum > 0
        assert np.isfinite(tally.pathlength.mean)


class TestMaxSteps:
    def test_cap_books_lost_weight(self, kernel, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=PencilBeam(), max_steps=3)
        tally = run(kernel, config, 300)
        assert tally.lost_weight > 0
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)


class TestRunawayGuard:
    def test_transparent_semi_infinite_is_lost(self, kernel):
        props = OpticalProperties(mu_a=0.0, mu_s=0.0, g=0.0, n=1.0)
        stack = LayerStack.homogeneous(props)  # semi-infinite vacuum
        config = SimulationConfig(stack=stack, source=PencilBeam())
        tally = run(kernel, config, 50)
        assert tally.lost_weight == pytest.approx(50.0)


class TestRecordings:
    def test_absorption_grid_accounts_for_absorbed_weight(self, kernel, fast_stack):
        spec = GridSpec.cube(16, 20.0, 20.0)
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            records=RecordConfig(absorption_grid=spec),
        )
        n = 1_000 if kernel == "vector" else 200
        tally = run(kernel, config, n)
        in_grid = tally.absorption_grid.sum()
        total = tally.absorbed_by_layer.sum()
        # The grid is a 20 mm window; almost all absorption in the fast
        # medium happens within it.
        assert in_grid == pytest.approx(total, rel=0.05)
        assert in_grid <= total + 1e-9

    def test_path_grid_only_detected(self, kernel, fast_stack):
        spec = GridSpec.cube(16, 10.0, 10.0)
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            detector=DiscDetector(1e6, 0.0, radius=0.1),  # detects nothing
            records=RecordConfig(path_grid=spec),
        )
        tally = run(kernel, config, 200)
        assert tally.detected_count == 0
        assert tally.path_grid.sum() == 0.0

    def test_path_grid_populated_when_detected(self, kernel, fast_stack):
        spec = GridSpec.cube(16, 10.0, 10.0)
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            records=RecordConfig(path_grid=spec),
        )
        tally = run(kernel, config, 300)
        assert tally.detected_count > 0
        assert tally.path_grid.sum() > 0.0

    def test_penetration_histogram_counts_all_photons(self, kernel, fast_stack):
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            records=RecordConfig(penetration_bins=(50.0, 100)),
        )
        n = 400
        tally = run(kernel, config, n)
        assert tally.penetration_hist.total == pytest.approx(float(n))

    def test_reflectance_rho_histogram(self, kernel, fast_config):
        config = fast_config.with_(
            records=RecordConfig(reflectance_rho_bins=(50.0, 25))
        )
        tally = run(kernel, config, 500)
        # Escaping weight within the histogram radius is (almost) all of Rd.
        assert tally.reflectance_rho_hist.total == pytest.approx(
            tally.diffuse_reflectance_weight, rel=0.02
        )


class TestCrossKernelAgreement:
    """The two kernels must agree statistically on every headline quantity."""

    N_VECTOR = 20_000
    N_SCALAR = 2_000

    @pytest.fixture(scope="class")
    def pair(self, request):
        props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
        stack = LayerStack.homogeneous(props)
        config = SimulationConfig(
            stack=stack,
            source=PencilBeam(),
            records=RecordConfig(penetration_bins=(30.0, 50)),
        )
        vector = run_batch_vectorized(config, self.N_VECTOR, task_rng(1, 0))
        scalar = run_batch_scalar(config, self.N_SCALAR, task_rng(2, 0))
        return vector, scalar

    def test_diffuse_reflectance(self, pair):
        # Rd ~ 0.073 with per-photon std ~ 0.15: the scalar estimate has
        # SE ~ 0.003, so a 12% relative tolerance is ~3 sigma.
        vector, scalar = pair
        assert vector.diffuse_reflectance == pytest.approx(
            scalar.diffuse_reflectance, rel=0.12
        )

    def test_absorbed_fraction(self, pair):
        # A ~ 0.9: relative fluctuations are tiny.
        vector, scalar = pair
        assert vector.total_absorbed_fraction == pytest.approx(
            scalar.total_absorbed_fraction, rel=0.02
        )

    def test_mean_pathlength(self, pair):
        vector, scalar = pair
        assert vector.pathlength.mean == pytest.approx(scalar.pathlength.mean, rel=0.1)

    def test_mean_penetration(self, pair):
        vector, scalar = pair
        v = vector.penetration_hist
        s = scalar.penetration_hist
        v_mean = (v.centres * v.counts).sum() / v.total
        s_mean = (s.centres * s.counts).sum() / s.total
        assert v_mean == pytest.approx(s_mean, rel=0.1)
