"""Tests for the mergeable Tally."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecordConfig, Tally
from repro.detect.records import GridSpec


def make_tally(**kw) -> Tally:
    defaults = dict(n_layers=3)
    defaults.update(kw)
    return Tally(**defaults)


class TestConstruction:
    def test_defaults(self):
        t = make_tally()
        assert t.n_launched == 0
        assert t.absorbed_by_layer.shape == (3,)
        assert t.absorption_grid is None
        assert t.path_grid is None

    def test_invalid_layers(self):
        with pytest.raises(ValueError, match="n_layers"):
            Tally(n_layers=0)

    def test_grids_allocated_from_records(self):
        spec = GridSpec.cube(8, 5.0, 5.0)
        t = Tally(n_layers=1, records=RecordConfig(absorption_grid=spec, path_grid=spec))
        assert t.absorption_grid.shape == (8, 8, 8)
        assert t.path_grid.shape == (8, 8, 8)

    def test_histograms_allocated(self):
        t = Tally(
            n_layers=1,
            records=RecordConfig(
                pathlength_bins=(0.0, 10.0, 5),
                reflectance_rho_bins=(20.0, 10),
                penetration_bins=(30.0, 15),
            ),
        )
        assert t.pathlength_hist.counts.shape == (5,)
        assert t.reflectance_rho_hist.counts.shape == (10,)
        assert t.penetration_hist.counts.shape == (15,)


class TestMerge:
    def test_scalar_fields_add(self):
        a = make_tally(n_launched=10, diffuse_reflectance_weight=2.0, detected_count=3)
        b = make_tally(n_launched=5, diffuse_reflectance_weight=1.0, detected_count=1)
        m = a.merge(b)
        assert m.n_launched == 15
        assert m.diffuse_reflectance_weight == pytest.approx(3.0)
        assert m.detected_count == 4

    def test_layer_absorption_adds(self):
        a = make_tally()
        b = make_tally()
        a.absorbed_by_layer[:] = [1.0, 2.0, 3.0]
        b.absorbed_by_layer[:] = [0.5, 0.5, 0.5]
        m = a.merge(b)
        np.testing.assert_allclose(m.absorbed_by_layer, [1.5, 2.5, 3.5])

    def test_mismatched_layers_rejected(self):
        with pytest.raises(ValueError, match="layers"):
            make_tally().merge(Tally(n_layers=2))

    def test_mismatched_records_rejected(self):
        spec = GridSpec.cube(4, 1.0, 1.0)
        a = Tally(n_layers=1, records=RecordConfig(path_grid=spec))
        b = Tally(n_layers=1)
        with pytest.raises(ValueError, match="RecordConfig"):
            a.merge(b)

    def test_grids_add(self):
        spec = GridSpec.cube(4, 1.0, 1.0)
        a = Tally(n_layers=1, records=RecordConfig(path_grid=spec))
        b = Tally(n_layers=1, records=RecordConfig(path_grid=spec))
        a.path_grid[0, 0, 0] = 1.0
        b.path_grid[0, 0, 0] = 2.0
        assert a.merge(b).path_grid[0, 0, 0] == pytest.approx(3.0)

    def test_merge_is_commutative(self):
        a = make_tally(n_launched=7, specular_weight=0.2)
        b = make_tally(n_launched=3, specular_weight=0.1)
        ab = a.merge(b)
        ba = b.merge(a)
        assert ab.summary() == ba.summary()

    def test_merge_all(self):
        parts = [make_tally(n_launched=i) for i in (1, 2, 3)]
        assert Tally.merge_all(parts).n_launched == 6

    def test_merge_all_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Tally.merge_all([])

    def test_merge_identity(self):
        a = make_tally(n_launched=4, transmittance_weight=1.5)
        zero = make_tally()
        m = a.merge(zero)
        assert m.n_launched == 4
        assert m.transmittance_weight == pytest.approx(1.5)


class TestProperties:
    def test_normalisation(self):
        t = make_tally(
            n_launched=100,
            specular_weight=3.0,
            diffuse_reflectance_weight=50.0,
            transmittance_weight=7.0,
        )
        assert t.specular_reflectance == pytest.approx(0.03)
        assert t.diffuse_reflectance == pytest.approx(0.5)
        assert t.transmittance == pytest.approx(0.07)

    def test_energy_balance(self):
        t = make_tally(
            n_launched=10,
            specular_weight=1.0,
            diffuse_reflectance_weight=4.0,
            transmittance_weight=2.0,
        )
        t.absorbed_by_layer[:] = [1.0, 1.0, 1.0]
        assert t.energy_balance == pytest.approx(1.0)

    def test_empty_tally_nan(self):
        t = make_tally()
        assert np.isnan(t.diffuse_reflectance)
        assert np.isnan(t.energy_balance)

    def test_dpf(self):
        t = make_tally(n_launched=1)
        t.pathlength.add(np.array([60.0]), np.array([1.0]))
        assert t.differential_pathlength_factor(10.0) == pytest.approx(6.0)

    def test_dpf_invalid_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            make_tally().differential_pathlength_factor(0.0)

    def test_summary_keys_stable(self):
        keys = set(make_tally(n_launched=1).summary())
        assert {"diffuse_reflectance", "energy_balance", "detected_count"} <= keys


class TestPenetrationRecording:
    def test_clipping_into_last_bin(self):
        t = Tally(n_layers=1, records=RecordConfig(penetration_bins=(10.0, 10)))
        t.record_penetration(np.array([5.0, 25.0, 9.99]))
        assert t.penetration_hist.total == pytest.approx(3.0)
        # The 25.0 sample lands in the last bin.
        assert t.penetration_hist.counts[-1] >= 1.0

    def test_noop_without_histogram(self):
        t = make_tally()
        t.record_penetration(np.array([1.0]))  # silently ignored
        assert t.penetration_hist is None
