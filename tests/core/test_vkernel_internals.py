"""White-box tests of the vectorised kernel's internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimulationConfig, run_batch_vectorized, task_rng
from repro.core.vkernel import _PathEvents, _State
from repro.detect import GridSpec
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)


class TestPathEvents:
    @pytest.fixture
    def spec(self):
        return GridSpec(shape=(4, 4, 4), lo=(0, 0, 0), hi=(4, 4, 4))

    def test_outside_events_dropped_at_append(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([1.0, 99.0]),  # second point far outside the grid
            np.array([1.0, 1.0]),
            np.array([1.0, 1.0]),
            np.array([0.5, 0.5]),
        )
        assert len(events.gids) == 1
        assert events.gids[0].tolist() == [0]

    def test_compact_deposits_detected_only(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([0.5, 1.5]),
            np.array([0.5, 0.5]),
            np.array([0.5, 0.5]),
            np.array([1.0, 2.0]),
        )
        grid = spec.zeros()
        detected = np.array([True, False])
        alive = np.array([False, False])
        events.compact(alive, detected, grid)
        assert grid.sum() == pytest.approx(1.0)  # only photon 0's weight
        assert not events.gids  # nothing retained (both dead)

    def test_compact_retains_live_photons(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([0.5, 1.5]),
            np.array([0.5, 0.5]),
            np.array([0.5, 0.5]),
            np.array([1.0, 2.0]),
        )
        grid = spec.zeros()
        events.compact(np.array([False, True]), np.array([False, False]), grid)
        assert grid.sum() == 0.0
        # Photon 1's event survives for a later compaction.
        assert events.gids[0].tolist() == [1]
        events.compact(np.array([False, False]), np.array([False, True]), grid)
        assert grid.sum() == pytest.approx(2.0)

    def test_empty_compact_noop(self, spec):
        events = _PathEvents(spec)
        grid = spec.zeros()
        events.compact(np.zeros(2, bool), np.zeros(2, bool), grid)
        assert grid.sum() == 0.0

    def test_mixed_dtype_inputs_deposit_exact_weights(self, spec):
        """gid/w arrive as lists or narrow dtypes; conversion must happen
        before masking so weights stay paired with their voxels."""
        events = _PathEvents(spec)
        events.append(
            [0, 1, 2],  # plain list gid
            np.array([0.5, 99.0, 2.5], dtype=np.float32),  # photon 1 outside
            np.array([0.5, 0.5, 0.5], dtype=np.float32),
            np.array([0.5, 0.5, 0.5], dtype=np.float32),
            np.array([1.25, 7.0, 0.5], dtype=np.float32),  # float32 weights
        )
        assert events.gids[0].dtype == np.int64
        assert events.ws[0].dtype == np.float64
        assert events.gids[0].tolist() == [0, 2]
        grid = spec.zeros()
        events.compact(
            np.zeros(3, bool), np.array([True, False, True]), grid
        )
        assert grid.sum() == pytest.approx(np.float32(1.25) + np.float32(0.5))
        # Each weight landed in its own photon's voxel, not a neighbour's.
        flat = grid.reshape(-1)
        assert flat[flat > 0].tolist() == [
            pytest.approx(float(np.float32(1.25))),
            pytest.approx(float(np.float32(0.5))),
        ]

    def test_scalar_weight_broadcasts_to_all_events(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1], dtype=np.int32),  # narrow gid dtype
            np.array([0.5, 1.5]),
            np.array([0.5, 0.5]),
            np.array([0.5, 0.5]),
            0.75,  # scalar weight applies to every event
        )
        grid = spec.zeros()
        events.compact(np.zeros(2, bool), np.ones(2, bool), grid)
        assert grid.sum() == pytest.approx(1.5)

    def test_misaligned_inputs_rejected(self, spec):
        events = _PathEvents(spec)
        with pytest.raises(ValueError, match="misaligned"):
            events.append(
                np.array([0, 1, 2]),  # three gids for two positions
                np.array([0.5, 1.5]),
                np.array([0.5, 0.5]),
                np.array([0.5, 0.5]),
                np.array([1.0, 2.0]),
            )
        with pytest.raises(ValueError, match="misaligned"):
            events.append(
                np.array([0, 1]),
                np.array([0.5, 1.5]),
                np.array([0.5, 0.5]),
                np.array([0.5, 0.5]),
                np.array([1.0]),  # one weight for two positions
            )
        assert not events.gids  # nothing was buffered by the failed appends

    def test_non_contiguous_grid_rejected_not_silently_dropped(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0]), np.array([0.5]), np.array([0.5]), np.array([0.5]),
            np.array([1.0]),
        )
        base = np.zeros((4, 4, 8))
        view = base[:, :, ::2]  # non-contiguous: reshape(-1) would copy
        with pytest.raises(ValueError, match="contiguous"):
            events.compact(np.zeros(1, bool), np.ones(1, bool), view)


class TestState:
    def make_state(self, n=5):
        pos = np.zeros((n, 3))
        dirs = np.zeros((n, 3))
        dirs[:, 2] = 1.0
        return _State(pos, dirs, np.zeros(n, dtype=np.int64), np.ones(n))

    def test_squeeze_drops_dead(self):
        st = self.make_state(5)
        st.alive[:] = [True, False, True, False, True]
        st.w[:] = [1.0, 0.0, 2.0, 0.0, 3.0]
        st.squeeze()
        assert st.size == 3
        np.testing.assert_array_equal(st.w, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(st.gid, [0, 2, 4])
        assert st.alive.all()

    def test_gid_survives_multiple_squeezes(self):
        st = self.make_state(6)
        st.alive[:] = [True, True, False, True, True, True]
        st.squeeze()
        st.alive[:] = [False, True, True, False, True]
        st.squeeze()
        np.testing.assert_array_equal(st.gid, [1, 3, 5])


class TestSubBatching:
    def test_results_independent_of_sub_batch(self):
        """Sub-batch size changes scheduling, not statistics."""
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS), source=PencilBeam()
        )
        small = run_batch_vectorized(config, 3_000, task_rng(0, 0), sub_batch=500)
        large = run_batch_vectorized(config, 3_000, task_rng(0, 0), sub_batch=10_000)
        assert small.n_launched == large.n_launched == 3_000
        assert small.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert large.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert small.diffuse_reflectance == pytest.approx(
            large.diffuse_reflectance, rel=0.15
        )

    def test_invalid_sub_batch(self):
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS), source=PencilBeam()
        )
        with pytest.raises(ValueError, match="sub_batch"):
            run_batch_vectorized(config, 10, task_rng(0, 0), sub_batch=0)
