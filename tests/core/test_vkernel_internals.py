"""White-box tests of the vectorised kernel's internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimulationConfig, run_batch_vectorized, task_rng
from repro.core.vkernel import _PathEvents, _State
from repro.detect import GridSpec
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)


class TestPathEvents:
    @pytest.fixture
    def spec(self):
        return GridSpec(shape=(4, 4, 4), lo=(0, 0, 0), hi=(4, 4, 4))

    def test_outside_events_dropped_at_append(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([1.0, 99.0]),  # second point far outside the grid
            np.array([1.0, 1.0]),
            np.array([1.0, 1.0]),
            np.array([0.5, 0.5]),
        )
        assert len(events.gids) == 1
        assert events.gids[0].tolist() == [0]

    def test_compact_deposits_detected_only(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([0.5, 1.5]),
            np.array([0.5, 0.5]),
            np.array([0.5, 0.5]),
            np.array([1.0, 2.0]),
        )
        grid = spec.zeros()
        detected = np.array([True, False])
        alive = np.array([False, False])
        events.compact(alive, detected, grid)
        assert grid.sum() == pytest.approx(1.0)  # only photon 0's weight
        assert not events.gids  # nothing retained (both dead)

    def test_compact_retains_live_photons(self, spec):
        events = _PathEvents(spec)
        events.append(
            np.array([0, 1]),
            np.array([0.5, 1.5]),
            np.array([0.5, 0.5]),
            np.array([0.5, 0.5]),
            np.array([1.0, 2.0]),
        )
        grid = spec.zeros()
        events.compact(np.array([False, True]), np.array([False, False]), grid)
        assert grid.sum() == 0.0
        # Photon 1's event survives for a later compaction.
        assert events.gids[0].tolist() == [1]
        events.compact(np.array([False, False]), np.array([False, True]), grid)
        assert grid.sum() == pytest.approx(2.0)

    def test_empty_compact_noop(self, spec):
        events = _PathEvents(spec)
        grid = spec.zeros()
        events.compact(np.zeros(2, bool), np.zeros(2, bool), grid)
        assert grid.sum() == 0.0


class TestState:
    def make_state(self, n=5):
        pos = np.zeros((n, 3))
        dirs = np.zeros((n, 3))
        dirs[:, 2] = 1.0
        return _State(pos, dirs, np.zeros(n, dtype=np.int64), np.ones(n))

    def test_squeeze_drops_dead(self):
        st = self.make_state(5)
        st.alive[:] = [True, False, True, False, True]
        st.w[:] = [1.0, 0.0, 2.0, 0.0, 3.0]
        st.squeeze()
        assert st.size == 3
        np.testing.assert_array_equal(st.w, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(st.gid, [0, 2, 4])
        assert st.alive.all()

    def test_gid_survives_multiple_squeezes(self):
        st = self.make_state(6)
        st.alive[:] = [True, True, False, True, True, True]
        st.squeeze()
        st.alive[:] = [False, True, True, False, True]
        st.squeeze()
        np.testing.assert_array_equal(st.gid, [1, 3, 5])


class TestSubBatching:
    def test_results_independent_of_sub_batch(self):
        """Sub-batch size changes scheduling, not statistics."""
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS), source=PencilBeam()
        )
        small = run_batch_vectorized(config, 3_000, task_rng(0, 0), sub_batch=500)
        large = run_batch_vectorized(config, 3_000, task_rng(0, 0), sub_batch=10_000)
        assert small.n_launched == large.n_launched == 3_000
        assert small.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert large.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert small.diffuse_reflectance == pytest.approx(
            large.diffuse_reflectance, rel=0.15
        )

    def test_invalid_sub_batch(self):
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS), source=PencilBeam()
        )
        with pytest.raises(ValueError, match="sub_batch"):
            run_batch_vectorized(config, 10, task_rng(0, 0), sub_batch=0)
