"""Tests for Fresnel boundary optics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fresnel import (
    cos_transmitted,
    critical_cosine,
    fresnel_reflectance,
    specular_reflectance,
)


class TestSpecular:
    def test_air_tissue(self):
        # n=1 -> n=1.4: ((0.4)/(2.4))^2 = 1/36.
        assert specular_reflectance(1.0, 1.4) == pytest.approx((0.4 / 2.4) ** 2)

    def test_symmetric(self):
        assert specular_reflectance(1.0, 1.4) == pytest.approx(specular_reflectance(1.4, 1.0))

    def test_matched(self):
        assert specular_reflectance(1.4, 1.4) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            specular_reflectance(0.0, 1.4)


class TestCriticalCosine:
    def test_no_tir_into_denser(self):
        assert critical_cosine(1.0, 1.4) == 0.0

    def test_tissue_to_air(self):
        # sin(theta_c) = 1/1.4 -> cos(theta_c) = sqrt(1 - 1/1.96).
        expected = np.sqrt(1.0 - (1.0 / 1.4) ** 2)
        assert critical_cosine(1.4, 1.0) == pytest.approx(expected)

    def test_matched(self):
        assert critical_cosine(1.4, 1.4) == 0.0


class TestCosTransmitted:
    def test_normal_incidence(self):
        assert cos_transmitted(1.0, 1.0, 1.4) == pytest.approx(1.0)

    def test_snell_law(self):
        n1, n2 = 1.0, 1.5
        theta_i = np.deg2rad(30.0)
        ct = cos_transmitted(np.cos(theta_i), n1, n2)
        sin_t = n1 / n2 * np.sin(theta_i)
        assert ct == pytest.approx(np.sqrt(1 - sin_t**2))

    def test_total_internal_reflection_is_nan(self):
        # From dense to rare beyond the critical angle.
        ct = cos_transmitted(0.1, 1.4, 1.0)
        assert np.isnan(ct)


class TestFresnelReflectance:
    def test_normal_incidence_matches_specular(self):
        r = fresnel_reflectance(1.0, 1.0, 1.4)
        assert float(r) == pytest.approx(specular_reflectance(1.0, 1.4), abs=1e-12)

    def test_grazing_incidence_total(self):
        assert float(fresnel_reflectance(1e-9, 1.0, 1.4)) == pytest.approx(1.0, abs=1e-4)

    def test_total_internal_reflection(self):
        cos_c = critical_cosine(1.4, 1.0)
        r = fresnel_reflectance(cos_c * 0.5, 1.4, 1.0)
        assert float(r) == 1.0

    def test_matched_indices_zero(self):
        r = fresnel_reflectance(np.linspace(0.01, 1.0, 17), 1.4, 1.4)
        np.testing.assert_array_equal(r, 0.0)

    def test_range(self):
        cos_i = np.linspace(0.0, 1.0, 101)
        r = fresnel_reflectance(cos_i, 1.4, 1.0)
        assert (r >= 0.0).all() and (r <= 1.0).all()

    def test_brewster_angle_p_polarisation_minimum(self):
        # At Brewster's angle the unpolarised reflectance equals rs^2 / 2.
        n1, n2 = 1.0, 1.5
        theta_b = np.arctan(n2 / n1)
        r = float(fresnel_reflectance(np.cos(theta_b), n1, n2))
        # rs at Brewster for 1->1.5: compute directly.
        ci = np.cos(theta_b)
        ct = cos_transmitted(ci, n1, n2)
        rs = ((n1 * ci - n2 * ct) / (n1 * ci + n2 * ct)) ** 2
        assert r == pytest.approx(rs / 2, rel=1e-9)

    def test_reciprocity_at_normal(self):
        r12 = float(fresnel_reflectance(1.0, 1.0, 1.4))
        r21 = float(fresnel_reflectance(1.0, 1.4, 1.0))
        assert r12 == pytest.approx(r21)

    def test_monotone_beyond_brewster(self):
        # For n1 < n2, R increases monotonically from Brewster to grazing.
        n1, n2 = 1.0, 1.4
        theta = np.linspace(np.arctan(n2 / n1), np.pi / 2 - 1e-6, 200)
        r = fresnel_reflectance(np.cos(theta), n1, n2)
        assert (np.diff(r) >= -1e-12).all()

    def test_scalar_and_array_consistent(self):
        cos_i = 0.5
        scalar = float(fresnel_reflectance(cos_i, 1.4, 1.0))
        array = fresnel_reflectance(np.array([cos_i]), 1.4, 1.0)
        assert scalar == pytest.approx(float(array[0]))

    def test_energy_conservation_with_transmittance(self):
        # T = 1 - R, with T computed from the transmission coefficients.
        n1, n2 = 1.0, 1.5
        cos_i = np.cos(np.deg2rad(40.0))
        ct = cos_transmitted(cos_i, n1, n2)
        r = float(fresnel_reflectance(cos_i, n1, n2))
        ts = 2 * n1 * cos_i / (n1 * cos_i + n2 * ct)
        tp = 2 * n1 * cos_i / (n1 * ct + n2 * cos_i)
        t_power = (n2 * ct) / (n1 * cos_i) * 0.5 * (ts**2 + tp**2)
        assert r + t_power == pytest.approx(1.0, abs=1e-12)
