"""Property-based tests for the voxel subsystem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RouletteConfig, task_rng
from repro.sources import PencilBeam
from repro.tissue import OpticalProperties
from repro.voxel import VoxelConfig, VoxelMedium, run_voxel_batch


@st.composite
def random_media(draw):
    """Small random two-material media (always fast to simulate)."""
    shape = (
        draw(st.integers(2, 8)),
        draw(st.integers(2, 8)),
        draw(st.integers(2, 8)),
    )
    seed = draw(st.integers(0, 2**31))
    labels = np.random.default_rng(seed).integers(0, 2, size=shape).astype(np.uint8)
    mat_a = OpticalProperties(
        mu_a=draw(st.floats(0.2, 3.0)),
        mu_s=draw(st.floats(0.2, 8.0)),
        g=draw(st.floats(-0.5, 0.9)),
        n=1.4,
    )
    mat_b = OpticalProperties(
        mu_a=draw(st.floats(0.2, 3.0)),
        mu_s=draw(st.floats(0.2, 8.0)),
        g=draw(st.floats(-0.5, 0.9)),
        n=1.4,
    )
    return VoxelMedium(
        labels=labels,
        materials=(mat_a, mat_b),
        half_extent=draw(st.floats(1.0, 10.0)),
        depth=draw(st.floats(1.0, 6.0)),
    )


class TestVoxelInvariants:
    @given(medium=random_media(), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_energy_conserved_on_random_media(self, medium, seed):
        config = VoxelConfig(
            medium=medium,
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=1e-2, boost=10),
        )
        tally = run_voxel_batch(config, 150, task_rng(seed, 0))
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert 0.0 <= tally.diffuse_reflectance <= 1.0
        assert 0.0 <= tally.transmittance <= 1.0
        assert (tally.absorbed_fraction >= 0).all()

    @given(medium=random_media())
    @settings(max_examples=20, deadline=None)
    def test_volume_fractions_sum_to_one(self, medium):
        assert medium.material_volume_fractions().sum() == pytest.approx(1.0)

    @given(
        medium=random_media(),
        x=st.floats(-100.0, 100.0),
        y=st.floats(-100.0, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_label_lookup_never_fails_laterally(self, medium, x, y):
        z = medium.depth / 2.0
        label = medium.label_at(np.array([x]), np.array([y]), np.array([z]))
        assert 0 <= label[0] < medium.n_materials
