"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import threshold_top_weight
from repro.core import (
    SimulationConfig,
    Tally,
    fresnel_reflectance,
    rotate_direction,
    run_batch_vectorized,
    sample_hg_cosine,
    task_rng,
)
from repro.core.simulation import split_photons
from repro.detect import GridSpec, Histogram, RunningStat
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
weights = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


class TestSplitPhotons:
    @given(n=st.integers(0, 10**6), task_size=st.integers(1, 10**7))
    def test_partition_sums_and_bounds(self, n, task_size):
        counts = split_photons(n, task_size)
        assert sum(counts) == n
        assert all(0 < c <= task_size for c in counts)
        # Only the last chunk may be short.
        assert all(c == task_size for c in counts[:-1])


class TestFresnelProperties:
    @given(
        cos_i=st.floats(0.0, 1.0),
        n1=st.floats(0.5, 3.0),
        n2=st.floats(0.5, 3.0),
    )
    def test_reflectance_in_unit_interval(self, cos_i, n1, n2):
        r = float(fresnel_reflectance(cos_i, n1, n2))
        assert 0.0 <= r <= 1.0

    @given(n1=st.floats(0.5, 3.0), n2=st.floats(0.5, 3.0))
    def test_normal_incidence_symmetric(self, n1, n2):
        r12 = float(fresnel_reflectance(1.0, n1, n2))
        r21 = float(fresnel_reflectance(1.0, n2, n1))
        assert r12 == pytest.approx(r21, abs=1e-10)


class TestRotationProperties:
    @given(
        data=st.data(),
        cos_theta=st.floats(-1.0, 1.0),
        psi=st.floats(0.0, 2 * np.pi),
    )
    def test_unit_norm_preserved(self, data, cos_theta, psi):
        v = data.draw(
            hnp.arrays(
                np.float64,
                (3,),
                elements=st.floats(-1.0, 1.0).filter(lambda x: abs(x) > 1e-3),
            )
        )
        v = v / np.linalg.norm(v)
        nux, nuy, nuz = rotate_direction(
            np.array([v[0]]), np.array([v[1]]), np.array([v[2]]),
            np.array([cos_theta]), np.array([psi]),
        )
        norm = float(np.sqrt(nux**2 + nuy**2 + nuz**2)[0])
        assert norm == pytest.approx(1.0, abs=1e-9)
        dot = float((v[0] * nux + v[1] * nuy + v[2] * nuz)[0])
        assert dot == pytest.approx(cos_theta, abs=1e-6)


class TestHGSamplerProperties:
    @given(g=st.floats(-0.99, 0.99), seed=st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_samples_in_range(self, g, seed):
        rng = np.random.default_rng(seed)
        mu = sample_hg_cosine(g, rng, 1000)
        assert (mu >= -1.0).all() and (mu <= 1.0).all()


class TestRunningStatProperties:
    @given(
        xs=hnp.arrays(np.float64, st.integers(1, 50), elements=finite_floats),
        ys=hnp.arrays(np.float64, st.integers(1, 50), elements=finite_floats),
    )
    def test_merge_equals_bulk(self, xs, ys):
        a, b, bulk = RunningStat(), RunningStat(), RunningStat()
        a.add(xs)
        b.add(ys)
        bulk.add(np.concatenate([xs, ys]))
        merged = a.merge(b)
        assert merged.count == bulk.count
        assert merged.weighted_sum == pytest.approx(bulk.weighted_sum, rel=1e-9, abs=1e-9)
        assert merged.minimum == bulk.minimum
        assert merged.maximum == bulk.maximum

    @given(xs=hnp.arrays(np.float64, st.integers(1, 100), elements=finite_floats))
    def test_variance_non_negative(self, xs):
        s = RunningStat()
        s.add(xs)
        assert s.variance >= 0.0
        # Allow one ulp of summation round-off at the interval ends.
        span = max(abs(s.minimum), abs(s.maximum), 1.0)
        eps = 1e-12 * span
        assert s.minimum - eps <= s.mean <= s.maximum + eps


class TestHistogramProperties:
    @given(
        values=hnp.arrays(np.float64, st.integers(0, 100), elements=st.floats(0.0, 10.0)),
        split=st.integers(0, 100),
    )
    def test_merge_equals_bulk(self, values, split):
        split = min(split, len(values))
        a = Histogram.linear(0.0, 10.0, 7)
        b = Histogram.linear(0.0, 10.0, 7)
        bulk = Histogram.linear(0.0, 10.0, 7)
        a.add(values[:split])
        b.add(values[split:])
        bulk.add(values)
        np.testing.assert_allclose(a.merge(b).counts, bulk.counts)

    @given(values=hnp.arrays(np.float64, st.integers(0, 200), elements=st.floats(0.0, 9.999)))
    def test_total_preserved_for_in_range(self, values):
        h = Histogram.linear(0.0, 10.0, 13)
        h.add(values)
        assert h.total == pytest.approx(float(len(values)))


class TestGridSpecProperties:
    @given(
        x=st.floats(-50.0, 50.0),
        y=st.floats(-50.0, 50.0),
        z=st.floats(-50.0, 50.0),
    )
    def test_world_to_index_round_trip(self, x, y, z):
        spec = GridSpec(shape=(10, 8, 6), lo=(-20.0, -20.0, 0.0), hi=(20.0, 20.0, 30.0))
        flat, inside = spec.world_to_index(
            np.array([x]), np.array([y]), np.array([z])
        )
        in_box = (-20 <= x < 20) and (-20 <= y < 20) and (0 <= z < 30)
        assert bool(inside[0]) == in_box
        if in_box:
            assert 0 <= flat[0] < spec.n_voxels

    @given(
        weights_arr=hnp.arrays(np.float64, st.integers(1, 50), elements=weights),
        seed=st.integers(0, 1000),
    )
    def test_deposit_conserves_inside_weight(self, weights_arr, seed):
        spec = GridSpec(shape=(5, 5, 5), lo=(0, 0, 0), hi=(5, 5, 5))
        rng = np.random.default_rng(seed)
        n = len(weights_arr)
        x = rng.uniform(-2, 7, n)
        y = rng.uniform(-2, 7, n)
        z = rng.uniform(-2, 7, n)
        grid = spec.zeros()
        spec.deposit(grid, x, y, z, weights_arr)
        _, inside = spec.world_to_index(x, y, z)
        assert grid.sum() == pytest.approx(weights_arr[inside].sum(), rel=1e-9, abs=1e-12)


class TestThresholdProperties:
    @given(
        grid=hnp.arrays(np.float64, (6, 6), elements=st.floats(0.0, 100.0)),
        fraction=st.floats(0.01, 1.0),
    )
    def test_kept_weight_at_least_fraction(self, grid, fraction):
        mask = threshold_top_weight(grid, fraction)
        total = grid.sum()
        if total > 0:
            assert grid[mask].sum() >= fraction * total - 1e-9
        else:
            assert not mask.any()


class TestTallyMonoid:
    @st.composite
    def tallies(draw):
        t = Tally(n_layers=2)
        t.n_launched = draw(st.integers(0, 1000))
        t.specular_weight = draw(weights)
        t.diffuse_reflectance_weight = draw(weights)
        t.transmittance_weight = draw(weights)
        t.detected_count = draw(st.integers(0, 100))
        t.detected_weight = draw(weights)
        t.absorbed_by_layer[:] = [draw(weights), draw(weights)]
        return t

    @given(a=tallies(), b=tallies(), c=tallies())
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        for key, value in left.summary().items():
            other = right.summary()[key]
            if np.isnan(value):
                assert np.isnan(other)
            else:
                assert value == pytest.approx(other, rel=1e-12, abs=1e-12)

    @given(a=tallies(), b=tallies())
    def test_merge_commutative(self, a, b):
        ab, ba = a.merge(b), b.merge(a)
        for key, value in ab.summary().items():
            other = ba.summary()[key]
            if np.isnan(value):
                assert np.isnan(other)
            else:
                assert value == pytest.approx(other, rel=1e-12, abs=1e-12)


class TestTransportInvariants:
    """End-to-end invariants under random (fast) media."""

    @given(
        mu_a=st.floats(0.2, 3.0),
        mu_s=st.floats(0.2, 10.0),
        g=st.floats(-0.5, 0.95),
        n=st.floats(1.0, 1.6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_energy_balance_universal(self, mu_a, mu_s, g, n, seed):
        props = OpticalProperties(mu_a=mu_a, mu_s=mu_s, g=g, n=n)
        stack = LayerStack.homogeneous(props, 3.0)
        config = SimulationConfig(stack=stack, source=PencilBeam())
        tally = run_batch_vectorized(config, 200, task_rng(seed, 0))
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert 0.0 <= tally.diffuse_reflectance <= 1.0
        assert 0.0 <= tally.transmittance <= 1.0

    @given(
        t1=st.floats(0.5, 3.0),
        t2=st.floats(0.5, 3.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_two_layers_conserve_energy(self, t1, t2, seed):
        stack = LayerStack(
            [
                Layer("a", OpticalProperties(mu_a=1.0, mu_s=3.0, g=0.5, n=1.4), t1),
                Layer("b", OpticalProperties(mu_a=0.5, mu_s=6.0, g=0.8, n=1.4), t2),
            ]
        )
        config = SimulationConfig(stack=stack, source=PencilBeam())
        tally = run_batch_vectorized(config, 200, task_rng(seed, 1))
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
