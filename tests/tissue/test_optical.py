"""Tests for optical properties."""

from __future__ import annotations

import math

import pytest

from repro.tissue import OpticalProperties
from repro.tissue.optical import SPEED_OF_LIGHT_MM_PER_NS


class TestConstruction:
    def test_basic(self):
        p = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.9, n=1.4)
        assert p.mu_t == pytest.approx(10.1)
        assert p.albedo == pytest.approx(10.0 / 10.1)

    @pytest.mark.parametrize("bad", [{"mu_a": -1.0, "mu_s": 1.0},
                                     {"mu_a": 1.0, "mu_s": -1.0},
                                     {"mu_a": 1.0, "mu_s": 1.0, "g": 1.5},
                                     {"mu_a": 1.0, "mu_s": 1.0, "n": 0.0}])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            OpticalProperties(**bad)

    def test_extreme_g_allowed(self):
        OpticalProperties(mu_a=0.0, mu_s=1.0, g=-1.0)
        OpticalProperties(mu_a=0.0, mu_s=1.0, g=1.0)


class TestDerived:
    def test_reduced_scattering(self):
        p = OpticalProperties(mu_a=0.0, mu_s=10.0, g=0.9)
        assert p.mu_s_reduced == pytest.approx(1.0)

    def test_mean_free_path(self):
        p = OpticalProperties(mu_a=0.5, mu_s=1.5)
        assert p.mean_free_path == pytest.approx(0.5)

    def test_transparent_medium_infinite_mfp(self):
        p = OpticalProperties(mu_a=0.0, mu_s=0.0)
        assert math.isinf(p.mean_free_path)
        assert p.albedo == 0.0

    def test_diffusion_coefficient(self):
        p = OpticalProperties(mu_a=0.01, mu_s=10.0, g=0.9)
        assert p.diffusion_coefficient == pytest.approx(1.0 / (3.0 * (0.01 + 1.0)))

    def test_effective_attenuation(self):
        p = OpticalProperties(mu_a=0.01, mu_s=10.0, g=0.9)
        assert p.effective_attenuation == pytest.approx(
            math.sqrt(3 * 0.01 * 1.01), rel=1e-12
        )

    def test_phase_velocity(self):
        p = OpticalProperties(mu_a=0.0, mu_s=1.0, n=1.5)
        assert p.phase_velocity == pytest.approx(SPEED_OF_LIGHT_MM_PER_NS / 1.5)


class TestFromReduced:
    def test_round_trip(self):
        p = OpticalProperties.from_reduced(mu_a=0.018, mu_s_reduced=1.9, g=0.9)
        assert p.mu_s_reduced == pytest.approx(1.9)
        assert p.mu_s == pytest.approx(19.0)

    def test_forward_scattering_rejected(self):
        with pytest.raises(ValueError, match="g must lie"):
            OpticalProperties.from_reduced(mu_a=0.0, mu_s_reduced=1.0, g=1.0)

    def test_negative_reduced_rejected(self):
        with pytest.raises(ValueError, match="mu_s_reduced"):
            OpticalProperties.from_reduced(mu_a=0.0, mu_s_reduced=-1.0)


class TestWithAnisotropy:
    def test_preserves_reduced_scattering(self):
        p = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.9)
        q = p.with_anisotropy(0.0)
        assert q.mu_s_reduced == pytest.approx(p.mu_s_reduced)
        assert q.g == 0.0
        assert q.mu_s == pytest.approx(1.0)

    def test_invalid_target(self):
        p = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.9)
        with pytest.raises(ValueError):
            p.with_anisotropy(1.0)
