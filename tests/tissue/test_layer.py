"""Tests for the layered slab geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.tissue import Layer, LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=0.1, mu_s=1.0, g=0.5, n=1.4)


class TestLayer:
    def test_semi_infinite(self):
        layer = Layer("wm", PROPS, None)
        assert layer.is_semi_infinite

    def test_invalid_thickness(self):
        with pytest.raises(ValueError, match="thickness"):
            Layer("bad", PROPS, 0.0)


class TestLayerStack:
    def test_boundaries(self, three_layer_stack):
        np.testing.assert_allclose(three_layer_stack.boundaries[:3], [0.0, 2.0, 5.0])
        assert math.isinf(three_layer_stack.boundaries[3])

    def test_len_iter_getitem(self, three_layer_stack):
        assert len(three_layer_stack) == 3
        assert [l.name for l in three_layer_stack] == ["a", "b", "c"]
        assert three_layer_stack[1].name == "b"

    def test_coefficient_vectors(self, three_layer_stack):
        np.testing.assert_allclose(three_layer_stack.mu_a, [0.5, 0.2, 1.0])
        np.testing.assert_allclose(
            three_layer_stack.mu_t, three_layer_stack.mu_a + three_layer_stack.mu_s
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            LayerStack([])

    def test_interior_semi_infinite_rejected(self):
        with pytest.raises(ValueError, match="semi-infinite"):
            LayerStack([Layer("a", PROPS, None), Layer("b", PROPS, 1.0)])

    def test_invalid_ambient_index(self):
        with pytest.raises(ValueError, match="ambient"):
            LayerStack([Layer("a", PROPS, 1.0)], n_above=0.0)

    def test_layer_index_at(self, three_layer_stack):
        assert three_layer_stack.layer_index_at(0.0) == 0
        assert three_layer_stack.layer_index_at(1.99) == 0
        assert three_layer_stack.layer_index_at(2.0) == 1  # boundary -> below
        assert three_layer_stack.layer_index_at(4.999) == 1
        assert three_layer_stack.layer_index_at(5.0) == 2
        assert three_layer_stack.layer_index_at(1e9) == 2

    def test_layer_index_outside(self, three_layer_stack):
        with pytest.raises(ValueError, match="outside"):
            three_layer_stack.layer_index_at(-0.1)

    def test_finite_stack_bounds(self):
        stack = LayerStack([Layer("a", PROPS, 1.0), Layer("b", PROPS, 2.0)])
        assert stack.total_thickness == pytest.approx(3.0)
        assert not stack.is_semi_infinite
        with pytest.raises(ValueError, match="outside"):
            stack.layer_index_at(3.0)

    def test_layer_top_bottom(self, three_layer_stack):
        assert three_layer_stack.layer_top(1) == pytest.approx(2.0)
        assert three_layer_stack.layer_bottom(1) == pytest.approx(5.0)
        assert math.isinf(three_layer_stack.layer_bottom(2))

    def test_refractive_index_outside(self):
        stack = LayerStack([Layer("a", PROPS, 1.0)], n_above=1.0, n_below=1.33)
        assert stack.refractive_index_outside(going_up=True) == 1.0
        assert stack.refractive_index_outside(going_up=False) == 1.33

    def test_layer_name_at(self, three_layer_stack):
        assert three_layer_stack.layer_name_at(3.0) == "b"

    def test_homogeneous_constructor(self):
        stack = LayerStack.homogeneous(PROPS, name="medium")
        assert len(stack) == 1
        assert stack.is_semi_infinite
        assert stack[0].name == "medium"
