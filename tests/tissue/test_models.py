"""Tests for the Table 1 tissue models."""

from __future__ import annotations

import math

import pytest

from repro.tissue import (
    TABLE1_PROPERTIES,
    adult_head,
    neonatal_head,
    two_layer_phantom,
    white_matter,
    white_matter_slab,
    OpticalProperties,
)


class TestTable1Values:
    """The model must encode Table 1 of the paper exactly."""

    @pytest.mark.parametrize(
        "name,mu_s_red,mu_a",
        [
            ("scalp", 1.9, 0.018),
            ("skull", 1.6, 0.016),
            ("csf", 0.25, 0.004),
            ("grey_matter", 2.2, 0.036),
            ("white_matter", 9.1, 0.014),
        ],
    )
    def test_coefficients(self, name, mu_s_red, mu_a):
        table_red, table_mu_a, _ = TABLE1_PROPERTIES[name]
        assert table_red == mu_s_red
        assert table_mu_a == mu_a

    def test_adult_head_layer_order(self):
        stack = adult_head()
        assert [l.name for l in stack] == [
            "scalp", "skull", "csf", "grey_matter", "white_matter",
        ]

    def test_adult_head_reduced_scattering_matches_table(self):
        stack = adult_head()
        for layer in stack:
            expected_red, expected_mu_a, _ = TABLE1_PROPERTIES[layer.name]
            assert layer.properties.mu_s_reduced == pytest.approx(expected_red)
            assert layer.properties.mu_a == pytest.approx(expected_mu_a)

    def test_white_matter_semi_infinite(self):
        stack = adult_head()
        assert stack[-1].is_semi_infinite
        assert stack.is_semi_infinite

    def test_scalp_thickness_within_table_range(self):
        # Table 1: scalp 0.3-1 cm, skull 0.5-1 cm.
        stack = adult_head()
        assert 3.0 <= stack[0].thickness <= 10.0
        assert 5.0 <= stack[1].thickness <= 10.0

    def test_csf_low_scattering(self):
        stack = adult_head()
        csf = stack[2].properties
        others = [stack[i].properties for i in (0, 1, 3, 4)]
        assert all(csf.mu_s_reduced < o.mu_s_reduced / 5 for o in others)


class TestAdultHeadOptions:
    def test_custom_thickness(self):
        stack = adult_head(scalp_thickness=4.0, csf_thickness=3.0)
        assert stack[0].thickness == pytest.approx(4.0)
        assert stack[2].thickness == pytest.approx(3.0)

    def test_literal_units(self):
        stack = adult_head(literal_units=True)
        assert stack[2].thickness == pytest.approx(20.0)  # CSF "2 cm" literal
        assert stack[3].thickness == pytest.approx(40.0)

    def test_custom_g_propagates(self):
        stack = adult_head(g=0.8)
        for layer in stack:
            assert layer.properties.g == pytest.approx(0.8)
            # mu_s' must still match the table.
            expected_red, _, _ = TABLE1_PROPERTIES[layer.name]
            assert layer.properties.mu_s_reduced == pytest.approx(expected_red)


class TestOtherModels:
    def test_white_matter(self):
        stack = white_matter()
        assert len(stack) == 1
        assert stack.is_semi_infinite
        assert stack[0].properties.mu_s_reduced == pytest.approx(9.1)

    def test_white_matter_slab(self):
        stack = white_matter_slab(3.0)
        assert stack.total_thickness == pytest.approx(3.0)

    def test_neonatal_thinner_than_adult(self):
        adult = adult_head()
        neo = neonatal_head()
        # Superficial (scalp+skull+CSF) thickness is smaller for the neonate.
        adult_superficial = sum(adult[i].thickness for i in range(3))
        neo_superficial = sum(neo[i].thickness for i in range(3))
        assert neo_superficial < adult_superficial
        # Same optical coefficients.
        for a, n in zip(adult, neo):
            assert a.properties.mu_a == pytest.approx(n.properties.mu_a)

    def test_two_layer_phantom(self):
        top = OpticalProperties(mu_a=1.0, mu_s=1.0)
        bottom = OpticalProperties(mu_a=2.0, mu_s=2.0)
        stack = two_layer_phantom(top, bottom, 1.0)
        assert len(stack) == 2
        assert math.isinf(stack.total_thickness)
        finite = two_layer_phantom(top, bottom, 1.0, bottom_thickness=2.0)
        assert finite.total_thickness == pytest.approx(3.0)
