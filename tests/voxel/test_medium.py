"""Tests for VoxelMedium and the builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tissue import Layer, LayerStack, OpticalProperties
from repro.voxel import (
    VoxelMedium,
    from_layers,
    homogeneous_block,
    tilted_layers,
    with_cylinder,
    with_sphere,
)

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
OTHER = OpticalProperties(mu_a=5.0, mu_s=2.0, g=0.5, n=1.4)


class TestVoxelMedium:
    def test_basic_properties(self):
        m = homogeneous_block(PROPS, (10, 8, 4), half_extent=5.0, depth=2.0)
        assert m.shape == (10, 8, 4)
        assert m.n_materials == 1
        assert m.voxel_size == (1.0, 1.25, 0.5)
        assert m.n_medium == pytest.approx(1.4)

    def test_validation(self):
        with pytest.raises(ValueError, match="3-D"):
            VoxelMedium(np.zeros((2, 2), dtype=np.uint8), (PROPS,), 1.0, 1.0)
        with pytest.raises(ValueError, match="integers"):
            VoxelMedium(np.zeros((2, 2, 2)), (PROPS,), 1.0, 1.0)
        with pytest.raises(ValueError, match="index materials"):
            VoxelMedium(np.ones((2, 2, 2), dtype=np.uint8), (PROPS,), 1.0, 1.0)
        with pytest.raises(ValueError, match="at least one"):
            VoxelMedium(np.zeros((2, 2, 2), dtype=np.uint8), (), 1.0, 1.0)

    def test_mixed_refractive_indices_rejected(self):
        weird = OpticalProperties(mu_a=1.0, mu_s=1.0, n=1.6)
        labels = np.zeros((2, 2, 2), dtype=np.uint8)
        with pytest.raises(ValueError, match="refractive index"):
            VoxelMedium(labels, (PROPS, weird), 1.0, 1.0)

    def test_label_lookup_with_lateral_clamping(self):
        m = homogeneous_block(PROPS, (4, 4, 4), half_extent=2.0, depth=2.0)
        labels = m.labels.copy()
        labels[0, :, :] = 0  # already 0; make the far x edge distinct
        # Build two-material medium: left half 0, right half 1.
        labels[2:, :, :] = 1
        m2 = VoxelMedium(labels, (PROPS, OTHER), 2.0, 2.0)
        # Far outside the +x face: clamps to the edge voxel's material (1).
        lab = m2.label_at(np.array([100.0]), np.array([0.0]), np.array([1.0]))
        assert lab[0] == 1
        lab = m2.label_at(np.array([-100.0]), np.array([0.0]), np.array([1.0]))
        assert lab[0] == 0

    def test_volume_fractions(self):
        labels = np.zeros((4, 4, 4), dtype=np.uint8)
        labels[:, :, 2:] = 1
        m = VoxelMedium(labels, (PROPS, OTHER), 1.0, 1.0)
        np.testing.assert_allclose(m.material_volume_fractions(), [0.5, 0.5])


class TestFromLayers:
    def test_layer_structure_preserved(self, three_layer_stack):
        m = from_layers(three_layer_stack, (8, 8, 40), half_extent=10.0, depth=10.0)
        assert m.n_materials == 3
        # Layer a occupies z in [0, 2): voxels 0..7 of 40 (dz = 0.25).
        assert (m.labels[:, :, :7] == 0).all()
        # Layer b occupies z in [2, 5).
        assert (m.labels[:, :, 9:19] == 1).all()
        # Layer c below.
        assert (m.labels[:, :, 21:] == 2).all()

    def test_semi_infinite_needs_depth(self, three_layer_stack):
        with pytest.raises(ValueError, match="depth"):
            from_layers(three_layer_stack, (4, 4, 4), half_extent=5.0)

    def test_finite_stack_default_depth(self):
        stack = LayerStack([Layer("a", PROPS, 1.0), Layer("b", OTHER, 2.0)])
        m = from_layers(stack, (4, 4, 12), half_extent=5.0)
        assert m.depth == pytest.approx(3.0)
        fractions = m.material_volume_fractions()
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3], atol=0.05)


class TestInclusions:
    def test_sphere_volume(self):
        block = homogeneous_block(PROPS, (40, 40, 40), half_extent=10.0, depth=20.0)
        m = with_sphere(block, (0.0, 0.0, 10.0), 4.0, OTHER)
        assert m.n_materials == 2
        sphere_fraction = m.material_volume_fractions()[1]
        expected = (4 / 3 * np.pi * 4.0**3) / (20.0 * 20.0 * 20.0)
        assert sphere_fraction == pytest.approx(expected, rel=0.1)

    def test_sphere_must_overlap(self):
        block = homogeneous_block(PROPS, (4, 4, 4), half_extent=1.0, depth=1.0)
        with pytest.raises(ValueError, match="overlap"):
            with_sphere(block, (100.0, 0.0, 0.0), 0.5, OTHER)

    def test_cylinder_runs_full_x(self):
        block = homogeneous_block(PROPS, (8, 40, 40), half_extent=10.0, depth=20.0)
        m = with_cylinder(block, y0=0.0, z0=10.0, radius=3.0, props=OTHER)
        inc = m.labels == 1
        # Every x slice contains the same inclusion cross-section.
        assert (inc[0] == inc[-1]).all()
        assert inc.any()

    def test_original_medium_unchanged(self):
        block = homogeneous_block(PROPS, (8, 8, 8), half_extent=4.0, depth=4.0)
        with_sphere(block, (0.0, 0.0, 2.0), 1.0, OTHER)
        assert (block.labels == 0).all()


class TestTiltedLayers:
    def test_zero_slope_matches_flat(self, three_layer_stack):
        flat = from_layers(three_layer_stack, (8, 8, 20), half_extent=5.0, depth=10.0)
        tilted = tilted_layers(three_layer_stack, (8, 8, 20), half_extent=5.0,
                               depth=10.0, slope=0.0)
        np.testing.assert_array_equal(flat.labels, tilted.labels)

    def test_slope_shifts_interfaces(self, three_layer_stack):
        m = tilted_layers(three_layer_stack, (20, 4, 40), half_extent=10.0,
                          depth=10.0, slope=0.3)
        # The first interface is deeper at +x than at -x: column at the
        # high-x edge has more layer-0 voxels.
        left_layer0 = (m.labels[0, 0, :] == 0).sum()
        right_layer0 = (m.labels[-1, 0, :] == 0).sum()
        assert right_layer0 > left_layer0
