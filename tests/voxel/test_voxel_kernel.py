"""Tests for the voxel transport kernel.

The key validation is cross-kernel: a voxelised layer stack must reproduce
the analytic layered kernel's physics within Monte Carlo statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecordConfig,
    RouletteConfig,
    SimulationConfig,
    run_batch_vectorized,
    task_rng,
)
from repro.detect import DiscDetector, GridSpec, PathlengthGate
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties
from repro.voxel import (
    VoxelConfig,
    from_layers,
    homogeneous_block,
    run_voxel,
    run_voxel_batch,
    with_sphere,
)

FAST = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
ROULETTE = RouletteConfig(threshold=1e-3, boost=10)


def voxel_config(medium, **kw) -> VoxelConfig:
    defaults = dict(source=PencilBeam(), roulette=ROULETTE)
    defaults.update(kw)
    return VoxelConfig(medium=medium, **defaults)


class TestEnergyConservation:
    def test_homogeneous_block(self):
        block = homogeneous_block(FAST, (20, 20, 20), half_extent=10.0, depth=5.0)
        tally = run_voxel(voxel_config(block), 2_000, seed=1)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert tally.transmittance >= 0.0

    def test_with_inclusion(self):
        block = homogeneous_block(FAST, (16, 16, 16), half_extent=8.0, depth=4.0)
        medium = with_sphere(
            block, (0.0, 0.0, 1.0), 1.0,
            OpticalProperties(mu_a=5.0, mu_s=2.0, g=0.5, n=1.4),
        )
        tally = run_voxel(voxel_config(medium), 2_000, seed=2)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        # Both materials absorb.
        assert (tally.absorbed_fraction > 0).all()


class TestAgainstLayeredKernel:
    """A voxelised slab reproduces the analytic slab."""

    N = 20_000

    @pytest.fixture(scope="class")
    def pair(self):
        stack = LayerStack.homogeneous(FAST, 5.0)
        layered_config = SimulationConfig(
            stack=stack, source=PencilBeam(), roulette=ROULETTE
        )
        layered = run_batch_vectorized(layered_config, self.N, task_rng(10, 0))

        medium = from_layers(stack, (30, 30, 25), half_extent=15.0)
        voxel = run_voxel(voxel_config(medium), self.N, seed=11)
        return layered, voxel

    def test_reflectance(self, pair):
        layered, voxel = pair
        assert voxel.diffuse_reflectance == pytest.approx(
            layered.diffuse_reflectance, rel=0.08
        )

    def test_absorption(self, pair):
        layered, voxel = pair
        assert voxel.total_absorbed_fraction == pytest.approx(
            layered.total_absorbed_fraction, rel=0.02
        )

    def test_specular(self, pair):
        layered, voxel = pair
        assert voxel.specular_reflectance == pytest.approx(
            layered.specular_reflectance, rel=1e-9
        )

    def test_multilayer_absorption_split(self, three_layer_stack):
        """Per-layer absorption matches between representations."""
        layered_config = SimulationConfig(
            stack=three_layer_stack, source=PencilBeam(), roulette=ROULETTE
        )
        layered = run_batch_vectorized(layered_config, 20_000, task_rng(12, 0))

        medium = from_layers(three_layer_stack, (24, 24, 48),
                             half_extent=12.0, depth=12.0)
        voxel = run_voxel(voxel_config(medium), 20_000, seed=13)
        # Compare the dominant layers' absorbed fractions.
        for i in range(3):
            if layered.absorbed_fraction[i] > 0.01:
                assert voxel.absorbed_fraction[i] == pytest.approx(
                    layered.absorbed_fraction[i], rel=0.15
                )


class TestInclusionPhysics:
    def test_absorbing_sphere_casts_shadow(self):
        """An absorbing inclusion under the beam eats transmission."""
        base = homogeneous_block(
            OpticalProperties(mu_a=0.1, mu_s=2.0, g=0.5, n=1.0),
            (20, 20, 20), half_extent=10.0, depth=4.0,
        )
        absorber = OpticalProperties(mu_a=20.0, mu_s=2.0, g=0.5, n=1.0)
        on_axis = with_sphere(base, (0.0, 0.0, 1.0), 1.0, absorber)
        off_axis = with_sphere(base, (7.0, 7.0, 1.0), 1.0, absorber)

        t_clear = run_voxel(voxel_config(base), 5_000, seed=4).transmittance
        t_on = run_voxel(voxel_config(on_axis), 5_000, seed=4).transmittance
        t_off = run_voxel(voxel_config(off_axis), 5_000, seed=4).transmittance

        assert t_on < 0.7 * t_clear  # the shadow
        assert abs(t_off - t_clear) < 0.15 * t_clear  # off-beam barely matters

    def test_inclusion_absorption_localised(self):
        base = homogeneous_block(FAST, (16, 16, 16), half_extent=8.0, depth=4.0)
        medium = with_sphere(
            base, (0.0, 0.0, 0.5), 0.8,
            OpticalProperties(mu_a=10.0, mu_s=10.0, g=0.8, n=1.4),
        )
        tally = run_voxel(voxel_config(medium), 4_000, seed=5)
        # The tiny sphere sits right under the beam: it captures a
        # disproportionate share of the absorbed energy.
        volume_share = medium.material_volume_fractions()[1]
        absorbed_share = tally.absorbed_fraction[1] / tally.total_absorbed_fraction
        assert absorbed_share > 5 * volume_share


class TestDetectionAndRecording:
    def test_detector_and_gate(self):
        block = homogeneous_block(FAST, (20, 20, 10), half_extent=10.0, depth=5.0)
        config = voxel_config(
            block,
            detector=DiscDetector(0.0, 0.0, radius=2.0),
            gate=PathlengthGate(0.0, 10.0),
        )
        tally = run_voxel(config, 3_000, seed=6)
        assert 0 < tally.detected_count < 3_000
        assert tally.pathlength.maximum < 10.0

    def test_absorption_grid(self):
        block = homogeneous_block(FAST, (16, 16, 8), half_extent=8.0, depth=4.0)
        spec = GridSpec.cube(8, 8.0, 4.0)
        config = voxel_config(block, records=RecordConfig(absorption_grid=spec))
        tally = run_voxel(config, 2_000, seed=7)
        assert tally.absorption_grid.sum() == pytest.approx(
            tally.absorbed_by_layer.sum(), rel=0.05
        )

    def test_path_grid_detected_only(self):
        block = homogeneous_block(FAST, (16, 16, 8), half_extent=8.0, depth=4.0)
        spec = GridSpec.cube(8, 8.0, 4.0)
        config = voxel_config(
            block,
            detector=DiscDetector(1e6, 0.0, radius=0.1),
            records=RecordConfig(path_grid=spec),
        )
        tally = run_voxel(config, 500, seed=8)
        assert tally.detected_count == 0
        assert tally.path_grid.sum() == 0.0

    def test_penetration_histogram(self):
        block = homogeneous_block(FAST, (8, 8, 8), half_extent=4.0, depth=4.0)
        config = voxel_config(block, records=RecordConfig(penetration_bins=(10.0, 20)))
        n = 400
        tally = run_voxel(config, n, seed=9)
        assert tally.penetration_hist.total == pytest.approx(float(n))


class TestDistributedIntegration:
    def test_voxel_kernel_through_datamanager(self):
        """VoxelConfig rides the standard distributed machinery."""
        from repro.distributed import DataManager, SerialBackend

        block = homogeneous_block(FAST, (12, 12, 8), half_extent=6.0, depth=4.0)
        config = voxel_config(block)
        manager = DataManager(config, n_photons=600, seed=3, task_size=200,
                              kernel="voxel")
        report = manager.run(SerialBackend())
        assert report.tally.n_launched == 600
        assert report.tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        # Identical to the facade decomposition.
        direct = run_voxel(config, 600, seed=3, task_size=200)
        assert report.tally.summary() == direct.summary()


class TestKernelEdgeCases:
    def test_zero_photons(self):
        block = homogeneous_block(FAST, (4, 4, 4), half_extent=2.0, depth=2.0)
        tally = run_voxel_batch(voxel_config(block), 0, task_rng(0, 0))
        assert tally.n_launched == 0

    def test_negative_rejected(self):
        block = homogeneous_block(FAST, (4, 4, 4), half_extent=2.0, depth=2.0)
        with pytest.raises(ValueError, match="n_photons"):
            run_voxel_batch(voxel_config(block), -1, task_rng(0, 0))

    def test_max_steps_books_lost(self):
        block = homogeneous_block(FAST, (8, 8, 8), half_extent=4.0, depth=4.0)
        config = voxel_config(block, max_steps=5)
        tally = run_voxel(config, 200, seed=1)
        assert tally.lost_weight > 0
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_transparent_voxels_traversed(self):
        """A transparent gap between two absorbing slabs is crossed cleanly."""
        clear = OpticalProperties(mu_a=0.0, mu_s=0.0, g=0.0, n=1.0)
        dense = OpticalProperties(mu_a=2.0, mu_s=5.0, g=0.5, n=1.0)
        stack = LayerStack(
            [Layer("top", dense, 1.0), Layer("gap", clear, 1.0),
             Layer("bottom", dense, 1.0)]
        )
        medium = from_layers(stack, (10, 10, 30), half_extent=5.0)
        tally = run_voxel(voxel_config(medium), 2_000, seed=2)
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        # The gap absorbs nothing; both dense slabs absorb.
        assert tally.absorbed_fraction[1] == 0.0
        assert tally.absorbed_fraction[0] > 0.0
        assert tally.absorbed_fraction[2] > 0.0
