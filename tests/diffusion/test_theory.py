"""Tests for the diffusion-approximation baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.diffusion import (
    dpf_theory,
    extrapolation_distance,
    fluence_infinite,
    internal_reflection_parameter,
    mean_time_of_flight_theory,
    reflectance_farrell,
    reflectance_time_resolved,
)
from repro.tissue import OpticalProperties

#: A typical NIRS-regime medium (mu_a << mu_s').
TISSUE = OpticalProperties(mu_a=0.01, mu_s=10.0, g=0.9, n=1.4)
MATCHED = OpticalProperties(mu_a=0.01, mu_s=10.0, g=0.9, n=1.0)


class TestInternalReflection:
    def test_matched_is_one(self):
        assert internal_reflection_parameter(1.0) == 1.0

    def test_tissue_air(self):
        # For n_rel = 1.4 the standard value is A ~ 2.9-3.2.
        a = internal_reflection_parameter(1.4)
        assert 2.5 < a < 3.5

    def test_monotone_in_mismatch(self):
        assert internal_reflection_parameter(1.4) > internal_reflection_parameter(1.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            internal_reflection_parameter(0.0)


class TestExtrapolationDistance:
    def test_matched(self):
        zb = extrapolation_distance(MATCHED)
        assert zb == pytest.approx(2.0 * MATCHED.diffusion_coefficient)

    def test_mismatch_increases(self):
        assert extrapolation_distance(TISSUE) > extrapolation_distance(MATCHED)


class TestFarrell:
    def test_positive_and_decreasing(self):
        rho = np.linspace(2.0, 30.0, 50)
        r = reflectance_farrell(rho, TISSUE)
        assert (r > 0).all()
        assert (np.diff(r) < 0).all()

    def test_asymptotic_slope_is_mu_eff(self):
        # At large rho, d ln(rho^2 R) / d rho -> -mu_eff.
        mu_eff = TISSUE.effective_attenuation
        rho = np.array([40.0, 45.0])
        r = reflectance_farrell(rho, TISSUE)
        slope = (np.log(rho[1] ** 2 * r[1]) - np.log(rho[0] ** 2 * r[0])) / 5.0
        assert slope == pytest.approx(-mu_eff, rel=0.05)

    def test_scalar_input(self):
        r = reflectance_farrell(10.0, TISSUE)
        assert np.ndim(r) == 0
        assert float(r) > 0


class TestTimeResolved:
    def test_zero_before_t0(self):
        r = reflectance_time_resolved(10.0, np.array([-1.0, 0.0]), TISSUE)
        np.testing.assert_array_equal(r, 0.0)

    def test_pulse_shape(self):
        t = np.linspace(1e-4, 5.0, 5000)
        r = reflectance_time_resolved(10.0, t, TISSUE)
        assert (r >= 0).all()
        peak = np.argmax(r)
        assert 0 < peak < len(t) - 1  # rises then falls

    def test_integral_matches_steady_state(self):
        # integral R(rho, t) dt = R(rho) (same dipole model).
        rho = 10.0
        t = np.linspace(1e-5, 60.0, 400_000)
        r_t = reflectance_time_resolved(rho, t, TISSUE)
        cw = float(np.trapezoid(r_t, t))
        assert cw == pytest.approx(float(reflectance_farrell(rho, TISSUE)), rel=0.02)

    def test_late_decay_rate_mu_a_c(self):
        # For t -> inf, ln R decays as -(mu_a c + rho-term/t...); dominant
        # exponential is exp(-mu_a c t).
        c = TISSUE.phase_velocity
        t = np.array([20.0, 25.0])
        r = reflectance_time_resolved(10.0, t, TISSUE)
        # Remove the power-law factor before extracting the rate.
        rate = -(math.log(r[1] * t[1] ** 2.5) - math.log(r[0] * t[0] ** 2.5)) / 5.0
        assert rate == pytest.approx(TISSUE.mu_a * c, rel=0.05)


class TestDPF:
    def test_matches_closed_form(self):
        # Closed-form approximation: (1/2) sqrt(3 mu_s'/mu_a) (1 - 1/(1 + rho mu_eff)).
        rho = 30.0
        approx = 0.5 * math.sqrt(3 * MATCHED.mu_s_reduced / MATCHED.mu_a) * (
            1 - 1 / (1 + rho * MATCHED.effective_attenuation)
        )
        assert dpf_theory(rho, MATCHED) == pytest.approx(approx, rel=0.1)

    def test_dpf_grows_with_scattering(self):
        more = OpticalProperties(mu_a=0.01, mu_s=20.0, g=0.9, n=1.0)
        assert dpf_theory(20.0, more) > dpf_theory(20.0, MATCHED)

    def test_invalid_rho(self):
        with pytest.raises(ValueError, match="rho"):
            mean_time_of_flight_theory(0.0, TISSUE)


class TestFluenceInfinite:
    def test_greens_function_decay(self):
        r = np.array([1.0, 2.0])
        phi = fluence_infinite(r, TISSUE)
        mu_eff = TISSUE.effective_attenuation
        # phi(2)/phi(1) = exp(-mu_eff)/2.
        assert phi[1] / phi[0] == pytest.approx(math.exp(-mu_eff) / 2.0, rel=1e-9)

    def test_satisfies_diffusion_equation(self):
        # Radial Laplacian check: D lap(phi) - mu_a phi = 0 away from source.
        d = TISSUE.diffusion_coefficient
        h = 1e-4
        r0 = 5.0
        phi = lambda r: fluence_infinite(r, TISSUE)
        lap = (r0 + h) * phi(r0 + h) - 2 * r0 * phi(r0) + (r0 - h) * phi(r0 - h)
        lap /= r0 * h * h
        residual = d * lap - TISSUE.mu_a * phi(r0)
        assert abs(residual) < 1e-6 * phi(r0)
