"""Tests for text-table formatting."""

from __future__ import annotations

import pytest

from repro.io import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1.0], ["long-name", 2.5]])
        lines = text.split("\n")
        assert len(lines) == 4  # header, separator, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in text

    def test_non_floats_stringified(self):
        text = format_table(["a", "b"], [[42, "hello"]])
        assert "42" in text and "hello" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="one cell per header"):
            format_table(["a", "b"], [["only-one"]])
