"""Tests for run-report persistence."""

from __future__ import annotations

import json

import pytest

from repro.analysis import reflectance_estimate
from repro.distributed import DataManager, SerialBackend
from repro.io import load_report, save_report


@pytest.fixture(scope="module")
def report():
    from repro.core import SimulationConfig
    from repro.sources import PencilBeam
    from repro.tissue import LayerStack, OpticalProperties

    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    config = SimulationConfig(stack=LayerStack.homogeneous(props), source=PencilBeam())
    return DataManager(config, n_photons=800, seed=4, task_size=200).run(SerialBackend())


class TestRoundTrip:
    def test_merged_tally_preserved(self, report, tmp_path):
        loaded = load_report(save_report(tmp_path / "run", report))
        assert loaded.tally.summary() == report.tally.summary()
        assert loaded.wall_seconds == report.wall_seconds
        assert loaded.retries == report.retries

    def test_per_task_results_preserved(self, report, tmp_path):
        loaded = load_report(save_report(tmp_path / "run", report))
        assert loaded.n_tasks == report.n_tasks
        for original, restored in zip(report.task_results, loaded.task_results):
            assert restored.task_index == original.task_index
            assert restored.worker_id == original.worker_id
            assert restored.elapsed_seconds == original.elapsed_seconds
            assert restored.tally.summary() == original.tally.summary()

    def test_analyses_work_on_loaded_report(self, report, tmp_path):
        """The uncertainty pipeline runs on a report loaded from disk."""
        loaded = load_report(save_report(tmp_path / "run", report))
        direct = reflectance_estimate(report)
        from_disk = reflectance_estimate(loaded)
        assert from_disk.value == pytest.approx(direct.value, rel=1e-12)
        assert from_disk.standard_error == pytest.approx(
            direct.standard_error, rel=1e-12
        )

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_report(tmp_path)

    def test_bad_version(self, report, tmp_path):
        path = save_report(tmp_path / "run", report)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 42
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_report(path)
