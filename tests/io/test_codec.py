"""Round-trip tests for the zero-copy tally codec (repro.io.codec)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import RecordConfig, SimulationConfig, Tally, task_rng
from repro.core.simulation import run_photons
from repro.detect.records import GridSpec
from repro.io import CodecError, EncodedTally, decode_tally, encode_tally
from repro.io.codec import CODEC_VERSION, _PREAMBLE
from repro.sources import PencilBeam

RECORD_SHAPES = {
    "bare": RecordConfig(),
    "absorption_grid": RecordConfig(
        absorption_grid=GridSpec(shape=(4, 5, 6), lo=(-2, -2, 0), hi=(2, 2, 4))
    ),
    "path_grid": RecordConfig(
        path_grid=GridSpec(shape=(3, 3, 3), lo=(-1, -1, 0), hi=(1, 1, 2))
    ),
    "histograms": RecordConfig(
        pathlength_bins=(0.0, 50.0, 16),
        reflectance_rho_bins=(12.0, 8),
        penetration_bins=(10.0, 12),
    ),
    "everything": RecordConfig(
        absorption_grid=GridSpec(shape=(4, 4, 4), lo=(-2, -2, 0), hi=(2, 2, 4)),
        path_grid=GridSpec(shape=(2, 2, 2), lo=(-1, -1, 0), hi=(1, 1, 2)),
        pathlength_bins=(0.0, 50.0, 16),
        reflectance_rho_bins=(12.0, 8),
        penetration_bins=(10.0, 12),
    ),
}


def tally_for(fast_stack, records: RecordConfig, photons: int = 40) -> Tally:
    config = SimulationConfig(
        stack=fast_stack, source=PencilBeam(), records=records
    )
    return run_photons(config, photons, task_rng(3, 0))


class TestRoundTrip:
    @pytest.mark.parametrize("shape", sorted(RECORD_SHAPES))
    def test_bit_identical(self, fast_stack, shape):
        tally = tally_for(fast_stack, RECORD_SHAPES[shape])
        decoded = decode_tally(encode_tally(tally))
        assert decoded == tally  # Tally.__eq__ is bitwise-strict

    @pytest.mark.parametrize("shape", sorted(RECORD_SHAPES))
    def test_empty_tally(self, shape):
        tally = Tally(n_layers=3, records=RECORD_SHAPES[shape])
        assert decode_tally(encode_tally(tally)) == tally

    def test_path_records_round_trip(self, fast_stack):
        config = SimulationConfig(stack=fast_stack, source=PencilBeam())
        tally = run_photons(config, 40, task_rng(3, 0), capture_paths=True)
        tally.paths.seal(0)
        decoded = decode_tally(encode_tally(tally))
        assert decoded.paths == tally.paths
        assert decoded.paths.segment_keys == (0,)
        assert decoded == tally

    def test_merge_of_decoded_matches_merge_of_originals(self, fast_stack):
        records = RECORD_SHAPES["everything"]
        config = SimulationConfig(
            stack=fast_stack, source=PencilBeam(), records=records
        )
        a = run_photons(config, 30, task_rng(3, 0))
        b = run_photons(config, 30, task_rng(3, 1))
        expected = a.merge(b)
        via_codec = decode_tally(encode_tally(a)).imerge(
            decode_tally(encode_tally(b))
        )
        assert via_codec == expected


class TestZeroCopySemantics:
    def test_bytearray_buffer_gives_writable_views(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["everything"]))
        assert isinstance(buf, bytearray)
        decoded = decode_tally(buf)
        assert decoded.absorbed_by_layer.flags.writeable
        assert decoded.absorption_grid.flags.writeable

    def test_bytes_buffer_gives_readonly_views(self, fast_stack):
        buf = bytes(encode_tally(tally_for(fast_stack, RECORD_SHAPES["bare"])))
        decoded = decode_tally(buf)
        assert not decoded.absorbed_by_layer.flags.writeable

    def test_views_share_the_buffer(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["bare"]))
        decoded = decode_tally(buf)
        before = decoded.absorbed_by_layer.copy()
        buf[-1] ^= 0xFF  # flip bits in the underlying buffer...
        assert not np.array_equal(decoded.absorbed_by_layer, before)

    def test_encoded_tally_pickle_round_trip_stays_writable(self, fast_stack):
        """Process-pool transport: pickle must preserve the bytearray type,
        so the parent's decoded views remain mergeable in place."""
        tally = tally_for(fast_stack, RECORD_SHAPES["everything"])
        encoded = EncodedTally(encode_tally(tally))
        clone: EncodedTally = pickle.loads(pickle.dumps(encoded))
        assert isinstance(clone.payload, bytearray)
        decoded = clone.decode()
        assert decoded == tally
        assert decoded.absorbed_by_layer.flags.writeable


class TestRejection:
    def test_bad_magic(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["bare"]))
        buf[:4] = b"NOPE"
        with pytest.raises(CodecError, match="magic"):
            decode_tally(buf)

    def test_future_version(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["bare"]))
        _PREAMBLE.pack_into(
            buf, 0, b"RTLY", CODEC_VERSION + 1, _PREAMBLE.unpack_from(buf, 0)[2]
        )
        with pytest.raises(CodecError, match="version"):
            decode_tally(buf)

    def test_too_short(self):
        with pytest.raises(CodecError, match="too short"):
            decode_tally(b"RT")

    def test_truncated_arrays(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["everything"]))
        with pytest.raises(CodecError, match="truncated"):
            decode_tally(buf[: len(buf) // 2])

    def test_corrupt_manifest(self, fast_stack):
        buf = encode_tally(tally_for(fast_stack, RECORD_SHAPES["bare"]))
        start = _PREAMBLE.size
        buf[start : start + 2] = b"\xff\xfe"
        with pytest.raises(CodecError):
            decode_tally(buf)


class TestBaseline:
    def test_baseline_is_cached_per_shape(self, fast_stack):
        from repro.io.codec import pickled_baseline_bytes

        a = tally_for(fast_stack, RECORD_SHAPES["everything"], photons=20)
        b = tally_for(fast_stack, RECORD_SHAPES["everything"], photons=40)
        assert pickled_baseline_bytes(a) == pickled_baseline_bytes(b)
        assert pickled_baseline_bytes(a) > 0
