"""Tests for tally persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecordConfig,
    Simulation,
    SimulationConfig,
    Tally,
    run_batch_vectorized,
    task_rng,
)
from repro.detect import GridSpec
from repro.io import load_tally, save_tally
from repro.sources import PencilBeam


def summaries_equal(a: Tally, b: Tally) -> None:
    sa, sb = a.summary(), b.summary()
    for key in sa:
        if np.isnan(sa[key]):
            assert np.isnan(sb[key])
        else:
            assert sa[key] == pytest.approx(sb[key], rel=1e-12), key


class TestRoundTrip:
    def test_minimal_tally(self, tmp_path):
        t = Tally(n_layers=2)
        t.n_launched = 5
        t.diffuse_reflectance_weight = 1.5
        path = save_tally(tmp_path / "t.npz", t)
        back = load_tally(path)
        summaries_equal(t, back)
        assert back.n_layers == 2

    def test_full_featured_tally(self, tmp_path, fast_stack):
        spec = GridSpec.cube(8, 5.0, 5.0)
        config = SimulationConfig(
            stack=fast_stack,
            source=PencilBeam(),
            records=RecordConfig(
                absorption_grid=spec,
                path_grid=spec,
                pathlength_bins=(0.0, 50.0, 10),
                reflectance_rho_bins=(20.0, 8),
                penetration_bins=(30.0, 12),
            ),
        )
        t = run_batch_vectorized(config, 500, task_rng(0, 0))
        back = load_tally(save_tally(tmp_path / "full.npz", t))
        summaries_equal(t, back)
        np.testing.assert_array_equal(back.absorption_grid, t.absorption_grid)
        np.testing.assert_array_equal(back.path_grid, t.path_grid)
        np.testing.assert_array_equal(
            back.pathlength_hist.counts, t.pathlength_hist.counts
        )
        np.testing.assert_array_equal(
            back.penetration_hist.edges, t.penetration_hist.edges
        )
        np.testing.assert_array_equal(back.absorbed_by_layer, t.absorbed_by_layer)

    def test_loaded_tally_still_merges(self, tmp_path, fast_config):
        t1 = run_batch_vectorized(fast_config, 200, task_rng(0, 0))
        t2 = run_batch_vectorized(fast_config, 300, task_rng(0, 1))
        merged_direct = t1.merge(t2)
        loaded = load_tally(save_tally(tmp_path / "t1.npz", t1))
        merged_via_disk = loaded.merge(t2)
        summaries_equal(merged_direct, merged_via_disk)

    def test_running_stats_preserved(self, tmp_path):
        t = Tally(n_layers=1)
        t.n_launched = 3
        t.pathlength.add(np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.0, 2.0]))
        back = load_tally(save_tally(tmp_path / "s.npz", t))
        assert back.pathlength.mean == pytest.approx(t.pathlength.mean)
        assert back.pathlength.minimum == t.pathlength.minimum
        assert back.pathlength.maximum == t.pathlength.maximum
        assert back.pathlength.variance == pytest.approx(t.pathlength.variance)

    def test_unsupported_version_rejected(self, tmp_path):
        t = Tally(n_layers=1)
        path = save_tally(tmp_path / "v.npz", t)
        # Corrupt the version field.
        import json

        with np.load(path) as data:
            header = json.loads(bytes(data["header"]).decode())
            arrays = {k: data[k] for k in data.files}
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_tally(path)


class TestProvenance:
    def test_roundtrip(self, tmp_path, fast_config):
        tally = Simulation(fast_config).run(200, seed=4)
        prov = {
            "model": "fast",
            "seed": 4,
            "n_photons": 200,
            "version": "1.0.0",
            "boundary_mode": "probabilistic",
        }
        path = save_tally(tmp_path / "t.npz", tally, provenance=prov)
        loaded = load_tally(path)
        assert loaded.provenance == prov

    def test_absent_provenance_loads_as_none(self, tmp_path, fast_config):
        tally = Simulation(fast_config).run(100, seed=0)
        loaded = load_tally(save_tally(tmp_path / "t.npz", tally))
        assert loaded.provenance is None

    def test_expected_fingerprint_match_and_mismatch(self, tmp_path, fast_config):
        tally = Simulation(fast_config).run(100, seed=0)
        path = save_tally(
            tmp_path / "t.npz", tally, provenance={"fingerprint": "ab12" * 16}
        )
        loaded = load_tally(path, expected_fingerprint="ab12" * 16)
        assert loaded.provenance["fingerprint"] == "ab12" * 16
        with pytest.raises(ValueError, match="different request"):
            load_tally(path, expected_fingerprint="cd34" * 16)

    def test_expected_fingerprint_rejects_unstamped_archive(
        self, tmp_path, fast_config
    ):
        tally = Simulation(fast_config).run(100, seed=0)
        path = save_tally(tmp_path / "t.npz", tally)  # no provenance
        with pytest.raises(ValueError, match="different request"):
            load_tally(path, expected_fingerprint="ab12" * 16)
        # Without the check, the archive still loads fine.
        assert load_tally(path).provenance is None


class TestFrontierPersistence:
    def _frontier(self, fast_config, n=3):
        from repro.core.reduce import TallyFrontier

        tallies = [run_batch_vectorized(fast_config, 100, task_rng(0, i)) for i in range(n)]
        return TallyFrontier([(0, 2, tallies[0].merge(tallies[1])), (2, 3, tallies[2])])

    def test_roundtrip_bitwise(self, tmp_path, fast_config):
        from repro.io import load_frontier

        tally = Simulation(fast_config).run(100, seed=0)
        frontier = self._frontier(fast_config)
        path = save_tally(tmp_path / "t.npz", tally, frontier=frontier)
        loaded = load_frontier(path)
        assert [(s, e) for s, e, _ in loaded] == [(0, 2), (2, 3)]
        for (s1, e1, t1), (s2, e2, t2) in zip(frontier, loaded):
            assert t1 == t2  # Tally.__eq__ is bitwise-strict

    def test_frontier_is_invisible_to_load_tally(self, tmp_path, fast_config):
        tally = Simulation(fast_config).run(100, seed=0)
        path = save_tally(
            tmp_path / "t.npz", tally, frontier=self._frontier(fast_config)
        )
        loaded = load_tally(path)
        assert loaded == tally

    def test_frontierless_archive_loads_none(self, tmp_path, fast_config):
        from repro.io import load_frontier

        tally = Simulation(fast_config).run(100, seed=0)
        assert load_frontier(save_tally(tmp_path / "t.npz", tally)) is None

    def test_frontier_read_is_self_verifying(self, tmp_path, fast_config):
        from repro.io import load_frontier

        tally = Simulation(fast_config).run(100, seed=0)
        path = save_tally(
            tmp_path / "t.npz",
            tally,
            provenance={"fingerprint": "ab12" * 16},
            frontier=self._frontier(fast_config),
        )
        assert load_frontier(path, expected_fingerprint="ab12" * 16) is not None
        with pytest.raises(ValueError, match="different request"):
            load_frontier(path, expected_fingerprint="cd34" * 16)


class TestArchiveSummary:
    def test_reports_provenance_and_span_layout(self, tmp_path, fast_config):
        from repro.core.reduce import TallyFrontier
        from repro.io import archive_summary

        tally = Simulation(fast_config).run(100, seed=0)
        extra = run_batch_vectorized(fast_config, 100, task_rng(0, 0))
        path = save_tally(
            tmp_path / "t.npz",
            tally,
            provenance={"n_photons": 100},
            frontier=TallyFrontier([(0, 1, extra)]),
        )
        summary = archive_summary(path)
        assert summary["provenance"] == {"n_photons": 100}
        assert summary["frontier_spans"] == [(0, 1)]
        assert summary["sections"] == ["frontier"]

    def test_plain_archive(self, tmp_path, fast_config):
        from repro.io import archive_summary

        tally = Simulation(fast_config).run(100, seed=0)
        summary = archive_summary(save_tally(tmp_path / "t.npz", tally))
        assert summary["provenance"] is None
        assert summary["frontier_spans"] == []
        assert summary["sections"] == []

    def test_paths_section_reported(self, tmp_path, fast_config):
        from repro.core import run_photons, task_rng
        from repro.io import archive_summary

        tally = run_photons(fast_config, 50, task_rng(0, 0), capture_paths=True)
        tally.paths.seal(0)
        summary = archive_summary(save_tally(tmp_path / "t.npz", tally))
        assert summary["sections"] == ["paths"]


class TestPathPersistence:
    """Path records ride along in the archive, invisibly to load_tally."""

    def _captured(self, fast_config):
        from repro.core import run_photons, task_rng

        tally = run_photons(fast_config, 60, task_rng(2, 0), capture_paths=True)
        tally.paths.seal(0)
        return tally

    def test_round_trip(self, tmp_path, fast_config):
        from repro.io import load_paths

        tally = self._captured(fast_config)
        path = save_tally(tmp_path / "t.npz", tally)
        back = load_paths(path)
        assert back == tally.paths
        assert back.segment_keys == (0,)
        # The records stay invisible to a plain tally load: same archive,
        # same tally, no paths attached.
        assert load_tally(path).paths is None

    def test_absent_records_load_as_none(self, tmp_path, fast_config):
        from repro.io import load_paths

        tally = Simulation(fast_config).run(50, seed=0)
        assert load_paths(save_tally(tmp_path / "t.npz", tally)) is None

    def test_fingerprint_self_verification(self, tmp_path, fast_config):
        from repro.io import load_paths

        tally = self._captured(fast_config)
        path = save_tally(
            tmp_path / "t.npz", tally, provenance={"fingerprint": "ab12" * 16}
        )
        assert load_paths(path, expected_fingerprint="ab12" * 16) is not None
        with pytest.raises(ValueError, match="different request"):
            load_paths(path, expected_fingerprint="cd34" * 16)
