"""Shared fixtures for the test suite.

Test media are deliberately *fast*: absorption within an order of magnitude
of scattering, so photons terminate within tens of interactions and a test
tracing thousands of photons runs in milliseconds.  The slow, realistic
Table 1 media (albedo 0.9998) are exercised by the benchmarks, not by the
unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RouletteConfig, SimulationConfig
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_props() -> OpticalProperties:
    """A strongly absorbing turbid medium (photons die in ~10 steps)."""
    return OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)


@pytest.fixture
def fast_stack(fast_props) -> LayerStack:
    """Semi-infinite fast medium."""
    return LayerStack.homogeneous(fast_props, name="fast")


@pytest.fixture
def fast_slab(fast_props) -> LayerStack:
    """A 1 mm slab of the fast medium (thin enough to transmit measurably)."""
    return LayerStack.homogeneous(fast_props, 1.0, name="fast-slab")


@pytest.fixture
def matched_stack() -> LayerStack:
    """Index-matched fast medium: no specular loss, no internal reflection.

    Makes analytic expectations exact (e.g. Beer-Lambert ballistic decay).
    """
    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.0)
    return LayerStack.homogeneous(props, name="matched")


@pytest.fixture
def fast_config(fast_stack) -> SimulationConfig:
    """Ready-to-run config on the fast medium with a pencil beam."""
    return SimulationConfig(stack=fast_stack, source=PencilBeam())


@pytest.fixture
def three_layer_stack() -> LayerStack:
    """Three fast layers with distinct coefficients (multi-layer logic)."""
    return LayerStack(
        [
            Layer("a", OpticalProperties(mu_a=0.5, mu_s=5.0, g=0.7, n=1.4), 2.0),
            Layer("b", OpticalProperties(mu_a=0.2, mu_s=1.0, g=0.3, n=1.4), 3.0),
            Layer("c", OpticalProperties(mu_a=1.0, mu_s=8.0, g=0.9, n=1.4), None),
        ]
    )


@pytest.fixture
def aggressive_roulette() -> RouletteConfig:
    """Roulette that triggers early (keeps test photons short-lived)."""
    return RouletteConfig(threshold=1e-2, boost=10.0)
