"""Tests for Monte Carlo convergence analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import convergence_curve, photons_for_precision
from repro.distributed import DataManager, SerialBackend


@pytest.fixture(scope="module")
def report():
    from repro.core import SimulationConfig
    from repro.sources import PencilBeam
    from repro.tissue import LayerStack, OpticalProperties

    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    config = SimulationConfig(stack=LayerStack.homogeneous(props), source=PencilBeam())
    return DataManager(config, n_photons=6_000, seed=8, task_size=200).run(
        SerialBackend()
    )


def reflectance(tally):
    return tally.diffuse_reflectance


class TestConvergenceCurve:
    def test_monotone_photon_counts(self, report):
        curve = convergence_curve(report, reflectance)
        counts = [p.n_photons for p in curve]
        assert counts == sorted(counts)
        assert counts[-1] == 6_000

    def test_final_value_matches_pooled(self, report):
        curve = convergence_curve(report, reflectance)
        assert curve[-1].value == pytest.approx(
            report.tally.diffuse_reflectance, rel=1e-9
        )

    def test_se_shrinks_roughly_sqrt_n(self, report):
        curve = convergence_curve(report, reflectance)
        early = curve[4]  # after 1000 photons
        late = curve[-1]  # after 6000 photons
        expected_ratio = np.sqrt(late.n_photons / early.n_photons)
        observed_ratio = early.standard_error / late.standard_error
        # SE itself is noisy; accept a broad band around sqrt(6).
        assert 0.4 * expected_ratio < observed_ratio < 2.5 * expected_ratio

    def test_min_tasks(self, report):
        with pytest.raises(ValueError, match="need >="):
            convergence_curve(report, reflectance, min_tasks=1000)


class TestPhotonsForPrecision:
    def test_scaling_law(self, report):
        curve = convergence_curve(report, reflectance)
        current_rel = curve[-1].standard_error / curve[-1].value
        # Asking for half the current error needs ~4x the photons.
        target = photons_for_precision(report, reflectance, current_rel / 2)
        assert target == pytest.approx(4 * 6_000, rel=0.01)

    def test_already_precise_enough(self, report):
        curve = convergence_curve(report, reflectance)
        current_rel = curve[-1].standard_error / curve[-1].value
        target = photons_for_precision(report, reflectance, current_rel * 2)
        assert target < 6_000

    def test_validation(self, report):
        with pytest.raises(ValueError, match="target_relative_error"):
            photons_for_precision(report, reflectance, 0.0)

    def test_billions_for_permille(self, report):
        """The paper's point: tight error bars need ~billions of photons."""
        target = photons_for_precision(report, reflectance, 1e-4)
        assert target > 10**8
