"""Tests for ASCII/PGM rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_heatmap, save_pgm


class TestAsciiHeatmap:
    def test_dimensions(self):
        density = np.random.default_rng(0).random((100, 60))
        art = ascii_heatmap(density, width=40, height=20)
        lines = art.split("\n")
        assert len(lines) == 20
        assert all(len(line) == 40 for line in lines)

    def test_empty_grid_blank(self):
        art = ascii_heatmap(np.zeros((10, 10)), width=10, height=5)
        assert set(art) <= {" ", "\n"}

    def test_peak_is_darkest(self):
        density = np.zeros((8, 8))
        density[4, 4] = 100.0
        art = ascii_heatmap(density, width=8, height=8, transpose=False)
        assert "@" in art

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ascii_heatmap(np.array([[-1.0]]))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            ascii_heatmap(np.zeros(5))

    def test_small_grid_no_upscale(self):
        # Input (4, 3) is transposed to 3 rows x 4 cols and never upscaled.
        art = ascii_heatmap(np.ones((4, 3)), width=64, height=32)
        lines = art.split("\n")
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)


class TestSavePgm:
    def test_round_trip_header(self, tmp_path):
        density = np.random.default_rng(1).random((30, 20))
        path = save_pgm(tmp_path / "map.pgm", density)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n30 20\n255\n")  # transposed: 30 wide, 20 tall
        pixels = raw.split(b"255\n", 1)[1]
        assert len(pixels) == 600

    def test_zero_grid(self, tmp_path):
        path = save_pgm(tmp_path / "zero.pgm", np.zeros((4, 4)))
        pixels = path.read_bytes().split(b"255\n", 1)[1]
        assert set(pixels) == {0}

    def test_wrong_ndim(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            save_pgm(tmp_path / "bad.pgm", np.zeros(3))
