"""Tests for Monte Carlo uncertainty estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import detection_estimate, estimate, reflectance_estimate
from repro.distributed import DataManager, SerialBackend


@pytest.fixture(scope="module")
def report(request):
    from repro.core import SimulationConfig
    from repro.sources import PencilBeam
    from repro.tissue import LayerStack, OpticalProperties

    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    config = SimulationConfig(stack=LayerStack.homogeneous(props), source=PencilBeam())
    return DataManager(config, n_photons=4_000, seed=2, task_size=200).run(
        SerialBackend()
    )


class TestEstimate:
    def test_value_matches_pooled_tally(self, report):
        est = reflectance_estimate(report)
        assert est.value == pytest.approx(report.tally.diffuse_reflectance, rel=1e-9)

    def test_se_positive_and_sane(self, report):
        est = reflectance_estimate(report)
        assert est.standard_error > 0
        # Rd ~ 0.07, 4000 photons: SE should be a few percent of the value,
        # definitely under half of it.
        assert est.standard_error < 0.5 * est.value
        assert est.n_tasks == 20

    def test_se_scales_with_photons(self):
        """4x the photons -> ~2x smaller SE (the sqrt(N) law)."""
        from repro.core import SimulationConfig
        from repro.sources import PencilBeam
        from repro.tissue import LayerStack, OpticalProperties

        props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(props), source=PencilBeam()
        )
        small = DataManager(config, 2_000, seed=3, task_size=100).run(SerialBackend())
        large = DataManager(config, 8_000, seed=3, task_size=100).run(SerialBackend())
        ratio = reflectance_estimate(small).standard_error / reflectance_estimate(
            large
        ).standard_error
        assert 1.3 < ratio < 3.2

    def test_interval_contains_value(self, report):
        est = reflectance_estimate(report)
        lo, hi = est.interval()
        assert lo < est.value < hi

    def test_relative_error(self, report):
        est = reflectance_estimate(report)
        assert est.relative_error == pytest.approx(
            est.standard_error / est.value
        )

    def test_detection_estimate(self, report):
        est = detection_estimate(report)
        assert est.value == pytest.approx(
            report.tally.detected_weight / report.tally.n_launched, rel=1e-9
        )

    def test_custom_quantity(self, report):
        est = estimate(report, lambda t: t.total_absorbed_fraction)
        assert est.value == pytest.approx(
            report.tally.total_absorbed_fraction, rel=1e-9
        )

    def test_needs_two_tasks(self, report):
        single = type(report)(
            tally=report.tally,
            task_results=report.task_results[:1],
            wall_seconds=1.0,
        )
        with pytest.raises(ValueError, match=">= 2 tasks"):
            reflectance_estimate(single)

    def test_coverage_of_true_value(self):
        """~95% of 1.96-sigma intervals should contain an independent
        high-precision estimate; check a weaker 'most of them' form."""
        from repro.core import SimulationConfig
        from repro.sources import PencilBeam
        from repro.tissue import LayerStack, OpticalProperties

        props = OpticalProperties(mu_a=1.0, mu_s=5.0, g=0.5, n=1.0)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(props), source=PencilBeam()
        )
        truth = DataManager(config, 40_000, seed=99, task_size=5_000).run(
            SerialBackend()
        ).tally.diffuse_reflectance
        hits = 0
        trials = 8
        for seed in range(trials):
            rep = DataManager(config, 2_000, seed=seed, task_size=200).run(
                SerialBackend()
            )
            lo, hi = reflectance_estimate(rep).interval()
            hits += lo <= truth <= hi
        assert hits >= trials - 2
