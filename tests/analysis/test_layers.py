"""Tests for layer-wise penetration analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import depth_profile, layer_report, penetration_fractions
from repro.core import RecordConfig, Tally
from repro.detect import GridSpec
from repro.tissue import Layer, LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=0.1, mu_s=1.0)


@pytest.fixture
def stack():
    return LayerStack(
        [Layer("top", PROPS, 2.0), Layer("mid", PROPS, 3.0), Layer("deep", PROPS, None)]
    )


@pytest.fixture
def tally(stack):
    t = Tally(n_layers=3, records=RecordConfig(penetration_bins=(20.0, 200)))
    t.n_launched = 10
    # 6 photons stop in the top layer, 3 in mid, 1 reaches deep.
    t.record_penetration(np.array([0.5, 1.0, 1.5, 0.2, 1.9, 1.0]))
    t.record_penetration(np.array([2.5, 3.0, 4.9]))
    t.record_penetration(np.array([7.0]))
    t.absorbed_by_layer[:] = [3.0, 1.0, 0.2]
    return t


class TestPenetrationFractions:
    def test_stopped_fractions(self, tally, stack):
        fractions = penetration_fractions(tally, stack)
        assert fractions["top"]["stopped"] == pytest.approx(0.6)
        assert fractions["mid"]["stopped"] == pytest.approx(0.3)
        assert fractions["deep"]["stopped"] == pytest.approx(0.1)

    def test_reached_fractions_are_cumulative(self, tally, stack):
        fractions = penetration_fractions(tally, stack)
        assert fractions["top"]["reached"] == pytest.approx(1.0)
        assert fractions["mid"]["reached"] == pytest.approx(0.4)
        assert fractions["deep"]["reached"] == pytest.approx(0.1)

    def test_requires_histogram(self, stack):
        with pytest.raises(ValueError, match="penetration"):
            penetration_fractions(Tally(n_layers=3), stack)

    def test_requires_data(self, stack):
        t = Tally(n_layers=3, records=RecordConfig(penetration_bins=(20.0, 10)))
        with pytest.raises(ValueError, match="empty"):
            penetration_fractions(t, stack)


class TestLayerReport:
    def test_rows_combine_absorption_and_penetration(self, tally, stack):
        rows = layer_report(tally, stack)
        assert [r.name for r in rows] == ["top", "mid", "deep"]
        assert rows[0].absorbed_fraction == pytest.approx(0.3)
        assert rows[0].stopped_fraction == pytest.approx(0.6)
        assert rows[1].z_top == pytest.approx(2.0)
        assert rows[1].z_bottom == pytest.approx(5.0)

    def test_reached_monotone_decreasing(self, tally, stack):
        rows = layer_report(tally, stack)
        reached = [r.reached_fraction for r in rows]
        assert reached == sorted(reached, reverse=True)


class TestDepthProfile:
    def test_collapse_and_normalisation(self):
        spec = GridSpec(shape=(2, 2, 4), lo=(0, 0, 0), hi=(2, 2, 8))
        grid = spec.zeros()
        grid[:, :, 0] = 1.0  # 4 voxels x weight 1 in the first 2 mm of depth
        z, profile = depth_profile(grid, spec)
        assert profile[0] == pytest.approx(4.0 / 2.0)  # weight per mm
        assert profile[1:].sum() == 0.0
        np.testing.assert_allclose(z, [1.0, 3.0, 5.0, 7.0])

    def test_shape_mismatch(self):
        spec = GridSpec.cube(4, 1.0, 1.0)
        with pytest.raises(ValueError, match="grid shape"):
            depth_profile(np.zeros((2, 2, 2)), spec)
