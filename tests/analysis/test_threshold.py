"""Tests for density-map thresholding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import threshold_relative, threshold_top_weight


class TestTopWeight:
    def test_keeps_heaviest_first(self):
        # The heaviest voxel alone carries 62% of the weight, so a 60%
        # threshold keeps exactly it.
        grid = np.array([[10.0, 1.0], [5.0, 0.1]])
        mask = threshold_top_weight(grid, 0.6)
        assert mask[0, 0]
        assert mask.sum() == 1

    def test_full_fraction_keeps_positive_voxels(self):
        grid = np.array([1.0, 2.0, 0.0, 3.0]).reshape(2, 2)
        mask = threshold_top_weight(grid, 1.0)
        assert mask.sum() == 3  # the zero voxel is never needed

    def test_cumulative_weight_reaches_fraction(self):
        rng = np.random.default_rng(0)
        grid = rng.exponential(1.0, size=(20, 20))
        for fraction in (0.3, 0.6, 0.9):
            mask = threshold_top_weight(grid, fraction)
            kept = grid[mask].sum() / grid.sum()
            assert kept >= fraction
            # Minimality: dropping the lightest kept voxel dips below.
            lightest = grid[mask].min()
            assert kept - lightest / grid.sum() < fraction

    def test_zero_grid(self):
        mask = threshold_top_weight(np.zeros((3, 3)), 0.5)
        assert not mask.any()

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            threshold_top_weight(np.ones((2, 2)), 0.0)
        with pytest.raises(ValueError, match="fraction"):
            threshold_top_weight(np.ones((2, 2)), 1.5)

    def test_3d_grid(self):
        grid = np.zeros((4, 4, 4))
        grid[1, 2, 3] = 5.0
        mask = threshold_top_weight(grid, 0.5)
        assert mask[1, 2, 3]
        assert mask.sum() == 1


class TestRelative:
    def test_peak_fraction(self):
        grid = np.array([[1.0, 0.5], [0.4, 0.0]])
        mask = threshold_relative(grid, 0.5)
        np.testing.assert_array_equal(mask, [[True, True], [False, False]])

    def test_zero_grid(self):
        assert not threshold_relative(np.zeros((2, 2)), 0.5).any()

    def test_validation(self):
        with pytest.raises(ValueError, match="level"):
            threshold_relative(np.ones((2, 2)), 0.0)
