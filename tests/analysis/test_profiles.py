"""Tests for penetration-vs-spacing profiles."""

from __future__ import annotations

import pytest

from repro.analysis import penetration_vs_spacing
from repro.core import RouletteConfig, SimulationConfig
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

#: Diffusive-but-fast medium so detection at a few mm is efficient.
PROPS = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.8, n=1.0)


class TestPenetrationVsSpacing:
    @pytest.fixture(scope="class")
    def points(self):
        stack = LayerStack.homogeneous(PROPS)
        base = SimulationConfig(
            stack=stack, source=PencilBeam(),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        return penetration_vs_spacing(
            stack, spacings=[2.0, 4.0, 6.0], n_photons=30_000,
            ring_halfwidth=0.5, seed=1, base_config=base,
        )

    def test_depth_grows_with_spacing(self, points):
        """The paper's §1 relationship: larger spacing probes deeper."""
        depths = [p.mean_penetration_depth for p in points]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0] * 1.3

    def test_pathlength_grows_with_spacing(self, points):
        lengths = [p.mean_pathlength for p in points]
        assert lengths == sorted(lengths)

    def test_detection_falls_with_spacing(self, points):
        weights = [p.detected_weight for p in points]
        assert weights == sorted(weights, reverse=True)

    def test_dpf_positive(self, points):
        assert all(p.dpf > 1.0 for p in points)

    def test_validation(self):
        stack = LayerStack.homogeneous(PROPS)
        with pytest.raises(ValueError, match="n_photons"):
            penetration_vs_spacing(stack, [5.0], 0)
        with pytest.raises(ValueError, match="exceed"):
            penetration_vs_spacing(stack, [0.5], 100, ring_halfwidth=1.0)
