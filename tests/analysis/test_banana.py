"""Tests for banana-shape analysis (on synthetic grids, no MC needed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import banana_metrics, xz_slice
from repro.analysis.banana import cylindrical_map
from repro.detect import GridSpec


def synthetic_banana(spec: GridSpec, detector_x: float) -> np.ndarray:
    """Paint an analytic half-ellipse arc from (0,0) to (detector_x,0)."""
    grid = spec.zeros()
    x = spec.axis_centres(0)
    y = spec.axis_centres(1)
    z = spec.axis_centres(2)
    max_depth = detector_x / 2.0
    for t in np.linspace(0.0, np.pi, 400):
        px = detector_x / 2.0 * (1 - np.cos(t))
        pz = max_depth * np.sin(t)
        ix = np.argmin(np.abs(x - px))
        iz = np.argmin(np.abs(z - pz))
        iy = np.argmin(np.abs(y))
        grid[ix, iy, iz] += 1.0
    return grid


class TestXZSlice:
    def test_projects_central_band(self):
        spec = GridSpec.banana_box(20, 4.0)
        grid = spec.zeros()
        grid[:, 10, :] = 1.0  # central y row
        grid[:, 0, :] = 100.0  # far off-axis row, must be excluded
        slab = xz_slice(grid, spec)
        assert slab.shape == (20, 20)
        assert slab.max() <= 3.0  # central rows only

    def test_shape_mismatch(self):
        spec = GridSpec.banana_box(8, 4.0)
        with pytest.raises(ValueError, match="grid shape"):
            xz_slice(np.zeros((2, 2, 2)), spec)

    def test_bad_halfwidth(self):
        spec = GridSpec.banana_box(8, 4.0)
        with pytest.raises(ValueError, match="no voxel"):
            xz_slice(spec.zeros(), spec, y_halfwidth=1e-9)


class TestBananaMetrics:
    def test_synthetic_banana_is_banana(self):
        spec = GridSpec.banana_box(50, 8.0)
        grid = synthetic_banana(spec, 8.0)
        m = banana_metrics(grid, spec, detector_x=8.0)
        assert m.is_banana
        assert m.depth_at_midpoint == pytest.approx(4.0, rel=0.15)
        assert m.depth_at_source < 1.5
        assert m.depth_at_detector < 1.5
        assert 2.0 < m.argmax_depth_x < 6.0

    def test_flat_sheet_is_not_banana(self):
        # Uniform shallow sheet: no deep midpoint.
        spec = GridSpec.banana_box(30, 6.0)
        grid = spec.zeros()
        grid[:, 15, 0] = 1.0
        m = banana_metrics(grid, spec, detector_x=6.0)
        assert not m.is_banana

    def test_empty_grid(self):
        spec = GridSpec.banana_box(10, 4.0)
        m = banana_metrics(spec.zeros(), spec, detector_x=4.0)
        assert m.total_weight == 0.0
        assert not m.is_banana

    def test_band_outside_grid_rejected(self):
        spec = GridSpec.banana_box(10, 4.0)
        with pytest.raises(ValueError, match="outside the grid"):
            banana_metrics(spec.zeros(), spec, detector_x=100.0)


class TestCylindricalMap:
    def test_total_weight_preserved(self):
        spec = GridSpec.cube(16, 8.0, 8.0)
        grid = spec.zeros()
        rng = np.random.default_rng(1)
        grid[:] = rng.random(grid.shape)
        _, _, density = cylindrical_map(grid, spec)
        assert density.sum() == pytest.approx(grid.sum(), rel=1e-12)

    def test_axis_weight_lands_at_small_rho(self):
        spec = GridSpec.cube(17, 8.0, 8.0)  # odd: voxel centred on the axis
        grid = spec.zeros()
        grid[8, 8, 3] = 5.0  # on-axis voxel
        rho, z, density = cylindrical_map(grid, spec)
        populated = np.nonzero(density)
        assert rho[populated[0][0]] < 1.0

    def test_ring_weight_lands_at_its_radius(self):
        spec = GridSpec.cube(33, 8.0, 8.0)
        grid = spec.zeros()
        x = spec.axis_centres(0)
        y = spec.axis_centres(1)
        rho_vox = np.hypot(x[:, None], y[None, :])
        ring = np.abs(rho_vox - 5.0) < 0.25
        grid[:, :, 0][ring] = 1.0
        rho, _, density = cylindrical_map(grid, spec)
        peak_rho = rho[np.argmax(density[:, 0])]
        assert peak_rho == pytest.approx(5.0, abs=0.5)

    def test_shape_mismatch(self):
        spec = GridSpec.cube(4, 1.0, 1.0)
        with pytest.raises(ValueError, match="grid shape"):
            cylindrical_map(np.zeros((2, 2, 2)), spec)
