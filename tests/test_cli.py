"""Smoke tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "adult_head"
        assert args.kernel == "vector"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "bone"])

    def test_run_reduction_flags(self):
        args = build_parser().parse_args(["run"])
        assert args.retain_task_tallies is True
        assert args.compress is False
        args = build_parser().parse_args(
            ["run", "--no-retain-task-tallies", "--compress"]
        )
        assert args.retain_task_tallies is False
        assert args.compress is True

    def test_serve_retain_flag(self):
        args = build_parser().parse_args(["serve", "--no-retain-task-tallies"])
        assert args.retain_task_tallies is False

    def test_span_and_sub_batch_flags(self):
        for command in ("run", "serve"):
            args = build_parser().parse_args([command])
            assert args.span_size is None
            assert args.sub_batch is None
            args = build_parser().parse_args(
                [command, "--span-size", "8", "--sub-batch", "256"]
            )
            assert args.span_size == 8
            assert args.sub_batch == 256

    def test_serve_http_defaults(self):
        args = build_parser().parse_args(["serve-http"])
        assert args.port == 8080
        assert args.store == "tally-store"
        assert args.job_workers == 2
        assert args.timeout is None


class TestCommands:
    def test_run_white_matter(self, capsys):
        code = main([
            "run", "--model", "white_matter", "--photons", "300",
            "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "diffuse_reflectance" in out
        assert "energy_balance" in out

    def test_run_with_detector_gate_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "tally.npz"
        code = main([
            "run", "--model", "white_matter", "--photons", "300",
            "--detector-spacing", "2.0", "--gate", "0", "50",
            "--save", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        from repro.io import load_tally

        tally = load_tally(out_file)
        assert tally.n_launched == 300

    def test_run_distributed(self, capsys):
        code = main([
            "run", "--model", "white_matter", "--photons", "400",
            "--workers", "2", "--task-size", "200",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "distributed over 2 workers" in out

    def test_speedup(self, capsys):
        code = main(["speedup", "--max-k", "10", "--photons", "10000000",
                     "--task-size", "100000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "efficiency" in out

    def test_table2(self, capsys):
        code = main(["table2", "--photons", "100000000", "--dedicated"])
        out = capsys.readouterr().out
        assert code == 0
        assert "150 machines" in out
        assert "P4 2.4GHz" in out

    def test_head(self, capsys):
        code = main(["head", "--photons", "500", "--spacing", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "white_matter" in out

    def test_banana(self, capsys, tmp_path):
        pgm = tmp_path / "b.pgm"
        code = main([
            "banana", "--photons", "1500", "--spacing", "2.5",
            "--granularity", "16", "--pgm", str(pgm),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "banana" in out
        assert pgm.exists()

    def test_serve_and_client(self, capsys):
        """End-to-end TCP run through the CLI entry points."""
        import threading

        from repro.core import SimulationConfig
        from repro.distributed import NetworkServer
        from repro.sources import PencilBeam
        from repro.tissue import white_matter

        # Start a tiny server directly (the CLI path for 'serve' blocks),
        # then drive the 'client' subcommand against it.
        config = SimulationConfig(stack=white_matter(), source=PencilBeam())
        server = NetworkServer(config, n_photons=300, seed=1, task_size=100).start()
        client = threading.Thread(
            target=main, args=(["client", "--port", str(server.port)],), daemon=True
        )
        client.start()
        report = server.wait(timeout=120)
        client.join(timeout=30)
        assert report.tally.n_launched == 300
        out = capsys.readouterr().out
        assert "completed" in out

    def test_fit(self, capsys):
        code = main(["fit", "--photons", "30000", "--mu-a", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered" in out


class TestCheckpointCli:
    def run_args(self, ck_dir):
        return [
            "run", "--model", "white_matter", "--photons", "300",
            "--task-size", "100", "--seed", "1", "--checkpoint", str(ck_dir),
        ]

    def test_checkpoint_recorded_then_resumed(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(self.run_args(ck)) == 0
        assert "checkpoint" in capsys.readouterr().out
        assert (ck / "checkpoint.json").exists()

        # Re-running over an existing checkpoint without --resume is refused
        # (it would silently extend a different invocation's run).
        with pytest.raises(SystemExit, match="--resume"):
            main(self.run_args(ck))

        # With --resume everything is already recorded: instant completion.
        assert main(self.run_args(ck) + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "3 tasks recorded" in out

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["run", "--model", "white_matter", "--photons", "100", "--resume"])

    def test_task_deadline_flag(self, capsys):
        code = main([
            "run", "--model", "white_matter", "--photons", "200",
            "--workers", "2", "--task-size", "100", "--task-deadline", "30",
        ])
        assert code == 0
        assert "distributed over 2 workers" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_run_with_metrics_and_backend(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "events.jsonl"
        code = main([
            "run", "--model", "white_matter", "--photons", "200",
            "--seed", "1", "--task-size", "100",
            "--backend", "thread", "--workers", "2",
            "--metrics", str(metrics),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry events written" in out
        assert "photons.traced" in out  # final metrics block
        events = [json.loads(line) for line in metrics.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "metrics"
        times = [e["t"] for e in events]
        assert times == sorted(times)

    def test_run_progress_flag(self, capsys):
        code = main([
            "run", "--model", "white_matter", "--photons", "200",
            "--seed", "1", "--task-size", "100", "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "2/2" in captured.err  # progress bar on stderr

    def test_save_embeds_provenance(self, tmp_path):
        out_file = tmp_path / "tally.npz"
        code = main([
            "run", "--model", "white_matter", "--photons", "200",
            "--seed", "6", "--save", str(out_file),
        ])
        assert code == 0
        from repro.io import load_tally

        tally = load_tally(out_file)
        assert tally.provenance["model"] == "white_matter"
        assert tally.provenance["seed"] == 6
        assert tally.provenance["n_photons"] == 200

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])


class TestServiceCli:
    def test_run_with_no_retain_task_tallies(self, capsys):
        code = main([
            "run", "--model", "white_matter", "--photons", "400",
            "--workers", "2", "--backend", "thread", "--task-size", "200",
            "--no-retain-task-tallies",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "diffuse_reflectance" in out

    def test_save_embeds_request_fingerprint(self, tmp_path):
        out_file = tmp_path / "tally.npz"
        code = main([
            "run", "--model", "white_matter", "--photons", "200",
            "--seed", "6", "--save", str(out_file),
        ])
        assert code == 0
        from repro.api import RunRequest
        from repro.io import load_tally
        from repro.service import request_fingerprint

        expected = request_fingerprint(
            RunRequest(model="white_matter", n_photons=200, seed=6, task_size=10_000)
        )
        tally = load_tally(out_file, expected_fingerprint=expected)
        assert tally.provenance["fingerprint"] == expected
        with pytest.raises(ValueError, match="different request"):
            load_tally(out_file, expected_fingerprint="0" * 64)

    def test_serve_http_runs_and_exits(self, tmp_path, capsys):
        code = main([
            "serve-http", "--port", "0", "--store", str(tmp_path / "store"),
            "--timeout", "0.2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulation service listening on http://127.0.0.1:" in out
        assert "result store" in out
