"""Tests for the photon sources."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.sources import GaussianBeam, IsotropicPoint, PencilBeam, UniformDisc

ALL_SOURCES = [
    PencilBeam(),
    PencilBeam(1.0, -2.0, tilt=0.3),
    GaussianBeam(sigma=1.5),
    GaussianBeam(sigma=1.0, truncate=2.0),
    UniformDisc(radius=2.0),
    IsotropicPoint(z0=3.0),
    IsotropicPoint(z0=0.5, hemisphere="down"),
]


@pytest.mark.parametrize("source", ALL_SOURCES, ids=lambda s: repr(s))
class TestSourceContract:
    def test_shapes(self, source, rng):
        pos, dirs = source.sample(100, rng)
        assert pos.shape == (100, 3)
        assert dirs.shape == (100, 3)

    def test_unit_directions(self, source, rng):
        _, dirs = source.sample(1000, rng)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0, atol=1e-12)

    def test_zero_photons(self, source, rng):
        pos, dirs = source.sample(0, rng)
        assert pos.shape == (0, 3)

    def test_negative_rejected(self, source, rng):
        with pytest.raises(ValueError):
            source.sample(-1, rng)

    def test_deterministic_given_rng(self, source):
        a = source.sample(50, np.random.default_rng(7))
        b = source.sample(50, np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_picklable(self, source, rng):
        clone = pickle.loads(pickle.dumps(source))
        a = clone.sample(10, np.random.default_rng(3))
        b = source.sample(10, np.random.default_rng(3))
        np.testing.assert_array_equal(a[0], b[0])


class TestPencilBeam:
    def test_delta_position(self, rng):
        pos, dirs = PencilBeam(1.0, 2.0).sample(10, rng)
        np.testing.assert_array_equal(pos, np.tile([1.0, 2.0, 0.0], (10, 1)))
        np.testing.assert_array_equal(dirs[:, 2], 1.0)

    def test_tilt(self, rng):
        _, dirs = PencilBeam(tilt=0.5).sample(5, rng)
        assert dirs[0, 0] == pytest.approx(np.sin(0.5))
        assert dirs[0, 2] == pytest.approx(np.cos(0.5))

    def test_invalid_tilt(self):
        with pytest.raises(ValueError, match="tilt"):
            PencilBeam(tilt=2.0)


class TestGaussianBeam:
    def test_footprint_std(self, rng):
        pos, _ = GaussianBeam(sigma=2.0).sample(200_000, rng)
        assert pos[:, 0].std() == pytest.approx(2.0, rel=0.02)
        assert pos[:, 1].std() == pytest.approx(2.0, rel=0.02)
        assert pos[:, 0].mean() == pytest.approx(0.0, abs=0.02)

    def test_centre_offset(self, rng):
        pos, _ = GaussianBeam(sigma=1.0, x0=5.0, y0=-3.0).sample(100_000, rng)
        assert pos[:, 0].mean() == pytest.approx(5.0, abs=0.02)
        assert pos[:, 1].mean() == pytest.approx(-3.0, abs=0.02)

    def test_truncation_hard_edge(self, rng):
        pos, _ = GaussianBeam(sigma=2.0, truncate=1.5).sample(50_000, rng)
        r = np.hypot(pos[:, 0], pos[:, 1])
        assert (r <= 1.5 + 1e-12).all()

    def test_launch_on_surface(self, rng):
        pos, dirs = GaussianBeam(sigma=1.0).sample(100, rng)
        np.testing.assert_array_equal(pos[:, 2], 0.0)
        np.testing.assert_array_equal(dirs[:, 2], 1.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            GaussianBeam(sigma=0.0)


class TestUniformDisc:
    def test_inside_radius(self, rng):
        pos, _ = UniformDisc(radius=3.0).sample(50_000, rng)
        r = np.hypot(pos[:, 0], pos[:, 1])
        assert (r <= 3.0).all()

    def test_uniform_areal_density(self, rng):
        # For uniform density, mean(r^2) = R^2 / 2.
        pos, _ = UniformDisc(radius=2.0).sample(400_000, rng)
        r2 = pos[:, 0] ** 2 + pos[:, 1] ** 2
        assert r2.mean() == pytest.approx(2.0, rel=0.01)

    def test_invalid_radius(self):
        with pytest.raises(ValueError, match="radius"):
            UniformDisc(radius=-1.0)


class TestIsotropicPoint:
    def test_position(self, rng):
        pos, _ = IsotropicPoint(z0=2.5, x0=1.0).sample(10, rng)
        np.testing.assert_array_equal(pos, np.tile([1.0, 0.0, 2.5], (10, 1)))

    def test_full_sphere_mean_direction_zero(self, rng):
        _, dirs = IsotropicPoint(z0=1.0).sample(400_000, rng)
        np.testing.assert_allclose(dirs.mean(axis=0), 0.0, atol=0.01)

    def test_uniform_cos_theta(self, rng):
        _, dirs = IsotropicPoint(z0=1.0).sample(200_000, rng)
        # Uniform on [-1, 1]: variance 1/3.
        assert dirs[:, 2].var() == pytest.approx(1.0 / 3.0, rel=0.02)

    def test_down_hemisphere(self, rng):
        _, dirs = IsotropicPoint(z0=1.0, hemisphere="down").sample(10_000, rng)
        assert (dirs[:, 2] >= 0).all()

    def test_up_hemisphere(self, rng):
        _, dirs = IsotropicPoint(z0=1.0, hemisphere="up").sample(10_000, rng)
        assert (dirs[:, 2] <= 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError, match="z0"):
            IsotropicPoint(z0=-1.0)
        with pytest.raises(ValueError, match="hemisphere"):
            IsotropicPoint(z0=1.0, hemisphere="sideways")
