"""Tests for multi-experiment campaigns."""

from __future__ import annotations

import pytest

from repro.core import SimulationConfig
from repro.detect import AnnularDetector
from repro.distributed import Campaign, DataManager, Experiment, SerialBackend
from repro.sources import PencilBeam


@pytest.fixture
def experiments(fast_stack):
    base = SimulationConfig(stack=fast_stack, source=PencilBeam())
    return [
        Experiment("near", base.with_(detector=AnnularDetector(0.5, 1.5)), 300),
        Experiment("far", base.with_(detector=AnnularDetector(2.0, 3.0)), 300),
    ]


class TestExperiment:
    def test_validation(self, fast_config):
        with pytest.raises(ValueError, match="name"):
            Experiment("", fast_config, 10)
        with pytest.raises(ValueError, match="n_photons"):
            Experiment("x", fast_config, -1)

    def test_effective_seed_stable(self, fast_config):
        e = Experiment("probe", fast_config, 10)
        assert e.effective_seed(0) == e.effective_seed(0)
        assert e.effective_seed(0) != e.effective_seed(1)

    def test_explicit_seed_wins(self, fast_config):
        e = Experiment("probe", fast_config, 10, seed=77)
        assert e.effective_seed(0) == 77


class TestCampaign:
    def test_runs_all_experiments(self, experiments):
        campaign = Campaign(experiments, task_size=100)
        reports = campaign.run(SerialBackend())
        assert set(reports) == {"near", "far"}
        assert all(r.tally.n_launched == 300 for r in reports.values())

    def test_duplicate_names_rejected(self, experiments):
        with pytest.raises(ValueError, match="unique"):
            Campaign([experiments[0], experiments[0]])

    def test_experiments_independent_of_each_other(self, experiments, fast_stack):
        """Removing one experiment must not change another's result."""
        full = Campaign(experiments, task_size=100).run(SerialBackend())
        only_far = Campaign([experiments[1]], task_size=100).run(SerialBackend())
        assert (
            full["far"].tally.summary() == only_far["far"].tally.summary()
        )

    def test_matches_standalone_datamanager(self, experiments):
        campaign = Campaign(experiments, seed=5, task_size=100)
        reports = campaign.run(SerialBackend())
        e = experiments[0]
        standalone = DataManager(
            e.config, e.n_photons, seed=e.effective_seed(5), task_size=100
        ).run(SerialBackend())
        assert reports["near"].tally.summary() == standalone.tally.summary()

    def test_near_detector_sees_more_light(self, experiments):
        reports = Campaign(experiments, task_size=100).run(SerialBackend())
        assert (
            reports["near"].tally.detected_weight
            > reports["far"].tally.detected_weight
        )

    def test_progress_callback(self, experiments):
        seen = []
        campaign = Campaign(
            experiments, task_size=150,
            progress=lambda name, done, total: seen.append((name, done, total)),
        )
        campaign.run(SerialBackend())
        assert ("near", 2, 2) in seen
        assert ("far", 1, 2) in seen

    def test_summary_rows(self, experiments):
        campaign = Campaign(experiments, task_size=100)
        campaign.run(SerialBackend())
        rows = campaign.summary_rows()
        assert len(rows) == 2
        assert rows[0][0] == "near"
