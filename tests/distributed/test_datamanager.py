"""Tests for the DataManager, backends and fault handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Simulation, SimulationConfig
from repro.distributed import (
    DataManager,
    FaultInjector,
    SerialBackend,
    TaskFailedError,
    ThreadBackend,
    WorkerCrash,
    execute_task,
)
from repro.distributed.protocol import TaskSpec
from repro.sources import PencilBeam


@pytest.fixture
def small_manager(fast_config):
    return DataManager(fast_config, n_photons=500, seed=3, task_size=100)


def tallies_equal(a, b) -> bool:
    keys = a.summary().keys()
    sa, sb = a.summary(), b.summary()
    return all(
        (np.isnan(sa[k]) and np.isnan(sb[k])) or sa[k] == sb[k] for k in keys
    )


class TestTaskDecomposition:
    def test_task_list(self, fast_config):
        manager = DataManager(fast_config, n_photons=250, task_size=100)
        tasks = manager.tasks()
        assert [t.n_photons for t in tasks] == [100, 100, 50]
        assert [t.task_index for t in tasks] == [0, 1, 2]

    def test_validation(self, fast_config):
        with pytest.raises(ValueError, match="n_photons"):
            DataManager(fast_config, n_photons=-1)
        with pytest.raises(ValueError, match="task_size"):
            DataManager(fast_config, n_photons=1, task_size=0)
        with pytest.raises(ValueError, match="max_retries"):
            DataManager(fast_config, n_photons=1, max_retries=-1)


class TestSerialRun:
    def test_merged_tally_complete(self, small_manager):
        report = small_manager.run(SerialBackend())
        assert report.tally.n_launched == 500
        assert report.n_tasks == 5
        assert report.tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_zero_photons(self, fast_config):
        manager = DataManager(fast_config, n_photons=0)
        report = manager.run(SerialBackend())
        assert report.tally.n_launched == 0
        assert report.n_tasks == 0

    def test_zero_photons_report_well_formed(self, fast_config):
        """A 0-photon run with telemetry still yields a complete report."""
        from repro.observe import Telemetry

        tel = Telemetry.in_memory()
        manager = DataManager(fast_config, n_photons=0, telemetry=tel)
        report = manager.run(SerialBackend())
        assert report.task_results == []
        assert report.retries == 0
        assert report.speculative_duplicates == 0
        assert report.per_worker() == {}
        assert report.wall_seconds >= 0.0
        assert report.metrics is not None
        assert report.tally.energy_balance != report.tally.energy_balance  # NaN

    def test_sub_task_size_run_is_single_task(self, fast_config):
        """n_photons < task_size collapses to one task, bitwise == serial."""
        manager = DataManager(fast_config, n_photons=30, seed=4, task_size=100)
        report = manager.run(SerialBackend())
        assert report.n_tasks == 1
        assert report.task_results[0].photons == 30
        serial = Simulation(fast_config).run(30, seed=4, task_size=100)
        assert report.tally == serial

    def test_matches_simulation_facade_exactly(self, fast_config):
        """Distributed == serial: the headline reproducibility guarantee."""
        manager = DataManager(fast_config, n_photons=400, seed=9, task_size=150)
        distributed = manager.run(SerialBackend()).tally
        serial = Simulation(fast_config).run(400, seed=9, task_size=150)
        assert tallies_equal(distributed, serial)

    def test_progress_callback(self, small_manager):
        seen = []
        small_manager.progress = lambda done, total: seen.append((done, total))
        small_manager.run(SerialBackend())
        assert seen == [(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]


class TestThreadRun:
    def test_result_independent_of_worker_count(self, fast_config):
        manager = DataManager(fast_config, n_photons=300, seed=5, task_size=60)
        with ThreadBackend(1) as one, ThreadBackend(4) as four:
            t1 = manager.run(one).tally
            t4 = manager.run(four).tally
        assert tallies_equal(t1, t4)

    def test_worker_utilisation_reported(self, fast_config):
        manager = DataManager(fast_config, n_photons=200, seed=1, task_size=50)
        with ThreadBackend(2) as backend:
            report = manager.run(backend)
        per_worker = report.per_worker()
        assert sum(int(v["tasks"]) for v in per_worker.values()) == 4
        assert report.busy_seconds > 0


class TestFaultHandling:
    def test_transient_failures_retried(self, fast_config):
        manager = DataManager(
            fast_config,
            n_photons=300,
            seed=2,
            task_size=100,
            task_runner=FaultInjector(fail_tasks_once=frozenset({1})),
        )
        report = manager.run(SerialBackend())
        assert report.retries == 1
        assert report.tally.n_launched == 300

    def test_retried_result_identical_to_clean_run(self, fast_config):
        clean = DataManager(fast_config, n_photons=300, seed=2, task_size=100)
        faulty = DataManager(
            fast_config,
            n_photons=300,
            seed=2,
            task_size=100,
            task_runner=FaultInjector(fail_tasks_once=frozenset({0, 2})),
        )
        assert tallies_equal(
            clean.run(SerialBackend()).tally, faulty.run(SerialBackend()).tally
        )

    def test_permanent_failure_raises(self, fast_config):
        manager = DataManager(
            fast_config,
            n_photons=200,
            seed=0,
            task_size=100,
            max_retries=2,
            task_runner=FaultInjector(fail_tasks_always=frozenset({1})),
        )
        with pytest.raises(TaskFailedError) as exc_info:
            manager.run(SerialBackend())
        assert exc_info.value.task.task_index == 1
        assert exc_info.value.attempts == 3  # initial + 2 retries
        assert isinstance(exc_info.value.last_error, WorkerCrash)

    def test_stochastic_faults_eventually_complete(self, fast_config):
        manager = DataManager(
            fast_config,
            n_photons=400,
            seed=4,
            task_size=50,
            max_retries=10,
            task_runner=FaultInjector(fail_probability=0.3, seed=1),
        )
        report = manager.run(SerialBackend())
        assert report.tally.n_launched == 400
        assert report.retries > 0  # 8 tasks at 30% failure: ~1 - 0.7^8 = 94%


class TestFaultInjector:
    def test_validation(self):
        with pytest.raises(ValueError, match="fail_probability"):
            FaultInjector(fail_probability=1.0)

    def test_clean_injector_executes(self, fast_config):
        result = FaultInjector()(fast_config, TaskSpec(0, 50, 0))
        assert result.tally.n_launched == 50

    def test_once_fails_only_once(self, fast_config):
        injector = FaultInjector(fail_tasks_once=frozenset({0}))
        with pytest.raises(WorkerCrash):
            injector(fast_config, TaskSpec(0, 10, 0))
        result = injector(fast_config, TaskSpec(0, 10, 0), attempt=2)
        assert result.attempt == 2


class TestExecuteTask:
    def test_result_metadata(self, fast_config):
        result = execute_task(fast_config, TaskSpec(2, 100, 7))
        assert result.task_index == 2
        assert result.tally.n_launched == 100
        assert result.elapsed_seconds > 0
        assert "pid-" in result.worker_id

    def test_deterministic_per_task(self, fast_config):
        a = execute_task(fast_config, TaskSpec(1, 100, 3))
        b = execute_task(fast_config, TaskSpec(1, 100, 3))
        assert tallies_equal(a.tally, b.tally)


class TestPositionalDeprecation:
    """Direct positional construction beyond (config, n_photons) is deprecated."""

    def test_keyword_construction_is_silent(self, fast_config, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DataManager(fast_config, 100, seed=1, task_size=50)

    def test_positional_tail_warns_and_still_works(self, fast_config):
        import warnings

        with pytest.warns(DeprecationWarning, match="positional"):
            manager = DataManager(fast_config, 100, 7, 50)
        assert manager.seed == 7
        assert manager.task_size == 50
        report = manager.run(SerialBackend())
        assert report.tally.n_launched == 100
