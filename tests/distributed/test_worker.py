"""Tests for the client-side Algorithm (worker)."""

from __future__ import annotations

import pytest

from repro.distributed import TaskSpec, execute_task, worker_identity


class TestWorkerIdentity:
    def test_contains_pid_and_thread(self):
        identity = worker_identity()
        assert identity.startswith("pid-")
        assert "/" in identity

    def test_stable_within_thread(self):
        assert worker_identity() == worker_identity()


class TestExecuteTask:
    def test_attempt_passthrough(self, fast_config):
        result = execute_task(fast_config, TaskSpec(0, 50, 0), attempt=3)
        assert result.attempt == 3

    def test_kernel_selection(self, fast_config):
        vector = execute_task(fast_config, TaskSpec(0, 60, 5, kernel="vector"))
        scalar = execute_task(fast_config, TaskSpec(0, 60, 5, kernel="scalar"))
        assert vector.tally.n_launched == scalar.tally.n_launched == 60
        # Same stream, different consumption order -> different realisation
        # but identical configuration and photon count.
        assert vector.tally.energy_balance == pytest.approx(1.0, abs=1e-9)
        assert scalar.tally.energy_balance == pytest.approx(1.0, abs=1e-9)

    def test_stream_keyed_by_seed_and_index(self, fast_config):
        a = execute_task(fast_config, TaskSpec(0, 100, 1))
        b = execute_task(fast_config, TaskSpec(1, 100, 1))
        c = execute_task(fast_config, TaskSpec(0, 100, 2))
        assert a.tally.diffuse_reflectance != b.tally.diffuse_reflectance
        assert a.tally.diffuse_reflectance != c.tally.diffuse_reflectance

    def test_elapsed_recorded(self, fast_config):
        result = execute_task(fast_config, TaskSpec(0, 100, 0))
        assert result.elapsed_seconds > 0
