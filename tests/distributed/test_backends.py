"""Direct tests of the execution backends."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.distributed import MultiprocessingBackend, SerialBackend, ThreadBackend


def square(x):
    return x * x


def boom():
    raise RuntimeError("boom")


def pid_and_thread():
    return os.getpid(), threading.current_thread().name


class TestSerialBackend:
    def test_result(self):
        assert SerialBackend().submit(square, 7).result() == 49

    def test_exception_captured(self):
        future = SerialBackend().submit(boom)
        assert isinstance(future.exception(), RuntimeError)

    def test_runs_inline(self):
        pid, thread = SerialBackend().submit(pid_and_thread).result()
        assert pid == os.getpid()
        assert thread == threading.current_thread().name

    def test_max_workers(self):
        assert SerialBackend().max_workers == 1


class TestThreadBackend:
    def test_result_and_shutdown(self):
        with ThreadBackend(2) as backend:
            assert backend.max_workers == 2
            assert backend.submit(square, 3).result() == 9

    def test_concurrent_execution(self):
        barrier = threading.Barrier(2, timeout=10)

        def rendezvous():
            barrier.wait()  # deadlocks unless two tasks run simultaneously
            return True

        with ThreadBackend(2) as backend:
            futures = [backend.submit(rendezvous) for _ in range(2)]
            assert all(f.result(timeout=15) for f in futures)

    def test_same_process_other_thread(self):
        with ThreadBackend(1) as backend:
            pid, thread = backend.submit(pid_and_thread).result()
        assert pid == os.getpid()
        assert thread != threading.current_thread().name

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            ThreadBackend(0)


class TestMultiprocessingBackend:
    def test_result(self):
        with MultiprocessingBackend(1) as backend:
            assert backend.submit(square, 5).result(timeout=60) == 25

    def test_other_process(self):
        with MultiprocessingBackend(1) as backend:
            pid, _thread = backend.submit(pid_and_thread).result(timeout=60)
        assert pid != os.getpid()

    def test_exception_propagates(self):
        with MultiprocessingBackend(1) as backend:
            future = backend.submit(boom)
            assert isinstance(future.exception(timeout=60), RuntimeError)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            MultiprocessingBackend(-1)


class TestMakeBackend:
    def test_canonical_names(self):
        from repro.distributed import make_backend

        assert isinstance(make_backend("serial"), SerialBackend)
        with make_backend("thread", 2) as backend:
            assert isinstance(backend, ThreadBackend)
            assert backend.max_workers == 2
        with make_backend("process", 2) as backend:
            assert isinstance(backend, MultiprocessingBackend)

    def test_aliases(self):
        from repro.distributed import make_backend

        assert isinstance(make_backend("multiprocessing", 1), MultiprocessingBackend)
        assert isinstance(make_backend("threads", 1), ThreadBackend)

    def test_unknown_name_rejected(self):
        from repro.distributed import make_backend

        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_bad_worker_count_rejected(self):
        from repro.distributed import make_backend

        with pytest.raises(ValueError, match="n_workers"):
            make_backend("thread", 0)

    def test_serial_ignores_worker_count(self):
        from repro.distributed import make_backend

        assert make_backend("serial", 8).max_workers == 1

    def test_in_process_flags(self):
        assert SerialBackend().in_process is True
        assert MultiprocessingBackend.in_process is False
