"""Span dispatch determinism (the PR 5 acceptance tests).

Hierarchical reduction must be invisible in the bits: grouping tasks into
tree-aligned spans folded worker-side — on threads, process pools or the
TCP wire, under shuffled completion, speculative duplicates and checkpoint
resume — yields the identical merged tally a serial run produces.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core import Simulation
from repro.distributed import (
    DataManager,
    FaultInjector,
    MultiprocessingBackend,
    NetworkServer,
    SerialBackend,
    SpanSpec,
    TaskResult,
    TaskSpec,
    ThreadBackend,
    make_units,
    run_network_client,
    validate_result,
)
from repro.distributed.protocol import ResultValidationError
from repro.distributed.worker import execute_span, execute_task
from repro.observe import Telemetry


def assert_bit_identical(a, b) -> None:
    assert a == b  # Tally.__eq__ is bitwise-strict
    assert pickle.dumps(a) == pickle.dumps(b)


@pytest.fixture
def serial_tally(fast_config):
    return Simulation(fast_config).run(600, seed=11, task_size=75)


def _tasks(n=8, photons=75, seed=11):
    return [TaskSpec(task_index=i, n_photons=photons, seed=seed) for i in range(n)]


class TestSpanSpec:
    def test_make_units_none_keeps_tasks(self):
        tasks = _tasks()
        assert make_units(tasks, None) is tasks

    def test_make_units_groups_aligned_spans(self):
        units = make_units(_tasks(), 4)
        assert [u.span for u in units] == [(0, 4), (4, 8)]
        assert [u.task_index for u in units] == [0, 1]
        assert units[0].n_photons == 300

    def test_non_contiguous_tasks_rejected(self):
        t = _tasks()
        with pytest.raises(ValueError, match="contiguous"):
            SpanSpec(index=0, n_total_tasks=8, tasks=(t[0], t[2]))

    def test_misaligned_span_rejected(self):
        t = _tasks()
        with pytest.raises(ValueError, match="aligned"):
            SpanSpec(index=0, n_total_tasks=8, tasks=tuple(t[1:3]))

    def test_result_span_mismatch_rejected(self, fast_config):
        unit = make_units(_tasks(n=4, photons=20), 2)[0]
        result = execute_span(fast_config, unit)
        validate_result(result, unit)  # the genuine pairing passes
        forged = TaskResult(
            task_index=unit.task_index,
            tally=result.tally,
            worker_id="w",
            elapsed_seconds=0.0,
            span=(0, 4),
        )
        with pytest.raises(ResultValidationError, match="span"):
            validate_result(forged, unit)


class TestSpanDispatchBitIdentity:
    def test_serial_backend(self, fast_config, serial_tally):
        manager = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=4
        )
        report = manager.run(SerialBackend())
        assert len(report.task_results) == 2  # units, not tasks
        assert all(r.span is not None for r in report.task_results)
        assert_bit_identical(report.tally, serial_tally)

    def test_threads_with_speculative_duplicates(self, fast_config, serial_tally):
        """Straggling spans get speculated; duplicates may not change a bit."""
        manager = DataManager(
            fast_config,
            n_photons=600,
            seed=11,
            task_size=75,
            span_size=2,
            task_runner=FaultInjector(slow_tasks_once={1: 0.6, 5: 0.6}),
            task_deadline=0.05,
            max_speculative=1,
        )
        with ThreadBackend(4) as backend:
            report = manager.run(backend)
        assert report.speculative_duplicates >= 1
        assert_bit_identical(report.tally, serial_tally)

    def test_span_retry_after_leaf_failure(self, fast_config, serial_tally):
        """A failing leaf fails its whole span attempt; the retry heals it."""
        manager = DataManager(
            fast_config,
            n_photons=600,
            seed=11,
            task_size=75,
            span_size=4,
            task_runner=FaultInjector(fail_tasks_once={2}),
        )
        with ThreadBackend(3) as backend:
            report = manager.run(backend)
        assert report.retries >= 1
        assert_bit_identical(report.tally, serial_tally)

    def test_process_pool(self, fast_config, serial_tally):
        """Spans + the zero-copy codec across a real process boundary."""
        manager = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=4,
            retain_task_tallies=False,
        )
        with MultiprocessingBackend(2) as backend:
            report = manager.run(backend)
        assert_bit_identical(report.tally, serial_tally)
        assert all(r.tally is None for r in report.task_results)

    def test_tcp_clients(self, fast_config, serial_tally):
        tel = Telemetry.in_memory()
        server = NetworkServer(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=4,
            telemetry=tel,
        ).start()
        clients = [
            threading.Thread(
                target=run_network_client, args=("127.0.0.1", server.port)
            )
            for _ in range(2)
        ]
        for t in clients:
            t.start()
        report = server.wait(timeout=120)
        for t in clients:
            t.join()
        assert_bit_identical(report.tally, serial_tally)
        counters = {c["name"]: c["value"] for c in report.metrics["counters"]}
        # 2 spans of 4 tasks: 3 merges each were delegated to the clients.
        assert counters["reduce.worker_folds"] == 6
        assert counters["codec.bytes"] > 0

    def test_checkpoint_resume_with_spans(self, fast_config, serial_tally, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        first = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=2,
            checkpoint=ckpt_dir,
            task_runner=FaultInjector(fail_tasks_always=frozenset({5})),
            max_retries=0,
        )
        with pytest.raises(Exception):
            first.run(SerialBackend())

        resumed = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=2,
            checkpoint=ckpt_dir,
        ).run(SerialBackend())
        assert_bit_identical(resumed.tally, serial_tally)

    def test_checkpoint_span_size_enters_run_key(self, fast_config, tmp_path):
        """A span-dispatched checkpoint is keyed by unit, so a different
        span_size must be refused rather than silently misinterpreted."""
        ckpt_dir = tmp_path / "ckpt"
        DataManager(
            fast_config, n_photons=300, seed=1, task_size=75, span_size=2,
            checkpoint=ckpt_dir,
        ).run(SerialBackend())
        from repro.distributed import CheckpointError

        with pytest.raises(CheckpointError, match="different run"):
            DataManager(
                fast_config, n_photons=300, seed=1, task_size=75, span_size=4,
                checkpoint=ckpt_dir,
            ).run(SerialBackend())


class TestWorkerFoldTelemetry:
    def test_worker_folds_counted(self, fast_config):
        tel = Telemetry.in_memory()
        manager = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, span_size=4,
            telemetry=tel,
        )
        manager.run(SerialBackend())
        counters = {c["name"]: c["value"] for c in tel.snapshot()["counters"]}
        assert counters["reduce.worker_folds"] == 6

    def test_per_task_dispatch_reports_no_folds(self, fast_config):
        tel = Telemetry.in_memory()
        DataManager(
            fast_config, n_photons=600, seed=11, task_size=75, telemetry=tel,
        ).run(SerialBackend())
        counters = {c["name"]: c["value"] for c in tel.snapshot()["counters"]}
        assert "reduce.worker_folds" not in counters


class TestExecuteSpan:
    def test_span_result_shape(self, fast_config):
        unit = make_units(_tasks(n=4, photons=20), 4)[0]
        result = execute_span(fast_config, unit)
        assert result.task_index == 0
        assert result.span == (0, 4)
        assert result.tally.n_launched == 80

    def test_fault_injector_runs_per_leaf(self, fast_config):
        """The injector targets *task* indices even under span dispatch."""
        unit = make_units(_tasks(n=4, photons=20), 4)[0]
        injector = FaultInjector(fail_tasks_once={2})
        with pytest.raises(Exception):
            execute_span(fast_config, unit, runner=injector)
        # Second attempt: the one-shot fault is spent, the span completes.
        result = execute_span(fast_config, unit, attempt=2, runner=injector)
        baseline = execute_span(fast_config, unit, runner=execute_task)
        assert_bit_identical(result.tally, baseline.tally)
