"""Tests for per-worker health tracking and result validation."""

from __future__ import annotations

import math

import pytest

from repro.distributed import (
    ResultValidationError,
    WorkerHealth,
    WorkerStats,
    execute_task,
    validate_result,
)
from repro.distributed.protocol import TaskSpec


class TestWorkerStats:
    def test_mean_latency(self):
        stats = WorkerStats(worker_id="w", tasks_completed=4, busy_seconds=2.0)
        assert stats.mean_latency == pytest.approx(0.5)

    def test_mean_latency_without_tasks_is_nan(self):
        assert math.isnan(WorkerStats(worker_id="w").mean_latency)

    def test_dict_round_trip(self):
        stats = WorkerStats(
            worker_id="w",
            tasks_completed=3,
            failures=2,
            consecutive_failures=1,
            busy_seconds=1.5,
            blacklisted=True,
        )
        assert WorkerStats.from_dict(stats.as_dict()) == stats


class TestWorkerHealth:
    def test_success_accumulates(self):
        health = WorkerHealth()
        health.record_success("w", 0.5)
        health.record_success("w", 1.5)
        stats = health.snapshot()["w"]
        assert stats.tasks_completed == 2
        assert stats.busy_seconds == pytest.approx(2.0)
        assert stats.failures == 0
        assert not stats.blacklisted

    def test_blacklist_after_consecutive_failures(self):
        health = WorkerHealth(blacklist_after=3)
        assert health.record_failure("w") is False
        assert health.record_failure("w") is False
        assert health.record_failure("w") is True
        assert health.is_blacklisted("w")
        assert health.snapshot()["w"].failures == 3

    def test_success_resets_consecutive_count(self):
        health = WorkerHealth(blacklist_after=2)
        health.record_failure("w")
        health.record_success("w", 0.1)
        health.record_failure("w")
        assert not health.is_blacklisted("w")
        # Total failures still accumulate even though the streak reset.
        assert health.snapshot()["w"].failures == 2

    def test_blacklisting_disabled(self):
        health = WorkerHealth(blacklist_after=None)
        for _ in range(10):
            health.record_failure("w")
        assert not health.is_blacklisted("w")

    def test_workers_independent(self):
        health = WorkerHealth(blacklist_after=1)
        health.record_failure("bad")
        assert health.is_blacklisted("bad")
        assert not health.is_blacklisted("good")

    def test_snapshot_is_a_copy(self):
        health = WorkerHealth()
        health.record_success("w", 0.1)
        snap = health.snapshot()
        snap["w"].tasks_completed = 99
        assert health.snapshot()["w"].tasks_completed == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="blacklist_after"):
            WorkerHealth(blacklist_after=0)


class TestValidateResult:
    def test_clean_result_passes(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        validate_result(result, task)  # must not raise

    def test_task_index_mismatch(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        with pytest.raises(ResultValidationError, match="task"):
            validate_result(result, TaskSpec(1, 50, 0))

    def test_photon_count_mismatch(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        result.tally.n_launched += 1
        with pytest.raises(ResultValidationError, match="launched"):
            validate_result(result, task)

    def test_nan_weight_rejected(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        result.tally.diffuse_reflectance_weight = float("nan")
        with pytest.raises(ResultValidationError):
            validate_result(result, task)

    def test_negative_tally_rejected(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        result.tally.absorbed_by_layer[0] = -1.0
        with pytest.raises(ResultValidationError, match="negative"):
            validate_result(result, task)

    def test_negative_roulette_weight_is_legitimate(self, fast_config):
        task = TaskSpec(0, 50, 0)
        result = execute_task(fast_config, task)
        result.tally.roulette_net_weight = -0.25
        validate_result(result, task)  # survivors gain weight; net can be < 0
