"""Tests for the TCP network mode of the distributed platform."""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.distributed import (
    DataManager,
    NetworkServer,
    ProtocolError,
    SerialBackend,
    recv_message,
    run_network_client,
    send_message,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


@pytest.fixture
def net_config():
    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    return SimulationConfig(stack=LayerStack.homogeneous(props), source=PencilBeam())


def run_clients(port: int, count: int, **kwargs) -> list[threading.Thread]:
    threads = [
        threading.Thread(
            target=run_network_client,
            args=("127.0.0.1", port),
            kwargs={"worker_name": f"client-{i}", **kwargs},
            daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return threads


class TestFraming:
    def test_round_trip(self):
        server, client = socket.socketpair()
        with server, client:
            send_message(client, {"hello": [1, 2, 3]})
            assert recv_message(server) == {"hello": [1, 2, 3]}

    def test_large_payload(self):
        server, client = socket.socketpair()
        payload = np.arange(200_000)
        with server, client:
            sender = threading.Thread(target=send_message, args=(client, payload))
            sender.start()
            received = recv_message(server)
            sender.join()
        np.testing.assert_array_equal(received, payload)

    def test_closed_peer_raises(self):
        server, client = socket.socketpair()
        client.close()
        with server:
            with pytest.raises(ConnectionError):
                recv_message(server)

    def test_truncated_length_prefix(self):
        server, client = socket.socketpair()
        with server:
            client.sendall(b"\x00\x00\x00")  # 3 of the 8 header bytes
            client.close()
            with pytest.raises(ConnectionError):
                recv_message(server)

    def test_corrupt_length_prefix_rejected(self):
        """A garbage prefix must not make the receiver allocate gigabytes."""
        server, client = socket.socketpair()
        with server, client:
            client.sendall(struct.pack(">Q", 1 << 60))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(server)

    def test_oversized_message_rejected(self):
        server, client = socket.socketpair()
        with server, client:
            send_message(client, list(range(100)))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(server, max_size=16)

    def test_garbage_payload_rejected(self):
        payload = b"definitely not a pickle"
        server, client = socket.socketpair()
        with server, client:
            client.sendall(struct.pack(">Q", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(server)

    def test_protocol_error_is_connection_error(self):
        # Handlers catch ConnectionError to drop a bad client; ProtocolError
        # must ride that path.
        assert issubclass(ProtocolError, ConnectionError)


class TestCompression:
    def test_round_trip_shrinks_wire_bytes(self):
        payload = {"grid": np.zeros(50_000)}  # highly compressible
        saved: list[int] = []
        server, client = socket.socketpair()
        with server, client:
            sender = threading.Thread(
                target=send_message,
                args=(client, payload),
                kwargs={"compress": True, "saved_cb": saved.append},
            )
            sender.start()
            received = recv_message(server)
            sender.join()
        np.testing.assert_array_equal(received["grid"], payload["grid"])
        assert saved and saved[0] > 0  # net.bytes_saved accounting hook

    def test_small_frames_skip_compression(self):
        saved: list[int] = []
        server, client = socket.socketpair()
        with server, client:
            send_message(client, {"type": "next"}, compress=True,
                         saved_cb=saved.append)
            header = struct.unpack(">Q", server.recv(8, socket.MSG_PEEK))[0]
            assert not header & (1 << 63)  # flag bit clear: plain frame
            assert recv_message(server) == {"type": "next"}
        assert saved == []

    def test_off_by_default(self):
        server, client = socket.socketpair()
        with server, client:
            send_message(client, list(range(2000)))  # > _COMPRESS_MIN pickled
            header = struct.unpack(">Q", server.recv(8, socket.MSG_PEEK))[0]
            assert not header & (1 << 63)
            assert recv_message(server) == list(range(2000))

    def test_corrupt_compressed_payload_rejected(self):
        garbage = b"this is not a zlib stream at all"
        server, client = socket.socketpair()
        with server, client:
            header = struct.pack(">Q", (1 << 63) | len(garbage))
            client.sendall(header + garbage)
            with pytest.raises(ProtocolError, match="compressed"):
                recv_message(server)

    def test_zlib_bomb_capped(self):
        """A frame must not decompress past max_size (zlib-bomb guard)."""
        import pickle
        import zlib

        bomb = zlib.compress(pickle.dumps(bytes(1 << 20)))
        server, client = socket.socketpair()
        with server, client:
            client.sendall(struct.pack(">Q", (1 << 63) | len(bomb)) + bomb)
            with pytest.raises(ProtocolError, match="cap"):
                recv_message(server, max_size=4096)

    def test_end_to_end_negotiated_compression(self, net_config):
        from repro.observe import Telemetry

        tel = Telemetry.in_memory()
        server = NetworkServer(
            net_config, n_photons=400, seed=7, task_size=100,
            compress=True, telemetry=tel,
        ).start()
        threads = run_clients(server.port, 2)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        serial = DataManager(net_config, 400, seed=7, task_size=100).run(
            SerialBackend()
        )
        assert report.tally == serial.tally  # bitwise, compression lossless
        counters = {c["name"]: c["value"] for c in report.metrics["counters"]}
        assert counters.get("net.bytes_saved", 0) > 0


class TestServerValidation:
    def test_constructor_rejects_bad_parameters(self, net_config):
        with pytest.raises(ValueError, match="n_photons"):
            NetworkServer(net_config, n_photons=-1)
        with pytest.raises(ValueError, match="task_size"):
            NetworkServer(net_config, n_photons=1, task_size=0)
        with pytest.raises(ValueError, match="max_retries"):
            NetworkServer(net_config, n_photons=1, max_retries=-1)


class TestNetworkRun:
    def test_single_client_equals_serial(self, net_config):
        server = NetworkServer(net_config, n_photons=500, seed=3, task_size=100).start()
        threads = run_clients(server.port, 1)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        serial = DataManager(net_config, 500, seed=3, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()
        assert report.n_tasks == 5

    def test_many_clients_same_result(self, net_config):
        server = NetworkServer(net_config, n_photons=600, seed=5, task_size=100).start()
        threads = run_clients(server.port, 4)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        serial = DataManager(net_config, 600, seed=5, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()
        # The work was actually distributed.
        assert len(report.per_worker()) >= 2

    def test_late_client_joins(self, net_config):
        server = NetworkServer(net_config, n_photons=800, seed=1, task_size=100).start()
        first = run_clients(server.port, 1, worker_name="early")
        time.sleep(0.3)
        second = run_clients(server.port, 1, worker_name="late")
        report = server.wait(timeout=120)
        for t in first + second:
            t.join(timeout=30)
        assert report.tally.n_launched == 800

    def test_zero_photons(self, net_config):
        server = NetworkServer(net_config, n_photons=0).start()
        report = server.wait(timeout=10)
        assert report.n_tasks == 0
        assert report.tally.n_launched == 0

    def test_wait_timeout(self, net_config):
        server = NetworkServer(net_config, n_photons=1000, task_size=100).start()
        try:
            with pytest.raises(TimeoutError):
                server.wait(timeout=0.2)  # no clients connected
        finally:
            server.close()

    def test_double_start_rejected(self, net_config):
        server = NetworkServer(net_config, n_photons=0).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.close()


class TestNetworkFaults:
    def test_crashing_client_tasks_reassigned(self, net_config):
        """A client that vanishes mid-task must not lose its task."""
        server = NetworkServer(
            net_config, n_photons=600, seed=9, task_size=100, max_retries=3
        ).start()
        # One client crashes after 2 tasks; a healthy one finishes the job.
        crasher = run_clients(server.port, 1, worker_name="crasher", crash_after=2)
        healthy = run_clients(server.port, 1, worker_name="healthy")
        report = server.wait(timeout=120)
        for t in crasher + healthy:
            t.join(timeout=30)
        assert report.tally.n_launched == 600
        # Physics identical to a clean serial run despite the crash.
        serial = DataManager(net_config, 600, seed=9, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()

    def test_polite_departure(self, net_config):
        """A client that leaves after max_tasks is not an error."""
        server = NetworkServer(net_config, n_photons=500, seed=2, task_size=100).start()
        part_timer = run_clients(server.port, 1, worker_name="part-timer", max_tasks=2)
        finisher = run_clients(server.port, 1, worker_name="finisher")
        report = server.wait(timeout=120)
        for t in part_timer + finisher:
            t.join(timeout=30)
        assert report.tally.n_launched == 500
        assert report.retries == 0  # nothing was lost, nothing retried

    def test_hung_client_detected_and_task_reassigned(self, net_config):
        """A silent-but-connected client must not stall the run forever.

        The hung client sends no heartbeats, so the server's heartbeat
        timeout fires, the connection is dropped and the task requeued for
        the healthy client.
        """
        server = NetworkServer(
            net_config, n_photons=400, seed=7, task_size=100,
            heartbeat_timeout=0.5,
        ).start()
        hanger = run_clients(server.port, 1, worker_name="hanger", hang_after=0)
        time.sleep(0.3)  # let the hanger claim its task first
        healthy = run_clients(server.port, 1, worker_name="healthy")
        report = server.wait(timeout=120)
        for t in hanger + healthy:
            t.join(timeout=30)
        assert report.tally.n_launched == 400
        assert report.retries >= 1
        assert report.worker_health["hanger"].failures >= 1
        assert all(r.worker_id == "healthy" for r in report.task_results)
        serial = DataManager(net_config, 400, seed=7, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()

    def test_straggler_speculatively_redispatched(self, net_config):
        """A slow (heartbeating) client is outrun by a speculative duplicate."""
        server = NetworkServer(
            net_config, n_photons=300, seed=4, task_size=100,
            task_deadline=0.3,
        ).start()
        slow = run_clients(
            server.port, 1, worker_name="slow",
            slow_down=1.5, max_tasks=1, heartbeat_interval=0.1,
        )
        time.sleep(0.3)  # let the slow client claim its task first
        fast = run_clients(server.port, 1, worker_name="fast")
        report = server.wait(timeout=120)
        for t in slow + fast:
            t.join(timeout=30)
        assert report.tally.n_launched == 300
        assert report.speculative_duplicates >= 1
        serial = DataManager(net_config, 300, seed=4, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()

    def test_corrupt_result_rejected_and_retried(self, net_config):
        """Merge-time validation rejects a poisoned tally; the retry wins."""
        server = NetworkServer(net_config, n_photons=300, seed=6, task_size=100).start()
        threads = run_clients(server.port, 1, worker_name="fuzzy", corrupt_first=True)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        assert report.tally.n_launched == 300
        assert report.retries == 1
        assert report.worker_health["fuzzy"].failures == 1
        serial = DataManager(net_config, 300, seed=6, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()

    def test_blacklisted_worker_refused_work(self, net_config):
        """After blacklisting, a worker's next pull is answered with done."""
        server = NetworkServer(
            net_config, n_photons=200, seed=8, task_size=100,
            blacklist_after=1,
        ).start()
        bad = run_clients(server.port, 1, worker_name="bad", corrupt_first=True)
        time.sleep(0.3)
        good = run_clients(server.port, 1, worker_name="good")
        report = server.wait(timeout=120)
        for t in bad + good:
            t.join(timeout=30)
        assert report.worker_health["bad"].blacklisted
        # Every merged result came from the healthy client.
        assert all(r.worker_id == "good" for r in report.task_results)
        assert report.tally.n_launched == 200

    def test_empty_run_report_fields(self, net_config):
        server = NetworkServer(net_config, n_photons=0).start()
        report = server.wait(timeout=10)
        assert report.per_worker() == {}
        assert report.retries == 0
        assert report.speculative_duplicates == 0
        assert report.worker_health == {}
