"""Tests for the TCP network mode of the distributed platform."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.distributed import (
    DataManager,
    NetworkServer,
    SerialBackend,
    recv_message,
    run_network_client,
    send_message,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


@pytest.fixture
def net_config():
    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    return SimulationConfig(stack=LayerStack.homogeneous(props), source=PencilBeam())


def run_clients(port: int, count: int, **kwargs) -> list[threading.Thread]:
    threads = [
        threading.Thread(
            target=run_network_client,
            args=("127.0.0.1", port),
            kwargs={"worker_name": f"client-{i}", **kwargs},
            daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return threads


class TestFraming:
    def test_round_trip(self):
        server, client = socket.socketpair()
        with server, client:
            send_message(client, {"hello": [1, 2, 3]})
            assert recv_message(server) == {"hello": [1, 2, 3]}

    def test_large_payload(self):
        server, client = socket.socketpair()
        payload = np.arange(200_000)
        with server, client:
            sender = threading.Thread(target=send_message, args=(client, payload))
            sender.start()
            received = recv_message(server)
            sender.join()
        np.testing.assert_array_equal(received, payload)

    def test_closed_peer_raises(self):
        server, client = socket.socketpair()
        client.close()
        with server:
            with pytest.raises(ConnectionError):
                recv_message(server)


class TestNetworkRun:
    def test_single_client_equals_serial(self, net_config):
        server = NetworkServer(net_config, n_photons=500, seed=3, task_size=100).start()
        threads = run_clients(server.port, 1)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        serial = DataManager(net_config, 500, seed=3, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()
        assert report.n_tasks == 5

    def test_many_clients_same_result(self, net_config):
        server = NetworkServer(net_config, n_photons=600, seed=5, task_size=100).start()
        threads = run_clients(server.port, 4)
        report = server.wait(timeout=120)
        for t in threads:
            t.join(timeout=30)
        serial = DataManager(net_config, 600, seed=5, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()
        # The work was actually distributed.
        assert len(report.per_worker()) >= 2

    def test_late_client_joins(self, net_config):
        import time

        server = NetworkServer(net_config, n_photons=800, seed=1, task_size=100).start()
        first = run_clients(server.port, 1, worker_name="early")
        time.sleep(0.3)
        second = run_clients(server.port, 1, worker_name="late")
        report = server.wait(timeout=120)
        for t in first + second:
            t.join(timeout=30)
        assert report.tally.n_launched == 800

    def test_zero_photons(self, net_config):
        server = NetworkServer(net_config, n_photons=0).start()
        report = server.wait(timeout=10)
        assert report.n_tasks == 0
        assert report.tally.n_launched == 0

    def test_wait_timeout(self, net_config):
        server = NetworkServer(net_config, n_photons=1000, task_size=100).start()
        try:
            with pytest.raises(TimeoutError):
                server.wait(timeout=0.2)  # no clients connected
        finally:
            server.close()

    def test_double_start_rejected(self, net_config):
        server = NetworkServer(net_config, n_photons=0).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.close()


class TestNetworkFaults:
    def test_crashing_client_tasks_reassigned(self, net_config):
        """A client that vanishes mid-task must not lose its task."""
        server = NetworkServer(
            net_config, n_photons=600, seed=9, task_size=100, max_retries=3
        ).start()
        # One client crashes after 2 tasks; a healthy one finishes the job.
        crasher = run_clients(server.port, 1, worker_name="crasher", crash_after=2)
        healthy = run_clients(server.port, 1, worker_name="healthy")
        report = server.wait(timeout=120)
        for t in crasher + healthy:
            t.join(timeout=30)
        assert report.tally.n_launched == 600
        # Physics identical to a clean serial run despite the crash.
        serial = DataManager(net_config, 600, seed=9, task_size=100).run(SerialBackend())
        assert report.tally.summary() == serial.tally.summary()

    def test_polite_departure(self, net_config):
        """A client that leaves after max_tasks is not an error."""
        server = NetworkServer(net_config, n_photons=500, seed=2, task_size=100).start()
        part_timer = run_clients(server.port, 1, worker_name="part-timer", max_tasks=2)
        finisher = run_clients(server.port, 1, worker_name="finisher")
        report = server.wait(timeout=120)
        for t in part_timer + finisher:
            t.join(timeout=30)
        assert report.tally.n_launched == 500
        assert report.retries == 0  # nothing was lost, nothing retried
