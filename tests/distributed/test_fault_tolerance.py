"""Fault-taxonomy tests: crash, slowdown, hang, corrupt result, flaky worker.

Each scenario must leave the merged physics bit-identical to a clean run
(strict ``Tally.__eq__``): recovery may cost retries and duplicates, never
correctness.
"""

from __future__ import annotations

import pytest

from repro.distributed import (
    DataManager,
    FaultInjector,
    SerialBackend,
    ThreadBackend,
)
from repro.distributed.faults import CORRUPT_KINDS


def clean_tally(fast_config, n_photons=300, seed=2, task_size=100):
    return DataManager(fast_config, n_photons, seed=seed, task_size=task_size).run(
        SerialBackend()
    ).tally


class TestCrash:
    def test_crash_recovered_bit_identical(self, fast_config):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_runner=FaultInjector(fail_tasks_once=frozenset({1})),
        )
        report = manager.run(SerialBackend())
        assert report.retries == 1
        assert report.tally == clean_tally(fast_config)


class TestSlowdown:
    def test_straggler_speculatively_redispatched(self, fast_config):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_deadline=0.15,
            task_runner=FaultInjector(slow_tasks_once={0: 1.0}),
        )
        with ThreadBackend(2) as backend:
            report = manager.run(backend)
        assert report.speculative_duplicates >= 1
        assert report.retries == 0  # a straggler is not a failure
        assert report.tally == clean_tally(fast_config)

    def test_speculation_disabled_without_deadline(self, fast_config):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_runner=FaultInjector(slow_tasks_once={0: 0.3}),
        )
        with ThreadBackend(2) as backend:
            report = manager.run(backend)
        assert report.speculative_duplicates == 0
        assert report.tally == clean_tally(fast_config)


class TestHang:
    def test_duplicate_wins_late_result_discarded(self, fast_config):
        # The hang (1.5 s) far exceeds the deadline (0.15 s): the
        # speculative duplicate must be merged long before the hung attempt
        # wakes up, and the late result silently discarded.
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_deadline=0.15,
            task_runner=FaultInjector(
                hang_tasks_once=frozenset({0}), hang_seconds=1.5
            ),
        )
        with ThreadBackend(2) as backend:
            report = manager.run(backend)
        assert report.speculative_duplicates == 1
        assert report.tally == clean_tally(fast_config)


class TestCorruptResult:
    @pytest.mark.parametrize("kind", CORRUPT_KINDS)
    def test_rejected_and_retried(self, fast_config, kind):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_runner=FaultInjector(
                corrupt_tasks_once=frozenset({1}), corrupt_kind=kind
            ),
        )
        report = manager.run(SerialBackend())
        assert report.retries == 1
        assert report.tally == clean_tally(fast_config)
        # The rejection was attributed to the offending worker.
        assert sum(s.failures for s in report.worker_health.values()) == 1

    def test_repeated_corruption_blacklists_worker(self, fast_config):
        # Three rejected results in a row from the (single) in-process
        # worker trip the blacklist flag.  In-process backends cannot
        # refuse work to a thread, so the run still completes — the flag
        # is diagnostic here and enforced by the NetworkServer.
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            blacklist_after=3,
            task_runner=FaultInjector(corrupt_tasks_once=frozenset({0, 1, 2})),
        )
        report = manager.run(SerialBackend())
        assert any(s.blacklisted for s in report.worker_health.values())
        assert report.tally == clean_tally(fast_config)


class TestBackoff:
    def test_exponential_schedule(self, fast_config):
        manager = DataManager(
            fast_config, 100, retry_backoff=0.05, retry_backoff_cap=0.15
        )
        assert manager._backoff(1) == pytest.approx(0.05)
        assert manager._backoff(2) == pytest.approx(0.10)
        assert manager._backoff(3) == pytest.approx(0.15)  # capped
        assert manager._backoff(10) == pytest.approx(0.15)

    def test_disabled_by_default(self, fast_config):
        assert DataManager(fast_config, 100)._backoff(5) == 0.0

    def test_backoff_run_still_bit_identical(self, fast_config):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            retry_backoff=0.02,
            task_runner=FaultInjector(fail_tasks_once=frozenset({0, 2})),
        )
        report = manager.run(SerialBackend())
        assert report.retries == 2
        assert report.tally == clean_tally(fast_config)


class TestReportHealth:
    def test_per_worker_includes_health_fields(self, fast_config):
        manager = DataManager(
            fast_config, 300, seed=2, task_size=100,
            task_runner=FaultInjector(corrupt_tasks_once=frozenset({0})),
        )
        report = manager.run(SerialBackend())
        rows = report.per_worker()
        assert len(rows) == 1
        row = next(iter(rows.values()))
        assert row["tasks"] == 3.0
        assert row["failures"] == 1.0
        assert row["blacklisted"] is False
        assert row["mean_latency_seconds"] > 0

    def test_empty_run_report(self, fast_config):
        report = DataManager(fast_config, n_photons=0).run(SerialBackend())
        assert report.per_worker() == {}
        assert report.retries == 0
        assert report.speculative_duplicates == 0
        assert report.worker_health == {}
        assert report.tally.n_launched == 0
