"""Tests for checkpoint/resume of distributed runs.

The acceptance bar is *bit-identity*: a run killed mid-flight and resumed
from its checkpoint must produce a tally equal — via the strict
``Tally.__eq__`` — to the uninterrupted run with the same seed and
decomposition, for both the in-process backends and the TCP server.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.distributed import (
    CheckpointError,
    CheckpointManager,
    DataManager,
    FaultInjector,
    NetworkServer,
    SerialBackend,
    TaskFailedError,
    ThreadBackend,
    execute_task,
    run_key,
    run_network_client,
)
from repro.distributed.protocol import TaskSpec


def make_manager(fast_config, **kwargs):
    defaults = dict(n_photons=500, seed=3, task_size=100)
    defaults.update(kwargs)
    return DataManager(fast_config, **defaults)


class TestCheckpointManager:
    def key(self):
        return run_key(n_photons=500, seed=3, task_size=100, kernel="vector")

    def test_fresh_load_is_empty_and_creates_manifest(self, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        assert not ckpt.exists
        assert ckpt.load(self.key()) == {}
        assert ckpt.exists
        assert ckpt.completed_indices() == set()

    def test_record_before_load_rejected(self, fast_config, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        result = execute_task(fast_config, TaskSpec(0, 50, 0))
        with pytest.raises(CheckpointError, match="load"):
            ckpt.record(result)

    def test_record_and_reload(self, fast_config, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.load(self.key())
        result = execute_task(fast_config, TaskSpec(2, 100, 3))
        ckpt.record(result)

        reloaded = CheckpointManager(tmp_path / "ck").load(self.key())
        assert set(reloaded) == {2}
        assert reloaded[2].tally == result.tally
        assert reloaded[2].worker_id == result.worker_id

    def test_run_key_mismatch_refused(self, tmp_path):
        CheckpointManager(tmp_path / "ck").load(self.key())
        other = run_key(n_photons=500, seed=99, task_size=100, kernel="vector")
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointManager(tmp_path / "ck").load(other)

    def test_corrupt_manifest_refused(self, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.load(self.key())
        ckpt.manifest_path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointManager(tmp_path / "ck").load(self.key())

    def test_torn_tally_file_dropped(self, fast_config, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.load(self.key())
        ckpt.record(execute_task(fast_config, TaskSpec(0, 100, 3)))
        ckpt.record(execute_task(fast_config, TaskSpec(1, 100, 3)))
        # Simulate a crash mid-write: one archive is garbage on disk.
        (tmp_path / "ck" / "task-000000.npz").write_bytes(b"torn write")
        reloaded = CheckpointManager(tmp_path / "ck").load(self.key())
        assert set(reloaded) == {1}

    def test_manifest_flush_batching(self, fast_config, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck", interval=10)
        ckpt.load(self.key())
        ckpt.record(execute_task(fast_config, TaskSpec(0, 100, 3)))
        manifest = json.loads(ckpt.manifest_path.read_text())
        assert manifest["tasks"] == []  # batched, not yet flushed
        ckpt.flush()
        manifest = json.loads(ckpt.manifest_path.read_text())
        assert [e["task_index"] for e in manifest["tasks"]] == [0]

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            CheckpointManager(tmp_path / "ck", interval=0)


class TestResumeInProcess:
    def test_killed_run_resumes_bit_identical(self, fast_config, tmp_path):
        baseline = make_manager(fast_config).run(SerialBackend()).tally

        # Kill the run mid-flight: task 3 fails permanently, no retries.
        interrupted = make_manager(
            fast_config,
            checkpoint=tmp_path / "ck",
            max_retries=0,
            task_runner=FaultInjector(fail_tasks_always=frozenset({3})),
        )
        with pytest.raises(TaskFailedError):
            interrupted.run(SerialBackend())

        # Resume with a runner that would crash on the already-completed
        # tasks: success proves they were restored from disk, not re-run.
        resumed = make_manager(
            fast_config,
            checkpoint=tmp_path / "ck",
            task_runner=FaultInjector(fail_tasks_always=frozenset({0, 1, 2})),
        )
        report = resumed.run(SerialBackend())
        assert report.tally == baseline  # strict bitwise Tally equality
        assert report.n_tasks == 5

    def test_resume_on_thread_backend(self, fast_config, tmp_path):
        baseline = make_manager(fast_config).run(SerialBackend()).tally
        interrupted = make_manager(
            fast_config,
            checkpoint=tmp_path / "ck",
            max_retries=0,
            task_runner=FaultInjector(fail_tasks_always=frozenset({4})),
        )
        with pytest.raises(TaskFailedError):
            interrupted.run(SerialBackend())
        with ThreadBackend(3) as backend:
            report = make_manager(fast_config, checkpoint=tmp_path / "ck").run(backend)
        assert report.tally == baseline

    def test_completed_checkpoint_runs_nothing(self, fast_config, tmp_path):
        first = make_manager(fast_config, checkpoint=tmp_path / "ck")
        baseline = first.run(SerialBackend()).tally

        def refuse(*args, **kwargs):
            raise AssertionError("no task should execute on a complete checkpoint")

        again = make_manager(fast_config, checkpoint=tmp_path / "ck", task_runner=refuse)
        assert again.run(SerialBackend()).tally == baseline

    def test_checkpoint_of_different_run_refused(self, fast_config, tmp_path):
        make_manager(fast_config, checkpoint=tmp_path / "ck").run(SerialBackend())
        other = make_manager(fast_config, seed=99, checkpoint=tmp_path / "ck")
        with pytest.raises(CheckpointError, match="different run"):
            other.run(SerialBackend())


class TestResumeNetwork:
    def client(self, port: int, name: str, **kwargs) -> threading.Thread:
        thread = threading.Thread(
            target=run_network_client,
            args=("127.0.0.1", port),
            kwargs={"worker_name": name, **kwargs},
            daemon=True,
        )
        thread.start()
        return thread

    def test_killed_server_resumes_bit_identical(self, fast_config, tmp_path):
        baseline = DataManager(fast_config, 600, seed=9, task_size=100).run(
            SerialBackend()
        ).tally

        # First server is killed after a client completed only half the run.
        first = NetworkServer(
            fast_config, n_photons=600, seed=9, task_size=100,
            checkpoint=tmp_path / "ck",
        ).start()
        partial = self.client(first.port, "part-timer", max_tasks=3)
        partial.join(timeout=30)
        with pytest.raises(TimeoutError):
            first.wait(timeout=0.2)
        first.close()

        # A fresh server over the same checkpoint finishes the remainder.
        second = NetworkServer(
            fast_config, n_photons=600, seed=9, task_size=100,
            checkpoint=tmp_path / "ck",
        ).start()
        finisher = self.client(second.port, "finisher")
        report = second.wait(timeout=120)
        finisher.join(timeout=30)

        assert report.tally == baseline  # strict bitwise Tally equality
        assert report.n_tasks == 6
        # The resumed server only handed out the outstanding tasks.
        fresh = [r for r in report.task_results if r.worker_id == "finisher"]
        assert len(fresh) == 3
