"""Completion-order shuffle determinism (the PR 3 acceptance tests).

The incremental pairwise reducer must make the merged tally a function of
the request alone: thread/process parallelism, stragglers and speculative
duplicate injection may scramble the completion order arbitrarily, yet the
result stays **bit-identical** to a serial run — and the reduction must do
it in bounded memory with no end-of-run merge stall.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core import Simulation
from repro.distributed import (
    DataManager,
    FaultInjector,
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.io import load_tally, save_tally
from repro.observe import MemorySink, Telemetry


def assert_bit_identical(a, b) -> None:
    assert a == b  # Tally.__eq__ is bitwise-strict
    assert pickle.dumps(a) == pickle.dumps(b)


@pytest.fixture
def serial_tally(fast_config):
    return Simulation(fast_config).run(600, seed=11, task_size=75)


class TestShuffledCompletion:
    def test_threads_with_speculative_duplicates(self, fast_config, serial_tally):
        """Stragglers + speculation scramble completion order; bits hold."""
        manager = DataManager(
            fast_config,
            n_photons=600,
            seed=11,
            task_size=75,
            task_runner=FaultInjector(slow_tasks_once={1: 0.6, 5: 0.6}),
            task_deadline=0.05,
            max_speculative=1,
        )
        with ThreadBackend(4) as backend:
            report = manager.run(backend)
        assert report.speculative_duplicates >= 1
        assert_bit_identical(report.tally, serial_tally)

    def test_process_pool_matches_serial(self, fast_config, serial_tally):
        manager = DataManager(fast_config, n_photons=600, seed=11, task_size=75)
        with MultiprocessingBackend(2) as backend:
            report = manager.run(backend)
        assert_bit_identical(report.tally, serial_tally)

    def test_npz_round_trip_identical(self, fast_config, serial_tally, tmp_path):
        """The persisted .npz archives agree array-for-array with serial."""
        manager = DataManager(
            fast_config,
            n_photons=600,
            seed=11,
            task_size=75,
            task_runner=FaultInjector(slow_tasks_once={2: 0.5}),
            task_deadline=0.05,
        )
        with ThreadBackend(4) as backend:
            report = manager.run(backend)
        save_tally(tmp_path / "distributed.npz", report.tally)
        save_tally(tmp_path / "serial.npz", serial_tally)
        assert_bit_identical(
            load_tally(tmp_path / "distributed.npz"),
            load_tally(tmp_path / "serial.npz"),
        )

    def test_fault_injector_is_picklable(self, fast_config):
        """Process backends ship the injector to workers by pickling it."""
        injector = FaultInjector(slow_tasks_once={0: 0.0}, fail_tasks_once={9})
        clone = pickle.loads(pickle.dumps(injector))
        from repro.distributed.protocol import TaskSpec

        result = clone(fast_config, TaskSpec(0, 20, 0))
        assert result.tally.n_launched == 20


class TestReduceTelemetry:
    def test_no_merge_span_and_bounded_pending(self, fast_config, serial_tally):
        tel = Telemetry(sink=MemorySink())
        manager = DataManager(
            fast_config,
            n_photons=600,
            seed=11,
            task_size=75,
            task_deadline=0.05,
            task_runner=FaultInjector(slow_tasks_once={1: 0.5}),
            telemetry=tel,
        )
        with ThreadBackend(4) as backend:
            report = manager.run(backend)
        assert_bit_identical(report.tally, serial_tally)

        # The end-of-run merge stall is gone from the telemetry stream.
        span_names = {
            e.get("name") for e in tel.sink.events if e["event"] == "span_start"
        }
        assert "merge" not in span_names

        gauges = {g["name"]: g["value"] for g in report.metrics["gauges"]}
        counters = {c["name"]: c["value"] for c in report.metrics["counters"]}
        n_tasks = report.n_tasks
        bound = math.ceil(math.log2(n_tasks)) + 4 + report.speculative_duplicates
        assert 1 <= gauges["reduce.pending_peak"] <= bound
        assert counters["reduce.seconds"] >= 0.0

    def test_serial_run_emits_reduce_metrics(self, fast_config):
        tel = Telemetry.in_memory()
        Simulation(fast_config).run(300, seed=1, task_size=100, telemetry=tel)
        snapshot = tel.snapshot()
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert gauges["reduce.pending_peak"] <= math.ceil(math.log2(3))
        span_names = {
            e.get("name") for e in tel.sink.events if e["event"] == "span_start"
        }
        assert "merge" not in span_names


class TestDroppedTaskTallies:
    def test_merged_tally_unchanged_and_metadata_kept(self, fast_config, serial_tally):
        lean = DataManager(
            fast_config, n_photons=600, seed=11, task_size=75,
            retain_task_tallies=False,
        )
        with ThreadBackend(3) as backend:
            report = lean.run(backend)
        assert_bit_identical(report.tally, serial_tally)
        assert all(r.tally is None for r in report.task_results)
        assert [r.photons for r in report.task_results] == [75] * 8
        per_worker = report.per_worker()
        assert sum(v["photons"] for v in per_worker.values()) == 600

    def test_checkpoint_resume_through_reducer(self, fast_config, tmp_path):
        baseline = DataManager(
            fast_config, n_photons=500, seed=3, task_size=100
        ).run(SerialBackend())

        ckpt_dir = tmp_path / "ckpt"
        first = DataManager(
            fast_config, n_photons=500, seed=3, task_size=100,
            checkpoint=ckpt_dir, retain_task_tallies=False,
            task_runner=FaultInjector(fail_tasks_always=frozenset({3})),
            max_retries=0,
        )
        with pytest.raises(Exception):
            first.run(SerialBackend())

        resumed = DataManager(
            fast_config, n_photons=500, seed=3, task_size=100,
            checkpoint=ckpt_dir, retain_task_tallies=False,
        ).run(SerialBackend())
        assert_bit_identical(resumed.tally, baseline.tally)
        assert all(r.tally is None for r in resumed.task_results)
