"""Tests for the task protocol."""

from __future__ import annotations

import pytest

from repro.core import Tally
from repro.distributed import TaskResult, TaskSpec, decode, encode


class TestTaskSpec:
    def test_construction(self):
        t = TaskSpec(task_index=0, n_photons=100, seed=42)
        assert t.kernel == "vector"

    def test_validation(self):
        with pytest.raises(ValueError, match="task_index"):
            TaskSpec(task_index=-1, n_photons=1, seed=0)
        with pytest.raises(ValueError, match="n_photons"):
            TaskSpec(task_index=0, n_photons=0, seed=0)

    def test_frozen(self):
        t = TaskSpec(task_index=0, n_photons=1, seed=0)
        with pytest.raises(AttributeError):
            t.n_photons = 2


class TestTaskResult:
    def test_validation(self):
        tally = Tally(n_layers=1)
        with pytest.raises(ValueError, match="elapsed"):
            TaskResult(0, tally, "w", -1.0)
        with pytest.raises(ValueError, match="attempt"):
            TaskResult(0, tally, "w", 0.0, attempt=0)


class TestEncodeDecode:
    def test_round_trip_spec(self):
        spec = TaskSpec(task_index=3, n_photons=500, seed=7, kernel="scalar")
        assert decode(encode(spec)) == spec

    def test_round_trip_result(self):
        tally = Tally(n_layers=2)
        tally.n_launched = 10
        result = TaskResult(1, tally, "worker-x", 0.5)
        back = decode(encode(result))
        assert back.task_index == 1
        assert back.tally.n_launched == 10
        assert back.worker_id == "worker-x"
