"""Integration: classical relations of tissue optics, verified end to end.

These are the textbook invariances a photon-transport code must satisfy;
they catch subtle sampling or bookkeeping errors that unit tests of the
primitives cannot see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RouletteConfig,
    SimulationConfig,
    Simulation,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


class TestSimilarityRelation:
    """Diffusion-regime observables depend on (µa, µs'), not (µs, g) alone.

    Media with equal µs' = µs(1-g) but different anisotropy must give the
    same diffuse reflectance in the diffusive regime — the similarity
    relation that justifies Table 1 publishing only µs'.
    """

    @pytest.mark.parametrize("g", [0.0, 0.5, 0.9])
    def test_reflectance_invariant_under_g(self, g):
        base = OpticalProperties(mu_a=0.05, mu_s=20.0, g=0.9, n=1.0)
        medium = base.with_anisotropy(g)
        assert medium.mu_s_reduced == pytest.approx(base.mu_s_reduced)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(medium),
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        tally = Simulation(config).run(15_000, seed=71)
        reference_config = SimulationConfig(
            stack=LayerStack.homogeneous(base),
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        reference = Simulation(reference_config).run(15_000, seed=72)
        # Similarity is exact only as mu_a -> 0 and far from the source;
        # for total Rd at albedo 0.9975 it holds to a few percent.
        assert tally.diffuse_reflectance == pytest.approx(
            reference.diffuse_reflectance, rel=0.05
        )


class TestAbsorptionScaling:
    def test_reflectance_decreases_with_mu_a(self):
        """More absorption, less diffuse reflectance — monotonically."""
        reflectances = []
        for mu_a in (0.01, 0.1, 1.0):
            props = OpticalProperties(mu_a=mu_a, mu_s=10.0, g=0.8, n=1.0)
            config = SimulationConfig(
                stack=LayerStack.homogeneous(props),
                source=PencilBeam(),
                roulette=RouletteConfig(threshold=1e-3, boost=10),
            )
            reflectances.append(
                Simulation(config).run(8_000, seed=73).diffuse_reflectance
            )
        assert reflectances[0] > reflectances[1] > reflectances[2]

    def test_conservative_medium_reflects_everything(self):
        """mu_a = 0, semi-infinite, matched boundary: R_d -> 1."""
        props = OpticalProperties(mu_a=0.0, mu_s=5.0, g=0.5, n=1.0)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(props),
            source=PencilBeam(),
            max_steps=1_000_000,
        )
        tally = Simulation(config).run(2_000, seed=74)
        # Everything must come back out (no absorption, nowhere else to go);
        # allow the tiny fraction clipped by max_steps.
        assert tally.diffuse_reflectance + tally._per_photon(tally.lost_weight) == (
            pytest.approx(1.0, abs=1e-9)
        )
        assert tally.diffuse_reflectance > 0.99


class TestIndexMismatchEffect:
    def test_internal_reflection_raises_absorption(self):
        """An n-mismatched surface traps light inside, raising absorption."""
        matched = OpticalProperties(mu_a=0.2, mu_s=10.0, g=0.8, n=1.0)
        mismatched = OpticalProperties(mu_a=0.2, mu_s=10.0, g=0.8, n=1.5)
        results = {}
        for name, props in (("matched", matched), ("mismatched", mismatched)):
            config = SimulationConfig(
                stack=LayerStack.homogeneous(props),
                source=PencilBeam(),
                roulette=RouletteConfig(threshold=1e-3, boost=10),
            )
            results[name] = Simulation(config).run(8_000, seed=75)
        assert (
            results["mismatched"].total_absorbed_fraction
            > results["matched"].total_absorbed_fraction
        )
        # Diffuse reflectance correspondingly lower (plus specular at entry).
        assert (
            results["mismatched"].diffuse_reflectance
            < results["matched"].diffuse_reflectance
        )


class TestDetectedPathlengthExceedsSpacing:
    def test_dpf_greater_than_one(self):
        """'photons travel a considerably greater distance than the direct
        source-detector path' (paper, §1)."""
        from repro.detect import AnnularDetector

        props = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.8, n=1.0)
        rho = 4.0
        config = SimulationConfig(
            stack=LayerStack.homogeneous(props),
            source=PencilBeam(),
            detector=AnnularDetector(rho - 0.5, rho + 0.5),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        tally = Simulation(config).run(20_000, seed=76)
        assert tally.detected_count > 100
        dpf = tally.differential_pathlength_factor(rho)
        assert dpf > 2.0  # considerably greater, not marginally
