"""Integration: distributed execution across real process boundaries.

The reproducibility contract from DESIGN.md §4: merged results are
independent of worker count, backend and schedule, because task streams are
keyed by (seed, task_index) only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecordConfig, Simulation, SimulationConfig
from repro.detect import GridSpec
from repro.distributed import (
    DataManager,
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


@pytest.fixture(scope="module")
def config():
    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    return SimulationConfig(
        stack=LayerStack.homogeneous(props),
        source=PencilBeam(),
        records=RecordConfig(
            absorption_grid=GridSpec.cube(8, 10.0, 10.0),
            penetration_bins=(20.0, 40),
        ),
    )


def assert_tallies_identical(a, b):
    sa, sb = a.summary(), b.summary()
    for key in sa:
        if np.isnan(sa[key]):
            assert np.isnan(sb[key]), key
        else:
            assert sa[key] == sb[key], key
    np.testing.assert_array_equal(a.absorbed_by_layer, b.absorbed_by_layer)
    np.testing.assert_array_equal(a.absorption_grid, b.absorption_grid)
    np.testing.assert_array_equal(a.penetration_hist.counts, b.penetration_hist.counts)


class TestBackendEquivalence:
    N = 600
    TASK = 150
    SEED = 13

    def manager(self, config):
        return DataManager(config, self.N, seed=self.SEED, task_size=self.TASK)

    def test_serial_equals_facade(self, config):
        report = self.manager(config).run(SerialBackend())
        facade = Simulation(config).run(self.N, seed=self.SEED, task_size=self.TASK)
        assert_tallies_identical(report.tally, facade)

    def test_threads_equal_serial(self, config):
        serial = self.manager(config).run(SerialBackend()).tally
        with ThreadBackend(3) as backend:
            threaded = self.manager(config).run(backend).tally
        assert_tallies_identical(serial, threaded)

    def test_processes_equal_serial(self, config):
        """Bitwise identity across real process boundaries (pickling, IPC)."""
        serial = self.manager(config).run(SerialBackend()).tally
        with MultiprocessingBackend(2) as backend:
            processed = self.manager(config).run(backend).tally
        assert_tallies_identical(serial, processed)

    def test_different_task_sizes_same_physics(self, config):
        """Different chunkings give statistically equal, not identical, tallies."""
        small = DataManager(config, 2000, seed=1, task_size=100)
        large = DataManager(config, 2000, seed=1, task_size=1000)
        t_small = small.run(SerialBackend()).tally
        t_large = large.run(SerialBackend()).tally
        assert t_small.n_launched == t_large.n_launched
        assert t_small.diffuse_reflectance == pytest.approx(
            t_large.diffuse_reflectance, rel=0.15
        )
