"""Smoke tests: every example script runs end to end at tiny scale.

Examples are the public face of the library; these tests guarantee they
never rot.  Each is executed in-process via runpy with a small photon
budget patched through ``sys.argv``.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", ["800"], monkeypatch, capsys)
        assert "Energy balance" in out
        assert "white_matter" in out

    def test_banana_sensitivity(self, monkeypatch, capsys, tmp_path):
        out = run_example("banana_sensitivity.py", ["1200", "2.5"], monkeypatch, capsys)
        assert "Banana metrics" in out
        # The PGM lands next to the script; clean it up.
        pgm = EXAMPLES / "banana.pgm"
        assert pgm.exists()
        pgm.unlink()

    def test_adult_head_nirs(self, monkeypatch, capsys):
        out = run_example("adult_head_nirs.py", ["1500"], monkeypatch, capsys)
        assert "white matter" in out
        assert "spacing" in out

    def test_source_footprints(self, monkeypatch, capsys):
        out = run_example("source_footprints.py", ["1200"], monkeypatch, capsys)
        assert "illumination footprint" in out
        assert "gate" in out

    def test_heterogeneous_cluster(self, monkeypatch, capsys):
        out = run_example("heterogeneous_cluster.py", [], monkeypatch, capsys)
        assert "self-scheduling" in out
        assert "GA" in out

    @pytest.mark.slow
    def test_distributed_speedup(self, monkeypatch, capsys):
        out = run_example("distributed_speedup.py", [], monkeypatch, capsys)
        assert "fficiency at 60 processors" in out  # 'Efficiency at 60 ...'
        assert "bit-identical: True" in out

    def test_inverse_calibration(self, monkeypatch, capsys):
        out = run_example("inverse_calibration.py", ["20000"], monkeypatch, capsys)
        assert "recovered" in out
        assert "spacing offset" in out
