"""Integration: Monte Carlo vs diffusion theory.

The paper grounds its method in radiative transport / diffusion
approximation theory (§2, ref [6]).  Here the MC engine is validated
against the analytic solutions of :mod:`repro.diffusion` in a regime where
diffusion theory is accurate: µa << µs′ and detection several transport
mean free paths from the source.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecordConfig,
    RouletteConfig,
    SimulationConfig,
    Simulation,
)
from repro.detect import AnnularDetector, radial_reflectance
from repro.diffusion import dpf_theory, reflectance_farrell
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

#: Diffusive but fast medium: albedo 0.9975, transport mfp 0.49 mm.
PROPS = OpticalProperties(mu_a=0.05, mu_s=20.0, g=0.9, n=1.0)


@pytest.fixture(scope="module")
def mc_tally():
    stack = LayerStack.homogeneous(PROPS)
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=1e-3, boost=10),
        records=RecordConfig(reflectance_rho_bins=(12.0, 24)),
    )
    return Simulation(config).run(150_000, seed=11)


class TestSteadyStateReflectance:
    def test_r_of_rho_matches_farrell(self, mc_tally):
        """Radially resolved R(rho) vs the dipole solution, 2-8 mm out."""
        rho, r_mc = radial_reflectance(mc_tally)
        window = (rho >= 2.0) & (rho <= 8.0)
        r_theory = reflectance_farrell(rho[window], PROPS)
        ratio = r_mc[window] / r_theory
        # Diffusion theory is a few-percent-accurate approximation here;
        # require agreement within 25% pointwise and 15% on average.
        assert np.all(np.abs(ratio - 1.0) < 0.25), ratio
        assert abs(ratio.mean() - 1.0) < 0.15

    def test_decay_rate_matches_mu_eff(self, mc_tally):
        """ln(rho^2 R) decays with slope -mu_eff at large rho."""
        rho, r_mc = radial_reflectance(mc_tally)
        window = (rho >= 3.0) & (rho <= 9.0) & (r_mc > 0)
        x = rho[window]
        y = np.log(x**2 * r_mc[window])
        slope = np.polyfit(x, y, 1)[0]
        assert slope == pytest.approx(-PROPS.effective_attenuation, rel=0.15)

    def test_total_reflectance_high_albedo(self, mc_tally):
        # Albedo 0.9975, matched boundary: most light re-emerges.
        assert mc_tally.diffuse_reflectance > 0.5


class TestDPF:
    def test_mc_dpf_matches_theory(self):
        rho = 5.0
        stack = LayerStack.homogeneous(PROPS)
        config = SimulationConfig(
            stack=stack,
            source=PencilBeam(),
            detector=AnnularDetector(rho - 0.5, rho + 0.5),
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        tally = Simulation(config).run(60_000, seed=21)
        assert tally.detected_count > 100
        mc_dpf = tally.differential_pathlength_factor(rho)
        theory = dpf_theory(rho, PROPS)
        assert mc_dpf == pytest.approx(theory, rel=0.25)
