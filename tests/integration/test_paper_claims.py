"""Integration: the qualitative claims of the paper's Sect. 4, at test scale.

These are miniature versions of the Fig. 3 / Fig. 4 benches: small photon
budgets, coarse grids, fast-ish media — enough to assert the *shape* of
each claim in seconds rather than minutes.  The full-scale versions live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import banana_metrics, penetration_fractions
from repro.core import (
    RecordConfig,
    RouletteConfig,
    Simulation,
    SimulationConfig,
)
from repro.detect import DiscDetector, GridSpec
from repro.sources import GaussianBeam, PencilBeam, UniformDisc
from repro.tissue import LayerStack, OpticalProperties, adult_head

#: Scaled-down "white matter": same anisotropy and albedo structure, but
#: ~10x more absorbing so photon lifetimes stay short in tests.
FAST_SCATTERER = OpticalProperties(mu_a=0.15, mu_s=30.0, g=0.9, n=1.4)


class TestBananaShape:
    """Fig. 3: detected paths form a banana between source and detector."""

    @pytest.fixture(scope="class")
    def banana(self):
        rho = 3.0
        spec = GridSpec.banana_box(40, rho)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(FAST_SCATTERER),
            source=PencilBeam(),
            detector=DiscDetector(rho, 0.0, radius=0.75),
            roulette=RouletteConfig(threshold=1e-2, boost=10),
            records=RecordConfig(path_grid=spec),
        )
        tally = Simulation(config).run(40_000, seed=5)
        return tally, spec, rho

    def test_photons_detected(self, banana):
        tally, _, _ = banana
        assert tally.detected_count > 30

    def test_banana_shape(self, banana):
        tally, spec, rho = banana
        metrics = banana_metrics(tally.path_grid, spec, detector_x=rho)
        assert metrics.is_banana
        # The deepest point lies strictly between the optodes.
        assert 0.0 < metrics.argmax_depth_x < rho
        # Penetration scale: a banana at 3 mm spacing dips ~1/3-2/3 of rho.
        assert 0.2 * rho < metrics.depth_at_midpoint < rho


class TestLayeredHeadClaims:
    """Fig. 4: most photons reflected before the CSF; some reach white matter."""

    @pytest.fixture(scope="class")
    def head_tally(self):
        stack = adult_head()
        config = SimulationConfig(
            stack=stack,
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=3e-2, boost=20),
            max_steps=40_000,
            records=RecordConfig(penetration_bins=(40.0, 400)),
        )
        return Simulation(config).run(4_000, seed=6), stack

    def test_most_photons_stop_before_csf(self, head_tally):
        tally, stack = head_tally
        fractions = penetration_fractions(tally, stack)
        stopped_before_csf = (
            fractions["scalp"]["stopped"] + fractions["skull"]["stopped"]
        )
        assert stopped_before_csf > 0.5

    def test_some_reach_white_matter(self, head_tally):
        tally, stack = head_tally
        fractions = penetration_fractions(tally, stack)
        assert fractions["white_matter"]["reached"] > 0.0
        # ... but only a small minority (the paper's "some do penetrate").
        assert fractions["white_matter"]["reached"] < 0.2

    def test_reached_fraction_decreases_with_depth(self, head_tally):
        tally, stack = head_tally
        fractions = penetration_fractions(tally, stack)
        reached = [fractions[l.name]["reached"] for l in stack]
        assert reached == sorted(reached, reverse=True)

    def test_absorption_dominated_by_superficial_layers(self, head_tally):
        tally, stack = head_tally
        absorbed = tally.absorbed_fraction
        assert absorbed[0] > absorbed[3]  # scalp >> grey matter
        assert absorbed[0] > absorbed[4]  # scalp >> white matter


class TestSourceFootprintEffect:
    """Sect. 4: 'the source illumination footprint has an effect on the
    distribution of photons in the head'."""

    def absorption_spread(self, source, seed=7):
        spec = GridSpec.cube(24, 12.0, 6.0)
        config = SimulationConfig(
            stack=LayerStack.homogeneous(FAST_SCATTERER),
            source=source,
            roulette=RouletteConfig(threshold=1e-2, boost=10),
            records=RecordConfig(absorption_grid=spec),
        )
        tally = Simulation(config).run(5_000, seed=seed)
        grid = tally.absorption_grid
        x = spec.axis_centres(0)
        w = grid.sum(axis=(1, 2))
        mean = (x * w).sum() / w.sum()
        return float(np.sqrt(((x - mean) ** 2 * w).sum() / w.sum()))

    def test_wider_sources_spread_absorption(self):
        pencil = self.absorption_spread(PencilBeam())
        gaussian = self.absorption_spread(GaussianBeam(sigma=3.0))
        uniform = self.absorption_spread(UniformDisc(radius=6.0))
        assert gaussian > pencil * 1.3
        assert uniform > pencil * 1.3

    def test_lasers_produce_small_beam(self):
        """'lasers do produce a small beam in a highly scattering medium':
        the pencil beam's absorption cloud stays tightly collimated."""
        pencil = self.absorption_spread(PencilBeam())
        # Lateral spread stays within a few transport mean free paths.
        l_star = FAST_SCATTERER.transport_mean_free_path
        assert pencil < 10.0 * l_star
