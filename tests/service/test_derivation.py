"""Service-side derivation graph: perturbed requests served by reweighting.

A request that differs from a cached run only in perturbable coefficients
(μa, μs) is answered by reweighting the cached parent's path records —
cache value ``"derived"`` — instead of re-simulating.  These tests cover
the resolution order (exact → prefix → derivation → miss), the store's
derivation addressing, chaining behind an in-flight parent, journal
provenance, and every fail-closed path back to a cold run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import RunRequest
from repro.perturb import PerturbationDelta, derive_tally
from repro.core import SimulationConfig
from repro.service import JobManager, ResultStore
from repro.service.fingerprint import derivation_basis, perturbable_coefficients
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


def _counter(manager: JobManager, name: str) -> float:
    return manager.telemetry.registry.counter(name).value


def _config(mu_a=1.0, mu_s=10.0) -> SimulationConfig:
    props = OpticalProperties(mu_a=mu_a, mu_s=mu_s, g=0.8, n=1.4)
    return SimulationConfig(
        stack=LayerStack.homogeneous(props, name="fast"), source=PencilBeam()
    )


def _request(mu_a=1.0, mu_s=10.0, **overrides) -> RunRequest:
    kwargs = dict(
        config=_config(mu_a, mu_s), n_photons=400, seed=7, task_size=200
    )
    kwargs.update(overrides)
    return RunRequest(**kwargs)


class TestDerivedServing:
    def test_perturbed_request_is_derived_from_cached_parent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            parent = manager.submit(_request())
            parent.result(timeout=120)
            assert parent.cache == "miss"
            job = manager.submit(_request(mu_a=1.05))
            tally = job.result(timeout=120)

        assert job.cache == "derived"
        assert not job.cache_hit  # exact-hit flag stays exact-only
        assert job.base_fingerprint == parent.fingerprint
        assert job.perturbation["d_mu_a"] == pytest.approx([0.05])
        assert job.perturbation["exact"] is True
        assert _counter(manager, "service.derivation.hits") == 1
        assert _counter(manager, "service.derivation.photons_saved") == 400

        # Bit-identical to deriving by hand from the stored parent (the
        # delta is built exactly the way the service builds it).
        stored = store.get(parent.fingerprint)
        stored.paths = store.get_paths(parent.fingerprint)
        delta = PerturbationDelta.between(
            perturbable_coefficients(_request()),
            perturbable_coefficients(_request(mu_a=1.05)),
        )
        assert tally == derive_tally(stored, delta)

    def test_repeat_of_derived_request_is_an_exact_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(_request()).result(timeout=120)
            first = manager.submit(_request(mu_a=1.05))
            first.result(timeout=120)
            repeat = manager.submit(_request(mu_a=1.05))
            repeat.result(timeout=120)
        assert first.cache == "derived"
        assert repeat.cache == "exact"
        assert repeat.cache_hit

    def test_second_perturbation_parents_off_simulation_born_entry(
        self, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            parent = manager.submit(_request())
            parent.result(timeout=120)
            manager.submit(_request(mu_a=1.05)).result(timeout=120)
            second = manager.submit(_request(mu_a=1.1))
            second.result(timeout=120)
        # The derived entry is cached and itself derivable, but the
        # simulation-born parent ranks first so the first-order scattering
        # error can never compound across generations.
        assert second.cache == "derived"
        assert second.base_fingerprint == parent.fingerprint

    def test_scattering_perturbation_is_flagged_first_order(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(_request()).result(timeout=120)
            job = manager.submit(_request(mu_s=10.3))
            job.result(timeout=120)
        assert job.cache == "derived"
        assert job.perturbation["exact"] is False
        assert job.perturbation["alpha_s"] == pytest.approx([1.03])

    def test_as_dict_reports_perturbation_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(_request()).result(timeout=120)
            job = manager.submit(_request(mu_a=1.05))
            job.result(timeout=120)
            payload = job.as_dict()
        assert payload["cache"] == "derived"
        assert payload["base_fingerprint"] == job.base_fingerprint
        assert payload["perturbation"] == job.perturbation
        assert "delta_photons" not in payload

    def test_derived_entry_records_parent_in_stored_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            parent = manager.submit(_request())
            parent.result(timeout=120)
            job = manager.submit(_request(mu_a=1.05))
            job.result(timeout=120)
            stored = store.get(job.fingerprint)
        derived_from = stored.provenance["derived_from"]
        assert derived_from["parent_fingerprint"] == parent.fingerprint
        assert derived_from["perturbation"] == job.perturbation
        assert derived_from["parent_derived"] is False

    def test_parent_without_records_falls_through_to_cold_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1, capture_paths=False) as manager:
            manager.submit(_request()).result(timeout=120)
            job = manager.submit(_request(mu_a=1.05))
            job.result(timeout=120)
        assert job.cache == "miss"
        assert _counter(manager, "service.derivation.hits") == 0

    def test_different_budget_never_derives(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(_request()).result(timeout=120)
            job = manager.submit(_request(mu_a=1.05, n_photons=600))
            job.result(timeout=120)
        # A derivation reweights the parent's detected ensemble: it can
        # never conjure photons, so a different budget must run cold.
        assert job.cache == "miss"


class TestDerivationChaining:
    def test_perturbed_submissions_chain_behind_inflight_parent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=2) as manager:
            parent = manager.submit(_request(n_photons=1200))
            a = manager.submit(_request(n_photons=1200, mu_a=1.05))
            b = manager.submit(_request(n_photons=1200, mu_a=1.1))
            parent.result(timeout=120)
            a.result(timeout=120)
            b.result(timeout=120)
        assert parent.cache == "miss"
        assert a.cache == "derived" and b.cache == "derived"
        assert a.base_fingerprint == parent.fingerprint
        assert b.base_fingerprint == parent.fingerprint
        assert _counter(manager, "service.chained") == 2
        assert _counter(manager, "service.derivation.hits") == 2

    def test_journal_started_record_carries_derivation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(
            store, max_workers=1, journal=tmp_path / "journal"
        ) as manager:
            manager.submit(_request()).result(timeout=120)
            job = manager.submit(_request(mu_a=1.05))
            job.result(timeout=120)
            journal_path = manager.journal.path

        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line
        ]
        started = [
            r
            for r in records
            if r["event"] == "started" and r["job_id"] == job.id
        ]
        assert len(started) == 1
        assert started[0]["cache"] == "derived"
        assert started[0]["base_fingerprint"] == job.base_fingerprint
        assert started[0]["perturbation"] == job.perturbation


class TestDerivationStore:
    def _seed(self, tmp_path):
        """A store holding one simulation-born captured parent."""
        store = ResultStore(tmp_path / "store")
        request = _request()
        with JobManager(store, max_workers=1) as manager:
            job = manager.submit(request)
            job.result(timeout=120)
        return store, request, job.fingerprint

    def test_best_derivation_requires_basis_budget_and_paths(self, tmp_path):
        store, request, fp = self._seed(tmp_path)
        basis = derivation_basis(request)
        assert store.best_derivation(basis, 400) == (
            fp,
            perturbable_coefficients(request),
            False,
        )
        assert store.best_derivation(basis, 800) is None  # other budget
        assert store.best_derivation("0" * 64, 400) is None  # other basis
        assert store.best_derivation(basis, 400, exclude=fp) is None

    def test_index_rebuild_recovers_derivation_metadata(self, tmp_path):
        store, request, fp = self._seed(tmp_path)
        basis = derivation_basis(request)
        (store.root / "index.json").unlink()

        rebuilt = ResultStore(store.root)
        hit = rebuilt.best_derivation(basis, 400)
        assert hit == (fp, perturbable_coefficients(request), False)
        assert rebuilt.get_paths(fp) == store.get_paths(fp)

    def test_prefix_extended_entry_is_not_flagged_derived(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(_request()).result(timeout=120)
            extended = manager.submit(_request(n_photons=800))
            extended.result(timeout=120)
        assert extended.cache == "prefix"
        (store.root / "index.json").unlink()
        rebuilt = ResultStore(store.root)
        # Prefix-extended entries also carry ``derived_from`` provenance but
        # are exact simulation results, never perturbation-derived.
        entry = rebuilt.fingerprints()
        assert extended.fingerprint in entry
        # It must not be offered as a reweighting parent: it carries no
        # path records (the primed frontier spans have none).
        basis = derivation_basis(_request(n_photons=800))
        assert rebuilt.best_derivation(basis, 800) is None

    def test_evicted_parent_is_no_longer_offered(self, tmp_path):
        store, request, fp = self._seed(tmp_path)
        basis = derivation_basis(request)
        assert store.best_derivation(basis, 400) is not None
        store.clear()
        assert store.best_derivation(basis, 400) is None
        assert store.get_paths(fp) is None
