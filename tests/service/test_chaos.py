"""End-to-end chaos: ``kill -9`` the HTTP service mid-job and restart it.

These tests drive the real ``tissue-mc serve-http`` process over the wire —
the same artifact CI's ``service-chaos`` job exercises:

* **SIGKILL + restart** — the acceptance criterion of the crash-safety
  work: a job interrupted by ``kill -9`` is replayed from the journal on
  the next start (same job id), resumes from its checkpoints, and its
  result is bit-identical to an uninterrupted in-process run.
* **SIGTERM drain** — graceful degradation: the server stops admitting,
  finishes running flights within the drain budget, and exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import RunRequest, run
from repro.io import load_tally
from repro.service import request_fingerprint

pytestmark = pytest.mark.slow

_SRC = str(Path(__file__).resolve().parents[2] / "src")

# ~30 photons/s on the white-matter model: 6 tasks of ~1.7 s each — long
# enough to kill mid-run with tasks durably checkpointed on both sides.
REQUEST_BODY = {"model": "white_matter", "n_photons": 300, "seed": 13, "task_size": 50}


class Server:
    """One ``serve-http`` subprocess with line-buffered stdout capture."""

    def __init__(self, tmp_path: Path, *extra: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve-http",
                "--port", "0",
                "--store", str(tmp_path / "store"),
                "--journal", str(tmp_path / "journal"),
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: list[str] = []
        self._new_line = threading.Condition()
        # A dedicated reader thread: selecting on a buffered TextIOWrapper
        # misses lines the wrapper already swallowed, so just read eagerly.
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.url = self._await_line("# simulation service listening on ").split()[-1]

    def _pump(self) -> None:
        for line in self.proc.stdout:
            with self._new_line:
                self.lines.append(line)
                self._new_line.notify_all()
        with self._new_line:
            self._new_line.notify_all()  # EOF: wake any waiter to fail fast

    def _await_line(self, prefix: str, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        scanned = 0
        with self._new_line:
            while True:
                for line in self.lines[scanned:]:
                    if line.startswith(prefix):
                        return line.strip()
                scanned = len(self.lines)
                remaining = deadline - time.monotonic()
                if remaining <= 0 or (
                    self.proc.poll() is not None and not self._reader.is_alive()
                ):
                    raise AssertionError(
                        f"server never printed {prefix!r}; "
                        f"output so far: {self.lines!r}"
                    )
                self._new_line.wait(min(remaining, 0.2))

    def kill9(self) -> None:
        self.proc.kill()  # SIGKILL: no drain, no journal compaction
        self.proc.wait(timeout=10)

    def terminate(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=120)
        self._reader.join(timeout=10)
        return self.proc.returncode

    def __del__(self) -> None:  # belt and braces for failed tests
        if self.proc.poll() is None:
            self.proc.kill()


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        f"{url}/v2/runs",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def _get(url: str, path: str):
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as resp:
        return resp.status, resp.read()


def _poll_done(url: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, raw = _get(url, f"/v2/runs/{job_id}")
        payload = json.loads(raw)
        if payload["state"] in ("done", "failed", "cancelled"):
            return payload
        time.sleep(0.2)
    raise TimeoutError(f"job {job_id} did not settle")


def _await_checkpointed(journal_root: Path, fingerprint: str, timeout: float = 60.0):
    """Block until the flight has durably checkpointed at least one task."""
    manifest = journal_root / "checkpoints" / fingerprint / "checkpoint.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if json.loads(manifest.read_text())["tasks"]:
                return
        except (OSError, json.JSONDecodeError, KeyError):
            pass
        time.sleep(0.1)
    raise AssertionError(f"no task checkpointed under {manifest}")


def test_kill9_restart_completes_bit_identical(tmp_path):
    fingerprint = request_fingerprint(RunRequest(**REQUEST_BODY))

    # --- first life: submit, wait for durable progress, kill -9 ------------
    first = Server(tmp_path)
    job = _post(first.url, REQUEST_BODY)
    assert job["state"] in ("queued", "running")
    _await_checkpointed(tmp_path / "journal", fingerprint)
    first.kill9()

    # --- second life: same journal + store ---------------------------------
    second = Server(tmp_path)
    try:
        assert "(1 job(s) replayed)" in second._await_line("# journal:")

        done = _poll_done(second.url, job["id"])  # replay preserves the id
        assert done["state"] == "done"
        assert done["recovered"] is True
        assert done["fingerprint"] == fingerprint

        _, data = _get(second.url, f"/v2/results/{fingerprint}")
        archive = tmp_path / "recovered.npz"
        archive.write_bytes(data)
    finally:
        assert second.terminate() == 0

    # The acceptance bar: bit-identical to an uninterrupted run.
    assert load_tally(archive) == run(RunRequest(**REQUEST_BODY)).tally


def test_sigterm_drains_cleanly(tmp_path):
    server = Server(tmp_path, "--drain-timeout", "120")
    body = dict(REQUEST_BODY, n_photons=100, task_size=100)  # one ~3 s task
    job = _post(server.url, body)
    assert job["state"] in ("queued", "running")

    assert server.terminate() == 0
    out = "".join(server.lines)
    assert "# drained cleanly, shutting down" in out

    # Drain finished the flight: the result is durable in the store and the
    # journal replays nothing on the next start.
    third = Server(tmp_path)
    try:
        assert "(0 job(s) replayed)" in third._await_line("# journal:")
        repeat = _post(third.url, body)
        assert repeat["state"] == "done" and repeat["cache_hit"] is True
    finally:
        assert third.terminate() == 0
