"""HTTP front end: the full serve → poll → fetch → cache-hit lifecycle.

``test_lifecycle_and_cache_hit`` is the subsystem's acceptance test: a
cached ``GET /v2/results/<fingerprint>`` must be bit-identical to a fresh
``api.run`` of the same request, served without re-simulating (cache-hit
counter increments, zero new kernel spans).
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request

import numpy as np

import pytest

from repro.api import RunRequest, run
from repro.io import load_tally
from repro.observe import Telemetry
from repro.service import (
    JobManager,
    request_to_json,
    JobState,
    ResultStore,
    ServiceServer,
    request_from_json,
    request_fingerprint,
)

REQUEST_BODY = {"model": "white_matter", "n_photons": 400, "seed": 7, "task_size": 200}


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def _get_bytes(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _poll_done(url: str, job_id: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, payload = _get(f"{url}/v2/runs/{job_id}")
        if payload["state"] in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
            return payload
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} did not settle")


@pytest.fixture
def server(tmp_path):
    telemetry = Telemetry.in_memory()
    store = ResultStore(tmp_path / "store", telemetry=telemetry)
    manager = JobManager(store, max_workers=2, telemetry=telemetry)
    with ServiceServer(manager) as srv:
        yield srv


def _kernel_spans(server) -> int:
    events = server.manager.telemetry.sink.events
    return sum(
        1
        for e in events
        if e["event"] == "span_start" and e.get("name") == "kernel.batch"
    )


def _cheap_tally():
    """A real tally from the fast test medium (~0.2 s, not white matter)."""
    from .conftest import fast_service_config

    return run(RunRequest(config=fast_service_config(), n_photons=50)).tally


def _counter_value(metrics: dict, name: str) -> float:
    for row in metrics["counters"]:
        if row["name"] == name:
            return row["value"]
    return 0.0


class TestLifecycle:
    def test_lifecycle_and_cache_hit(self, server):
        url = server.url

        # --- submit (cold) --------------------------------------------------
        status, job = _post(f"{url}/v2/runs", REQUEST_BODY)
        assert status == 202
        assert job["state"] in (JobState.QUEUED, JobState.RUNNING)

        # --- poll to completion --------------------------------------------
        done = _poll_done(url, job["id"])
        assert done["state"] == JobState.DONE
        assert done["error"] is None

        # --- fetch the archive and compare against a direct api.run --------
        data = _get_bytes(f"{url}/v2/results/{done['fingerprint']}")
        archive = server.manager.store.root / "fetched.npz"
        archive.write_bytes(data)
        served = load_tally(archive)
        archive.unlink()
        direct = run(RunRequest(**REQUEST_BODY)).tally
        assert served == direct  # Tally.__eq__: np.array_equal on every array
        assert served.provenance["fingerprint"] == done["fingerprint"]
        assert done["fingerprint"] == request_fingerprint(RunRequest(**REQUEST_BODY))

        # --- resubmit: answered from the store, no re-simulation -----------
        _, metrics_before = _get(f"{url}/v2/metrics")
        hits_before = _counter_value(metrics_before, "service.cache.hits")
        spans_before = _kernel_spans(server)

        status, repeat = _post(f"{url}/v2/runs", REQUEST_BODY)
        assert status == 200  # completed at submission time
        assert repeat["state"] == JobState.DONE
        assert repeat["cache_hit"] is True

        _, metrics_after = _get(f"{url}/v2/metrics")
        assert (
            _counter_value(metrics_after, "service.cache.hits") == hits_before + 1
        )
        assert _kernel_spans(server) == spans_before  # zero new kernel spans

        cached = load_tally(
            server.manager.store.path(repeat["fingerprint"]),
            expected_fingerprint=repeat["fingerprint"],
        )
        assert cached == direct

    def test_metrics_endpoint_shape(self, server):
        status, metrics = _get(f"{server.url}/v2/metrics")
        assert status == 200
        assert set(metrics) == {"counters", "gauges", "histograms"}

    def test_healthz(self, server):
        assert _get(f"{server.url}/v2/healthz") == (
            200, {"ok": True, "draining": False}
        )


class TestErrors:
    def _status_of(self, call):
        with pytest.raises(urllib.error.HTTPError) as err:
            call()
        return err.value.code, json.loads(err.value.read())

    def test_unknown_job_404(self, server):
        code, payload = self._status_of(lambda: _get(f"{server.url}/v2/runs/nope"))
        assert code == 404
        assert payload["error"]["code"] == "not_found"
        assert "unknown job" in payload["error"]["message"]

    def test_missing_result_404(self, server):
        code, _ = self._status_of(
            lambda: _get(f"{server.url}/v2/results/{'0' * 64}")
        )
        assert code == 404

    def test_malformed_fingerprint_400(self, server):
        code, _ = self._status_of(
            lambda: _get(f"{server.url}/v2/results/..%2Fescape")
        )
        assert code == 400

    def test_unknown_field_400(self, server):
        code, payload = self._status_of(
            lambda: _post(f"{server.url}/v2/runs", {"model": "white_matter", "fotons": 5})
        )
        assert code == 400
        assert payload["error"]["code"] == "bad_request"
        assert "fotons" in payload["error"]["message"]

    def test_invalid_model_400(self, server):
        code, _ = self._status_of(
            lambda: _post(f"{server.url}/v2/runs", {"model": "gray_matter"})
        )
        assert code == 400

    def test_non_object_body_400(self, server):
        code, _ = self._status_of(lambda: _post(f"{server.url}/v2/runs", ["nope"]))
        assert code == 400

    def test_unknown_endpoint_404(self, server):
        code, _ = self._status_of(lambda: _get(f"{server.url}/v2/everything"))
        assert code == 404


class TestRequestFromJson:
    def test_round_trip_fields(self):
        request = request_from_json(dict(REQUEST_BODY, gate=[5.0, 50.0], workers=2))
        assert request.model == "white_matter"
        assert request.gate == (5.0, 50.0)
        assert request.workers == 2

    def test_model_required(self):
        with pytest.raises(ValueError, match="model"):
            request_from_json({"n_photons": 100})

    def test_forbidden_fields_rejected(self):
        for field in ("mode", "checkpoint", "telemetry", "on_server_start"):
            with pytest.raises(ValueError, match="unknown request field"):
                request_from_json({"model": "white_matter", field: "x"})

    def test_bad_gate_rejected(self):
        with pytest.raises(ValueError, match="gate"):
            request_from_json({"model": "white_matter", "gate": [1.0]})

    def test_task_range_round_trips(self):
        # Journal replay depends on this: a partial-range request must
        # re-materialise with the identical range (same fingerprint).
        request = request_from_json(dict(REQUEST_BODY, task_range=[1, 2]))
        assert request.task_range == (1, 2)
        wire = request_to_json(request)
        assert wire["task_range"] == [1, 2]
        assert request_from_json(wire) == request

    def test_bad_task_range_rejected(self):
        for bad in ([1], [0.5, 2], "0:2", [1, 2, 3]):
            with pytest.raises(ValueError, match="task_range"):
                request_from_json(dict(REQUEST_BODY, task_range=bad))

    def test_frontier_requests_are_unexpressible(self):
        from dataclasses import replace

        from repro.core.reduce import TallyFrontier

        request = request_from_json(dict(REQUEST_BODY))
        assert request_to_json(replace(request, frontier=TallyFrontier([]))) is None
        assert request_to_json(replace(request, capture_frontier=True)) is None


class TestBackpressure:
    """Admission control speaks HTTP: 429/503 with Retry-After, never a hang."""

    def _refused(self, call):
        with pytest.raises(urllib.error.HTTPError) as err:
            call()
        return err.value.code, err.value.headers, json.loads(err.value.read())

    def test_over_budget_429_without_retry_after(self, tmp_path):
        from repro.service import AdmissionController

        manager = JobManager(ResultStore(tmp_path / "store"))
        admission = AdmissionController(max_photons_per_request=100)
        with ServiceServer(manager, admission=admission) as server:
            code, headers, payload = self._refused(
                lambda: _post(f"{server.url}/v2/runs", REQUEST_BODY)
            )
        assert code == 429
        assert payload["error"]["code"] == "over_budget"
        assert "admission refused" in payload["error"]["message"]
        assert payload["error"]["retry_after"] is None
        assert headers.get("Retry-After") is None  # retrying cannot succeed

    def test_rate_limited_429_with_retry_after(self, tmp_path):
        from repro.service import AdmissionController

        manager = JobManager(ResultStore(tmp_path / "store"))
        admission = AdmissionController(
            rate_photons_per_s=100, burst_photons=400
        )
        with ServiceServer(manager, admission=admission) as server:
            first = _post(f"{server.url}/v2/runs", REQUEST_BODY)  # drains burst
            assert first[0] == 202
            code, headers, payload = self._refused(
                lambda: _post(f"{server.url}/v2/runs", dict(REQUEST_BODY, seed=8))
            )
        assert code == 429
        assert payload["error"]["code"] == "rate"
        assert float(headers["Retry-After"]) >= 1

    def test_saturated_queue_503(self, tmp_path):
        import threading

        from repro.service import AdmissionController

        release = threading.Event()
        canned = _cheap_tally()

        def blocking_runner(request):
            release.wait(30)
            return canned

        manager = JobManager(
            ResultStore(tmp_path / "store"), max_workers=1, runner=blocking_runner
        )
        admission = AdmissionController(max_queue=1)
        try:
            with ServiceServer(manager, admission=admission) as server:
                assert _post(f"{server.url}/v2/runs", REQUEST_BODY)[0] == 202
                code, headers, payload = self._refused(
                    lambda: _post(f"{server.url}/v2/runs", dict(REQUEST_BODY, seed=8))
                )
                assert code == 503
                assert payload["error"]["code"] == "saturated"
                assert headers["Retry-After"] is not None
                release.set()
        finally:
            release.set()

    def test_inflight_quota_is_per_client_header(self, tmp_path):
        import threading

        from repro.service import AdmissionController

        release = threading.Event()
        canned = _cheap_tally()

        def blocking_runner(request):
            release.wait(30)
            return canned

        manager = JobManager(
            ResultStore(tmp_path / "store"), max_workers=1, runner=blocking_runner
        )
        admission = AdmissionController(max_inflight_per_client=1)

        def post_as(url, body, client):
            req = urllib.request.Request(
                url, data=json.dumps(body).encode(), method="POST",
                headers={"Content-Type": "application/json", "X-Client": client},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())

        try:
            with ServiceServer(manager, admission=admission) as server:
                url = f"{server.url}/v2/runs"
                assert post_as(url, REQUEST_BODY, "alice")[0] == 202
                code, _, payload = self._refused(
                    lambda: post_as(url, dict(REQUEST_BODY, seed=8), "alice")
                )
                assert code == 429 and payload["error"]["code"] == "inflight"
                # A different identity is not throttled by alice's quota.
                assert post_as(url, dict(REQUEST_BODY, seed=9), "bob")[0] == 202
                release.set()
        finally:
            release.set()


class TestPriorities:
    def test_priority_header_lands_on_the_job(self, server):
        req = urllib.request.Request(
            f"{server.url}/v2/runs",
            data=json.dumps(REQUEST_BODY).encode(),
            method="POST",
            headers={"Content-Type": "application/json", "X-Priority": "high"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            payload = json.loads(resp.read())
        assert payload["priority"] == "high"
        _poll_done(server.url, payload["id"])

    def test_unknown_priority_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/v2/runs",
            data=json.dumps(REQUEST_BODY).encode(),
            method="POST",
            headers={"Content-Type": "application/json", "X-Priority": "urgent"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400
        assert "urgent" in json.loads(err.value.read())["error"]["message"]


class TestGracefulShutdown:
    def test_draining_server_refuses_submissions(self, server):
        server.draining = True
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{server.url}/v2/runs", REQUEST_BODY)
        assert err.value.code == 503
        assert err.value.headers["Retry-After"] == "30"
        assert _get(f"{server.url}/v2/healthz")[1]["draining"] is True

    def test_drain_of_idle_server_returns_true_and_closes(self, tmp_path):
        server = ServiceServer(JobManager(ResultStore(tmp_path / "store")))
        server.start()
        assert server.drain(timeout=5.0) is True
        # Fully closed: the port no longer answers.
        with pytest.raises(OSError):
            _get(f"{server.url}/v2/healthz")

    def test_close_is_idempotent_and_joins_workers(self, tmp_path):
        import threading

        manager = JobManager(ResultStore(tmp_path / "store"))
        server = ServiceServer(manager)
        server.start()
        server.close()
        server.close()  # second close: no-op, no error
        manager.close()  # manager close is idempotent too
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith(("repro-service", "repro-http"))
        ]


def _archive_parts(raw: bytes) -> tuple[dict, dict]:
    """Split an .npz archive into (header sans provenance, array bytes)."""
    with np.load(io.BytesIO(raw)) as z:
        arrays = {k: z[k].tobytes() for k in z.files if k != "header"}
        header = json.loads(bytes(z["header"]).decode("utf-8"))
    header.pop("provenance", None)
    return header, arrays


class TestApiV2:
    # Budgets kept small: white_matter photons are expensive, and this
    # class runs three simulations (base, delta, cold comparator).
    SMALL = dict(REQUEST_BODY, n_photons=100, task_size=50)
    LARGE = dict(REQUEST_BODY, n_photons=200, task_size=50)

    def test_v1_is_gone(self, server):
        """The retired /v1 prefix answers 410 with a pointer to /v2."""

        def status_of(call):
            with pytest.raises(urllib.error.HTTPError) as err:
                call()
            return err.value.code, json.loads(err.value.read())

        for call, replacement in [
            (lambda: _post(f"{server.url}/v1/runs", REQUEST_BODY), "/v2/runs"),
            (lambda: _get(f"{server.url}/v1/runs/abc"), "/v2/runs/abc"),
            (lambda: _get(f"{server.url}/v1/metrics"), "/v2/metrics"),
            (lambda: _get(f"{server.url}/v1/healthz"), "/v2/healthz"),
            (
                lambda: _get(f"{server.url}/v1/results/{'0' * 64}"),
                f"/v2/results/{'0' * 64}",
            ),
        ]:
            code, payload = status_of(call)
            assert code == 410
            assert payload["error"]["code"] == "gone"
            assert replacement in payload["error"]["message"]

    def test_v2_result_matches_job_view(self, server):
        status, job = _post(f"{server.url}/v2/runs", REQUEST_BODY)
        assert status == 202
        done = _poll_done(server.url, job["id"])
        assert done["cache"] == "miss"
        _, via_get = _get(f"{server.url}/v2/runs/{job['id']}")
        assert via_get == done
        data = _get_bytes(f"{server.url}/v2/results/{done['fingerprint']}")
        assert data  # archive served once the run settled

    def test_prefix_extension_is_byte_identical_to_cold_run(self, server, tmp_path):
        """The PR's acceptance test: a budget-extended archive must match a
        from-scratch full-budget archive byte for byte, provenance aside."""
        _, base = _post(f"{server.url}/v2/runs", self.SMALL)
        base_done = _poll_done(server.url, base["id"], timeout=120)
        assert base_done["cache"] == "miss"

        _, ext = _post(f"{server.url}/v2/runs", self.LARGE)
        ext_done = _poll_done(server.url, ext["id"], timeout=120)
        assert ext_done["state"] == JobState.DONE
        assert ext_done["cache"] == "prefix"
        assert ext_done["base_fingerprint"] == base_done["fingerprint"]
        assert ext_done["delta_photons"] == 100
        extended = _get_bytes(f"{server.url}/v2/results/{ext_done['fingerprint']}")

        cold_store = ResultStore(tmp_path / "cold-store")
        # capture_paths=False: an extension's archive is paths-less (the
        # primed frontier spans carry no records), so the comparator must
        # not add a paths section the extension can't have.
        with ServiceServer(
            JobManager(cold_store, max_workers=2, capture_paths=False)
        ) as cold_server:
            _, cold = _post(f"{cold_server.url}/v2/runs", self.LARGE)
            cold_done = _poll_done(cold_server.url, cold["id"], timeout=120)
            assert cold_done["cache"] == "miss"
            cold_bytes = _get_bytes(
                f"{cold_server.url}/v2/results/{cold_done['fingerprint']}"
            )

        assert ext_done["fingerprint"] == cold_done["fingerprint"]
        ext_header, ext_arrays = _archive_parts(extended)
        cold_header, cold_arrays = _archive_parts(cold_bytes)
        assert ext_header == cold_header  # tally + frontier layout
        assert ext_arrays == cold_arrays  # every array byte-identical

    def test_prefix_provenance_in_archive(self, server):
        _, base = _post(f"{server.url}/v2/runs", self.SMALL)
        base_done = _poll_done(server.url, base["id"], timeout=120)
        _, ext = _post(f"{server.url}/v2/runs", self.LARGE)
        ext_done = _poll_done(server.url, ext["id"], timeout=120)
        raw = _get_bytes(f"{server.url}/v2/results/{ext_done['fingerprint']}")
        with np.load(io.BytesIO(raw)) as z:
            header = json.loads(bytes(z["header"]).decode("utf-8"))
        derived = header["provenance"]["derived_from"]
        assert derived["base_fingerprint"] == base_done["fingerprint"]
        assert derived["delta_photons"] == 100

    def test_task_range_over_the_wire(self, server):
        _, job = _post(f"{server.url}/v2/runs", dict(REQUEST_BODY, task_range=[0, 1]))
        done = _poll_done(server.url, job["id"])
        assert done["state"] == JobState.DONE
        raw = _get_bytes(f"{server.url}/v2/results/{done['fingerprint']}")
        with np.load(io.BytesIO(raw)) as z:
            header = json.loads(bytes(z["header"]).decode("utf-8"))
        assert header["n_launched"] == 200  # one 200-photon task of the budget

    def test_bad_task_range_gets_enveloped_400(self, server):
        try:
            _post(f"{server.url}/v2/runs", dict(REQUEST_BODY, task_range="0:2"))
        except urllib.error.HTTPError as exc:
            payload = json.loads(exc.read())
            assert exc.code == 400
            assert payload["error"]["code"] == "bad_request"
            assert "task_range" in payload["error"]["message"]
        else:
            pytest.fail("expected 400")


def test_smoke_end_to_end(tmp_path):
    """The CI service smoke: cold run, poll, fetch, bit-identical, cache hit."""
    store = ResultStore(tmp_path / "store")
    with ServiceServer(JobManager(store, max_workers=2)) as server:
        status, job = _post(f"{server.url}/v2/runs", REQUEST_BODY)
        done = _poll_done(server.url, job["id"])
        assert done["state"] == JobState.DONE
        data = _get_bytes(f"{server.url}/v2/results/{done['fingerprint']}")
        path = tmp_path / "result.npz"
        path.write_bytes(data)
        assert load_tally(path) == run(RunRequest(**REQUEST_BODY)).tally
        status, repeat = _post(f"{server.url}/v2/runs", REQUEST_BODY)
        assert status == 200 and repeat["cache_hit"]
