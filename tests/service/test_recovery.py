"""Crash recovery: kill a JobManager mid-run, restart, resume bit-identical.

``test_kill_and_restart_bit_identical`` is the tentpole acceptance test: a
manager is abandoned while its flight is mid-simulation under a
``FaultInjector`` (first attempt of one task crashed, two tasks durably
checkpointed), a second manager is started on the same journal and store,
and the replayed job's final tally must equal — via the strict
``Tally.__eq__`` — an uninterrupted run of the same request.
"""

from __future__ import annotations

import threading

import pytest

from repro import api
from repro.api import RunRequest
from repro.distributed import (
    DataManager,
    FaultInjector,
    SerialBackend,
    WorkerCrash,
)
from repro.observe import Telemetry
from repro.service import (
    JobJournal,
    JobManager,
    JobState,
    ResultStore,
    request_fingerprint,
    request_to_json,
)

# 4 tasks of 50 photons: enough structure to checkpoint half a run and
# crash in the middle, small enough to simulate in seconds.
REQUEST = RunRequest(model="white_matter", n_photons=200, seed=11, task_size=50)


def _canned_tally():
    """A real (cheap) tally for runner stubs — content is irrelevant."""
    from .conftest import fast_service_config

    return api.run(RunRequest(config=fast_service_config(), n_photons=50)).tally


class _CrashingRunner:
    """Runner for the manager that will be 'killed'.

    Honors the checkpoint the manager attached to the request, injects a
    first-attempt crash on task 1 (FaultInjector), and — once ``crash_at``
    is reached — signals ``reached`` and blocks until ``released``, after
    which every attempt raises.  Blocking-then-raising models a process
    death: the journal keeps the job's ``started`` record, the checkpoint
    directory keeps the completed tasks, and no terminal event is written.
    """

    def __init__(self, crash_at: int) -> None:
        self.crash_at = crash_at
        self.reached = threading.Event()
        self.released = threading.Event()
        self._inject = FaultInjector(fail_tasks_once=frozenset({1}))

    def _task_runner(self, config, task, **kwargs):
        if task.task_index >= self.crash_at:
            self.reached.set()
            self.released.wait(60)
            raise WorkerCrash("simulated process death (injected)")
        return self._inject(config, task, **kwargs)

    def __call__(self, request: RunRequest):
        manager = DataManager(
            api.build_config(request),
            request.n_photons,
            seed=request.seed,
            task_size=request.resolved_task_size(),
            checkpoint=request.checkpoint,
            task_runner=self._task_runner,
            max_retries=1,
        )
        return manager.run(SerialBackend()).tally


@pytest.mark.slow
def test_kill_and_restart_bit_identical(tmp_path):
    journal_root = tmp_path / "journal"
    crasher = _CrashingRunner(crash_at=2)
    telemetry = Telemetry()

    # --- first life: run until two tasks are checkpointed, then "die" ------
    manager1 = JobManager(
        ResultStore(tmp_path / "store"), journal=JobJournal(journal_root),
        runner=crasher,
    )
    job1 = manager1.submit(REQUEST)
    assert crasher.reached.wait(60), "flight never reached the crash point"
    assert job1.state == JobState.RUNNING  # mid-flight when the process dies

    # The durable state a real kill -9 would leave behind:
    fingerprint = request_fingerprint(REQUEST)
    checkpoints = JobJournal(journal_root).checkpoint_dir(fingerprint)
    assert (checkpoints / "checkpoint.json").exists()

    # --- second life: same journal + store, a healthy default runner -------
    manager2 = JobManager(
        ResultStore(tmp_path / "store"),
        journal=JobJournal(journal_root),
        telemetry=telemetry,
    )
    try:
        recovered = manager2.job(job1.id)
        assert recovered is not None, "replay must preserve the job id"
        assert recovered.recovered
        resumed = recovered.result(timeout=120)
    finally:
        # Let the abandoned flight fail and join manager1's threads; its
        # journal handle points at the pre-compaction inode, so nothing it
        # writes now is visible to manager2.
        crasher.released.set()
        manager1.close()
        manager2.close()

    assert telemetry.registry.counter("service.recovered").value == 1
    assert resumed == api.run(REQUEST).tally  # strict Tally.__eq__
    assert not checkpoints.exists()  # spent checkpoints are reclaimed


class TestReplayMechanics:
    """Replay paths that need no real simulation (canned runner)."""

    def test_queued_job_is_reenqueued_and_runs(self, tmp_path):
        tally = _canned_tally()
        with JobJournal(tmp_path / "j") as journal:
            journal.record(
                "submitted", "q1",
                fingerprint=request_fingerprint(REQUEST),
                request=request_to_json(REQUEST),
            )
        telemetry = Telemetry()
        with JobManager(
            journal=JobJournal(tmp_path / "j"),
            runner=lambda request: tally,
            telemetry=telemetry,
        ) as manager:
            job = manager.job("q1")
            assert job is not None and job.recovered
            assert job.result(timeout=30) == tally
        assert telemetry.registry.counter("service.recovered").value == 1

    def test_result_already_in_store_completes_without_rerun(self, tmp_path):
        # The crash lost the acknowledgement, not the result: replay must
        # answer from the store, not re-simulate.
        fingerprint = request_fingerprint(REQUEST)
        store = ResultStore(tmp_path / "store")
        store.put(fingerprint, _canned_tally())
        with JobJournal(tmp_path / "j") as journal:
            journal.record(
                "submitted", "s1",
                fingerprint=fingerprint, request=request_to_json(REQUEST),
            )
            journal.record("started", "s1")

        def exploding_runner(request):
            raise AssertionError("must not re-simulate a stored result")

        with JobManager(
            store, journal=JobJournal(tmp_path / "j"), runner=exploding_runner
        ) as manager:
            job = manager.job("s1")
            assert job.state == JobState.DONE
            assert job.cache_hit and job.recovered

    def test_unjournalable_request_fails_closed(self, tmp_path):
        with JobJournal(tmp_path / "j") as journal:
            journal.record("submitted", "u1", fingerprint="f" * 64, request=None)
        telemetry = Telemetry()
        with JobManager(
            journal=JobJournal(tmp_path / "j"), telemetry=telemetry
        ) as manager:
            job = manager.job("u1")
            assert job.state == JobState.FAILED
            assert "not recoverable" in job.error
        assert (
            telemetry.registry.counter("service.journal.unrecoverable").value == 1
        )

    def test_fingerprint_drift_fails_closed(self, tmp_path):
        # Payload replays fine but hashes to a different address than the
        # journal recorded (canonicalization version bump): refuse.
        with JobJournal(tmp_path / "j") as journal:
            journal.record(
                "submitted", "d1",
                fingerprint="0" * 64, request=request_to_json(REQUEST),
            )
        with JobManager(journal=JobJournal(tmp_path / "j")) as manager:
            job = manager.job("d1")
            assert job.state == JobState.FAILED
            assert "fingerprint drift" in job.error

    def test_replay_then_compact_leaves_settled_journal_empty(self, tmp_path):
        tally = _canned_tally()
        with JobJournal(tmp_path / "j") as journal:
            journal.record(
                "submitted", "c1",
                fingerprint=request_fingerprint(REQUEST),
                request=request_to_json(REQUEST),
            )
        with JobManager(
            journal=JobJournal(tmp_path / "j", max_bytes=1),
            runner=lambda request: tally,
        ) as manager:
            manager.job("c1").result(timeout=30)
        assert JobJournal(tmp_path / "j").replay() == []
