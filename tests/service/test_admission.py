"""Admission control: token buckets, quotas, queue bounds, backpressure."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.api import RunRequest
from repro.observe import Telemetry
from repro.service import AdmissionController, JobState, estimate_cost


def _request(n_photons: int = 1000) -> RunRequest:
    return RunRequest(model="white_matter", n_photons=n_photons)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_estimate_cost_is_photon_budget():
    assert estimate_cost(_request(12345)) == 12345.0


class TestDefaults:
    def test_unconfigured_controller_admits_everything(self):
        ctrl = AdmissionController(max_queue=None)
        for _ in range(100):
            assert ctrl.admit("c", _request(), queue_depth=10_000).admitted

    def test_admitted_decision_shape(self):
        decision = AdmissionController().admit("c", _request(), queue_depth=0)
        assert decision.admitted and decision.status == 202
        assert decision.reason is None and decision.retry_after is None


class TestQueueBound:
    def test_saturated_queue_rejects_503(self):
        ctrl = AdmissionController(max_queue=4, saturation_retry_after=2.5)
        decision = ctrl.admit("c", _request(), queue_depth=4)
        assert not decision.admitted
        assert decision.status == 503
        assert decision.reason == "saturated"
        assert decision.retry_after == 2.5

    def test_below_bound_admits(self):
        ctrl = AdmissionController(max_queue=4)
        assert ctrl.admit("c", _request(), queue_depth=3).admitted


class TestRateLimit:
    def test_burst_then_throttle_then_refill(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_queue=None, rate_photons_per_s=1000, burst_photons=2000, clock=clock
        )
        # Burst capacity admits two 1000-photon requests back to back.
        assert ctrl.admit("c", _request(1000)).admitted
        assert ctrl.admit("c", _request(1000)).admitted
        # Bucket empty: the third is throttled with an exact refill hint.
        decision = ctrl.admit("c", _request(1000))
        assert not decision.admitted and decision.status == 429
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(1.0)
        # After the hinted wait the request is admitted.
        clock.advance(1.0)
        assert ctrl.admit("c", _request(1000)).admitted

    def test_buckets_are_per_client(self):
        ctrl = AdmissionController(
            max_queue=None, rate_photons_per_s=1000, burst_photons=1000,
            clock=FakeClock(),
        )
        assert ctrl.admit("alice", _request(1000)).admitted
        assert not ctrl.admit("alice", _request(1000)).admitted
        assert ctrl.admit("bob", _request(1000)).admitted

    def test_request_larger_than_burst_drains_bucket_but_is_servable(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_queue=None, rate_photons_per_s=100, burst_photons=1000, clock=clock
        )
        # Cost 5000 > burst 1000: charged at the bucket capacity, not refused
        # forever.
        assert ctrl.admit("c", _request(5000)).admitted
        decision = ctrl.admit("c", _request(5000))
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(10.0)  # 1000 tokens @ 100/s

    def test_burst_defaults_to_ten_seconds_of_refill(self):
        ctrl = AdmissionController(rate_photons_per_s=50)
        assert ctrl.burst == 500.0


class TestPerRequestCeiling:
    def test_over_budget_is_429_with_no_retry_hint(self):
        ctrl = AdmissionController(max_photons_per_request=10_000)
        decision = ctrl.admit("c", _request(10_001), queue_depth=0)
        assert not decision.admitted and decision.status == 429
        assert decision.reason == "over_budget"
        assert decision.retry_after is None

    def test_at_budget_admits(self):
        ctrl = AdmissionController(max_photons_per_request=10_000)
        assert ctrl.admit("c", _request(10_000)).admitted


class TestInflightQuota:
    def test_quota_blocks_and_lazily_prunes(self):
        ctrl = AdmissionController(max_queue=None, max_inflight_per_client=2)
        live = [SimpleNamespace(state=JobState.RUNNING) for _ in range(2)]
        for job in live:
            assert ctrl.admit("c", _request()).admitted
            ctrl.track("c", job)
        decision = ctrl.admit("c", _request())
        assert not decision.admitted and decision.status == 429
        assert decision.reason == "inflight"
        assert decision.retry_after == 1.0
        # Settling a job frees the slot without any completion callback.
        live[0].state = JobState.DONE
        assert ctrl.admit("c", _request()).admitted

    def test_quota_is_per_client(self):
        ctrl = AdmissionController(max_queue=None, max_inflight_per_client=1)
        assert ctrl.admit("alice", _request()).admitted
        ctrl.track("alice", SimpleNamespace(state=JobState.QUEUED))
        assert not ctrl.admit("alice", _request()).admitted
        assert ctrl.admit("bob", _request()).admitted


class TestDecisionOrdering:
    def test_saturation_rejection_does_not_charge_the_bucket(self):
        ctrl = AdmissionController(
            max_queue=1, rate_photons_per_s=1000, burst_photons=1000,
            clock=FakeClock(),
        )
        assert ctrl.admit("c", _request(1000), queue_depth=1).status == 503
        # The 503 consumed no tokens: the same request fits once unsaturated.
        assert ctrl.admit("c", _request(1000), queue_depth=0).admitted


class TestTelemetry:
    def test_admitted_and_rejected_counters(self):
        telemetry = Telemetry()
        ctrl = AdmissionController(
            max_queue=2, max_photons_per_request=100, telemetry=telemetry
        )
        ctrl.admit("c", _request(50), queue_depth=0)
        ctrl.admit("c", _request(500), queue_depth=0)
        ctrl.admit("c", _request(50), queue_depth=2)
        registry = telemetry.registry
        assert registry.counter("service.admitted").value == 1
        assert registry.counter("service.rejected", reason="over_budget").value == 1
        assert registry.counter("service.rejected", reason="saturated").value == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"rate_photons_per_s": 0},
            {"rate_photons_per_s": 100, "burst_photons": -1},
            {"max_inflight_per_client": 0},
            {"max_photons_per_request": 0},
            {"saturation_retry_after": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
