"""Fingerprint stability: semantically identical requests must collide.

The fingerprint is the cache address; every test here is a statement about
what "the same request" means.  False splits (same physics, different
hash) waste simulations; false merges (different physics, same hash) would
serve wrong answers — so the suite checks both directions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import DEFAULT_TASK_SIZE, RunRequest, build_config
from repro.core import RecordConfig, SimulationConfig
from repro.detect import PathlengthGate
from repro.core.reduce import TallyFrontier
from repro.service import fingerprint as fp_mod
from repro.service import (
    canonical_request,
    canonicalize,
    physics_fingerprint,
    request_fingerprint,
)
from repro.sources import PencilBeam
from repro.tissue import white_matter


class TestCollisions:
    """Same physics -> same fingerprint."""

    def test_deterministic(self, make_request):
        assert request_fingerprint(make_request()) == request_fingerprint(make_request())

    def test_materialized_default_task_size(self, make_request):
        explicit = make_request(task_size=DEFAULT_TASK_SIZE)
        defaulted = make_request(task_size=None)
        assert request_fingerprint(explicit) == request_fingerprint(defaulted)

    def test_model_name_vs_explicit_config(self, make_request):
        named = make_request(model="white_matter")
        explicit = make_request(config=build_config(make_request(model="white_matter")))
        assert request_fingerprint(named) == request_fingerprint(explicit)

    def test_numpy_scalars_vs_python_numbers(self, make_request):
        plain = make_request(model="white_matter", detector_spacing=2.0)
        numpied = make_request(
            model="white_matter",
            n_photons=np.int64(400),
            seed=np.int32(7),
            task_size=np.int64(200),
            detector_spacing=np.float64(2.0),
        )
        assert request_fingerprint(plain) == request_fingerprint(numpied)

    def test_execution_fields_are_irrelevant(self, make_request):
        base = request_fingerprint(make_request())
        for overrides in (
            dict(workers=8),
            dict(workers=4, backend="thread"),
            dict(retain_task_tallies=False),
            dict(compress=True),
            dict(task_deadline=5.0, max_retries=7),
            dict(progress=True),
            dict(span_size=4),
            dict(sub_batch=64),
        ):
            assert request_fingerprint(make_request(**overrides)) == base, overrides

    def test_negative_zero_collapses(self, make_request):
        stack = white_matter()
        plus = SimulationConfig(stack=stack, source=PencilBeam(x0=0.0))
        minus = SimulationConfig(stack=stack, source=PencilBeam(x0=-0.0))
        assert request_fingerprint(
            make_request(config=plus)
        ) == request_fingerprint(make_request(config=minus))


class TestSplits:
    """Different physics -> different fingerprint."""

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(n_photons=401),
            dict(seed=8),
            dict(task_size=100),
            dict(kernel="scalar"),
            dict(model="adult_head"),
            dict(gate=(0.0, 50.0)),
            dict(detector_spacing=2.0),
            dict(boundary_mode="classical"),
        ],
    )
    def test_physics_fields_split(self, make_request, overrides):
        base = make_request(model="white_matter")
        changed = make_request(**dict({"model": "white_matter"}, **overrides))
        assert request_fingerprint(changed) != request_fingerprint(base)

    def test_version_bump_changes_every_fingerprint(self, make_request, monkeypatch):
        before = request_fingerprint(make_request())
        monkeypatch.setattr(fp_mod, "FINGERPRINT_VERSION", fp_mod.FINGERPRINT_VERSION + 1)
        assert request_fingerprint(make_request()) != before

    def test_version_bump_changes_physics_fingerprint(self, make_request, monkeypatch):
        before = physics_fingerprint(make_request())
        monkeypatch.setattr(fp_mod, "FINGERPRINT_VERSION", fp_mod.FINGERPRINT_VERSION + 1)
        assert physics_fingerprint(make_request()) != before


class TestSplitAddressing:
    """Version 2: physics fingerprint + budget, the prefix-hit contract."""

    def test_budgets_share_physics_key(self, make_request):
        small = make_request(n_photons=400)
        large = make_request(n_photons=4000)
        assert physics_fingerprint(small) == physics_fingerprint(large)
        assert request_fingerprint(small) != request_fingerprint(large)

    def test_physics_change_splits_physics_key(self, make_request):
        base = physics_fingerprint(make_request())
        for overrides in (
            dict(seed=8),
            dict(task_size=100),
            dict(kernel="scalar"),
            dict(model="adult_head"),
        ):
            assert physics_fingerprint(make_request(**overrides)) != base, overrides

    def test_task_range_enters_request_fingerprint(self, make_request):
        full = make_request()
        partial = make_request(task_range=(0, 1))
        assert request_fingerprint(partial) != request_fingerprint(full)
        assert physics_fingerprint(partial) == physics_fingerprint(full)

    def test_execution_frontier_fields_do_not_split(self, make_request):
        base = request_fingerprint(make_request())
        primed = make_request(frontier=TallyFrontier([]), capture_frontier=True)
        assert request_fingerprint(primed) == base

    def test_canonical_request_embeds_physics_fingerprint(self, make_request):
        request = make_request()
        payload = canonical_request(request)
        assert payload["physics"] == physics_fingerprint(request)
        assert payload["n_photons"] == request.n_photons


class TestCanonicalize:
    def test_mapping_key_order_is_irrelevant(self):
        a = json.dumps(canonicalize({"x": 1, "y": 2.0}), sort_keys=True)
        b = json.dumps(canonicalize({"y": 2.0, "x": 1}), sort_keys=True)
        assert a == b

    def test_tuple_and_list_collide(self):
        assert canonicalize((1, 2.5)) == canonicalize([1, 2.5])

    def test_floats_hash_by_bits(self):
        # 0.1 + 0.2 != 0.3 in IEEE-754; the canonical form must not merge
        # them through decimal formatting.
        assert canonicalize(0.1 + 0.2) != canonicalize(0.3)
        assert canonicalize(np.float64(0.3)) == canonicalize(0.3)

    def test_arrays_hash_by_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.float64)
        assert canonicalize(a) == canonicalize(a.copy())
        assert canonicalize(a) != canonicalize(a.astype(np.float32))
        assert canonicalize(a) != canonicalize(a.reshape(2, 3))

    def test_dataclass_defaults_materialize(self):
        # An explicitly-passed default and an omitted field are the same
        # record configuration.
        assert canonicalize(RecordConfig()) == canonicalize(
            RecordConfig(absorption_grid=None)
        )

    def test_gate_objects_canonicalize(self):
        assert canonicalize(PathlengthGate(1.0, 2.0)) == canonicalize(
            PathlengthGate(l_max=2.0, l_min=1.0)
        )
        assert canonicalize(PathlengthGate(1.0, 2.0)) != canonicalize(
            PathlengthGate(1.0, 3.0)
        )

    def test_unknown_objects_are_rejected(self):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            canonicalize(lambda: None)

    def test_canonical_request_is_json_and_versioned(self, make_request):
        payload = canonical_request(make_request())
        assert payload["fingerprint_version"] == fp_mod.FINGERPRINT_VERSION
        json.dumps(payload, sort_keys=True, allow_nan=False)


def test_fingerprint_is_hex_sha256(make_request):
    fp = request_fingerprint(make_request())
    assert len(fp) == 64
    int(fp, 16)
