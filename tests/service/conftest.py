"""Fixtures for the serving-subsystem tests.

The default request uses the suite's *fast* medium (absorption within an
order of magnitude of scattering — photons die in ~10 steps), following
the convention in ``tests/conftest.py``: the service layer's job is
bookkeeping, not physics, so its simulations only need to be quick and
deterministic.  Pass ``model=...`` to get a named-model request instead
(the HTTP wire can only express those); fingerprinting a request costs no
simulation either way.
"""

from __future__ import annotations

import pytest

from repro.api import RunRequest
from repro.core import SimulationConfig
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

_FAST_PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)


def fast_service_config() -> SimulationConfig:
    return SimulationConfig(
        stack=LayerStack.homogeneous(_FAST_PROPS, name="fast"), source=PencilBeam()
    )


@pytest.fixture
def make_request():
    """Factory for small, deterministic run requests on the fast medium."""

    def _make(**overrides) -> RunRequest:
        kwargs = dict(n_photons=400, seed=7, task_size=200)
        if not overrides.get("model") and "config" not in overrides:
            kwargs["config"] = fast_service_config()
        kwargs.update(overrides)
        return RunRequest(**kwargs)

    return _make
