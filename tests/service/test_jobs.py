"""Job manager: caching, coalescing, lifecycle, cancellation.

The coalescing tests are the heart of the subsystem's claim: N concurrent
identical submissions must cost exactly one simulation and deliver N
identical results.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import run
from repro.observe import Telemetry
from repro.service import JobManager, JobState, ResultStore


def _counter(manager: JobManager, name: str) -> float:
    return manager.telemetry.registry.counter(name).value


class TestLifecycle:
    def test_submit_and_result_matches_direct_run(self, make_request):
        request = make_request()
        with JobManager() as manager:
            job = manager.submit(request)
            tally = job.result(timeout=60)
        assert tally == run(make_request()).tally  # bitwise Tally.__eq__
        assert job.state == JobState.DONE
        assert job.started is not None and job.finished is not None

    def test_job_lookup_and_as_dict(self, make_request):
        with JobManager() as manager:
            job = manager.submit(make_request())
            assert manager.job(job.id) is job
            assert manager.job("nope") is None
            job.wait(60)
            payload = job.as_dict()
        assert payload["state"] == JobState.DONE
        assert payload["fingerprint"] == job.fingerprint
        assert payload["error"] is None

    def test_failed_run_settles_the_job(self, make_request):
        def broken(request):
            raise RuntimeError("kernel exploded")

        with JobManager(runner=broken) as manager:
            job = manager.submit(make_request())
            assert job.wait(10)
            assert job.state == JobState.FAILED
            assert "kernel exploded" in job.error
            with pytest.raises(RuntimeError, match="kernel exploded"):
                job.result(timeout=1)
        assert _counter(manager, "service.jobs.failed") == 1

    def test_closed_manager_rejects_submissions(self, make_request):
        manager = JobManager()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(make_request())


class TestCaching:
    def test_second_submission_is_a_cache_hit(self, tmp_path, make_request):
        store = ResultStore(tmp_path / "store")
        calls = []

        def counting(request):
            calls.append(request)
            return run(request).tally

        with JobManager(store, runner=counting) as manager:
            first = manager.submit(make_request()).result(timeout=60)
            second_job = manager.submit(make_request())
            second = second_job.result(timeout=10)
        assert len(calls) == 1  # the repeat never reached the runner
        assert second_job.cache_hit
        assert second_job.state == JobState.DONE
        assert first == second
        assert _counter(manager, "service.cache.hits") == 1
        assert _counter(manager, "service.cache.misses") == 1

    def test_cache_survives_manager_restart(self, tmp_path, make_request):
        root = tmp_path / "store"
        with JobManager(ResultStore(root)) as manager:
            manager.submit(make_request()).result(timeout=60)
        with JobManager(ResultStore(root)) as manager:
            job = manager.submit(make_request())
            assert job.cache_hit
            job.result(timeout=10)


class TestCoalescing:
    def test_concurrent_identical_submissions_run_once(self, make_request):
        n_threads = 8
        calls = []
        release = threading.Event()

        def gated(request):
            calls.append(request)
            release.wait(30)
            return run(request).tally

        jobs = []
        jobs_lock = threading.Lock()

        with JobManager(runner=gated, max_workers=4) as manager:

            def submit():
                job = manager.submit(make_request())
                with jobs_lock:
                    jobs.append(job)

            threads = [threading.Thread(target=submit) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            release.set()

            results = [job.result(timeout=60) for job in jobs]

        assert len(calls) == 1  # N submissions -> 1 simulation
        assert all(r == results[0] for r in results)  # N identical results
        assert sum(job.coalesced for job in jobs) == n_threads - 1
        assert _counter(manager, "service.coalesced") == n_threads - 1

    def test_different_requests_do_not_coalesce(self, make_request):
        with JobManager(max_workers=2) as manager:
            a = manager.submit(make_request(seed=1))
            b = manager.submit(make_request(seed=2))
            ta, tb = a.result(timeout=60), b.result(timeout=60)
        assert not b.coalesced
        assert ta != tb

    def test_queue_depth_returns_to_zero(self, make_request):
        with JobManager() as manager:
            manager.submit(make_request()).result(timeout=60)
            depth = manager.telemetry.registry.gauge("service.queue.depth").value
        assert depth == 0


class TestCancellation:
    def test_cancel_queued_job(self, make_request):
        release = threading.Event()

        def gated(request):
            release.wait(30)
            return run(request).tally

        with JobManager(runner=gated, max_workers=1) as manager:
            blocker = manager.submit(make_request(seed=1))
            queued = manager.submit(make_request(seed=2))  # pool is busy
            assert manager.cancel(queued.id)
            assert queued.state == JobState.CANCELLED
            release.set()
            blocker.result(timeout=60)
            assert not manager.cancel(blocker.id)  # already done

    def test_cancelled_rider_does_not_disturb_the_flight(self, make_request):
        started = threading.Event()
        release = threading.Event()

        def gated(request):
            started.set()
            release.wait(30)
            return run(request).tally

        with JobManager(runner=gated) as manager:
            first = manager.submit(make_request())
            assert started.wait(10)
            rider = manager.submit(make_request())
            assert rider.coalesced
            assert manager.cancel(rider.id)
            release.set()
            tally = first.result(timeout=60)
        assert tally is not None
        assert rider.state == JobState.CANCELLED

    def test_cancel_unknown_job(self, make_request):
        with JobManager() as manager:
            assert not manager.cancel("nope")


class TestTelemetryAttachment:
    def test_kernel_metrics_land_in_service_registry(self, make_request):
        with JobManager() as manager:
            manager.submit(make_request()).result(timeout=60)
        # The facade threads the service telemetry through to the kernels.
        assert _counter(manager, "photons.traced") > 0

    def test_caller_owned_telemetry_is_kept(self, make_request):
        own = Telemetry.in_memory()
        with JobManager() as manager:
            manager.submit(make_request(telemetry=own)).result(timeout=60)
        kinds = {e["event"] for e in own.sink.events}
        assert "span_start" in kinds


class TestPrefixExtension:
    """Budget-extending cache: smaller cached run + delta = larger run."""

    def test_larger_budget_extends_cached_smaller_run(self, tmp_path, make_request):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            small = manager.submit(make_request(n_photons=400))
            small.result(timeout=60)
            assert small.cache == "miss"
            large = manager.submit(make_request(n_photons=800))
            extended = large.result(timeout=60)
        assert large.cache == "prefix"
        assert large.base_fingerprint == small.fingerprint
        assert large.delta_photons == 400
        assert not large.cache_hit  # exact-hit flag stays exact-only
        assert _counter(manager, "service.prefix.hits") == 1
        # The acceptance criterion: bit-identical to a from-scratch run.
        with JobManager(max_workers=1) as cold_manager:
            cold = cold_manager.submit(make_request(n_photons=800)).result(timeout=60)
        assert extended == cold  # bitwise Tally.__eq__

    def test_extension_result_is_stored_and_extendable_again(
        self, tmp_path, make_request
    ):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(make_request(n_photons=400)).result(timeout=60)
            manager.submit(make_request(n_photons=800)).result(timeout=60)
            third = manager.submit(make_request(n_photons=1200))
            third.result(timeout=60)
        assert third.cache == "prefix"
        assert third.delta_photons == 400  # only the new tasks, not 1200

    def test_as_dict_reports_cache_provenance(self, tmp_path, make_request):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(make_request(n_photons=400)).result(timeout=60)
            job = manager.submit(make_request(n_photons=800))
            job.result(timeout=60)
            payload = job.as_dict()
            exact = manager.submit(make_request(n_photons=800))
            exact_payload = exact.as_dict()
        assert payload["cache"] == "prefix"
        assert payload["base_fingerprint"] == job.base_fingerprint
        assert payload["delta_photons"] == 400
        assert exact_payload["cache"] == "exact"
        assert exact_payload["cache_hit"] is True
        assert "base_fingerprint" not in exact_payload

    def test_derivation_stamped_into_stored_provenance(self, tmp_path, make_request):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            base = manager.submit(make_request(n_photons=400))
            base.result(timeout=60)
            job = manager.submit(make_request(n_photons=800))
            job.result(timeout=60)
            stored = store.get(job.fingerprint)
        derived = stored.provenance["derived_from"]
        assert derived["base_fingerprint"] == base.fingerprint
        assert derived["base_n_photons"] == 400
        assert derived["delta_photons"] == 400

    def test_different_physics_never_extends(self, tmp_path, make_request):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            manager.submit(make_request(n_photons=400)).result(timeout=60)
            other = manager.submit(make_request(n_photons=800, seed=99))
            other.result(timeout=60)
        assert other.cache == "miss"
        assert other.base_fingerprint is None

    def test_bare_tally_runner_disables_extension_but_still_works(
        self, tmp_path, make_request
    ):
        # Legacy custom runners return a Tally, not a RunReport: no frontier
        # is captured, so nothing is extendable — but everything still runs.
        def bare(request):
            return run(request).tally

        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1, runner=bare) as manager:
            manager.submit(make_request(n_photons=400)).result(timeout=60)
            large = manager.submit(make_request(n_photons=800))
            large.result(timeout=60)
        assert large.cache == "miss"
        assert store.best_prefix("0" * 64, 10**9) is None


class TestBudgetChaining:
    """Escalating concurrent budgets: one full run + deltas, no races."""

    def test_queued_larger_budget_chains_to_inflight_smaller(
        self, tmp_path, make_request
    ):
        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1) as manager:
            small = manager.submit(make_request(n_photons=400))
            large = manager.submit(make_request(n_photons=800))
            extended = large.result(timeout=120)
            small.result(timeout=10)
        assert _counter(manager, "service.chained") == 1
        assert large.cache == "prefix"
        assert large.delta_photons == 400
        with JobManager(max_workers=1) as cold_manager:
            cold = cold_manager.submit(make_request(n_photons=800)).result(timeout=60)
        assert extended == cold

    def test_cancelled_base_releases_chained_flight(self, tmp_path, make_request):
        release = threading.Event()

        def gated(request):
            release.wait(30)
            return run(request)

        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1, runner=gated) as manager:
            blocker = manager.submit(make_request(seed=5))  # occupies the slot
            small = manager.submit(make_request(n_photons=400))
            large = manager.submit(make_request(n_photons=800))
            assert _counter(manager, "service.chained") == 1
            assert manager.cancel(small.id)
            release.set()
            extended = large.result(timeout=120)
            blocker.result(timeout=60)
        # The chained flight was released and ran cold (no base was stored).
        assert large.cache == "miss"
        assert extended.n_launched == 800

    def test_chained_flight_failure_does_not_strand_waiters(
        self, tmp_path, make_request
    ):
        calls = []

        def failing_large(request):
            calls.append(request.n_photons)
            if request.n_photons >= 800:
                raise RuntimeError("delta exploded")
            return run(request)

        store = ResultStore(tmp_path / "store")
        with JobManager(store, max_workers=1, runner=failing_large) as manager:
            small = manager.submit(make_request(n_photons=400))
            large = manager.submit(make_request(n_photons=800))
            small.result(timeout=60)
            assert large.wait(60)
        assert large.state == JobState.FAILED
        assert "delta exploded" in large.error
