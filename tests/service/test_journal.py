"""Job journal: durable append, replay, torn tails, atomic compaction."""

from __future__ import annotations

import json

import pytest

from repro.observe import Telemetry
from repro.service import JobJournal, JobManager, request_to_json
from repro.service.journal import OpenJob


def _lines(journal: JobJournal) -> list[dict]:
    return [
        json.loads(line)
        for line in journal.path.read_text().splitlines()
        if line.strip()
    ]


class TestAppendReplay:
    def test_submitted_job_is_open(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.record(
                "submitted", "j1", fingerprint="f" * 8,
                request={"model": "white_matter"}, priority=0, client="alice",
            )
        replayed = JobJournal(tmp_path).replay()
        assert len(replayed) == 1
        job = replayed[0]
        assert job.job_id == "j1"
        assert job.fingerprint == "f" * 8
        assert job.request == {"model": "white_matter"}
        assert job.priority == 0
        assert job.client == "alice"
        assert not job.was_running

    def test_started_marks_was_running(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.record("submitted", "j1", fingerprint="f1")
            journal.record("started", "j1")
        (job,) = JobJournal(tmp_path).replay()
        assert job.was_running

    @pytest.mark.parametrize("terminal", ["done", "failed", "cancelled"])
    def test_terminal_events_close_the_job(self, tmp_path, terminal):
        with JobJournal(tmp_path) as journal:
            journal.record("submitted", "j1", fingerprint="f1")
            journal.record("started", "j1")
            journal.record(terminal, "j1")
            journal.record("submitted", "j2", fingerprint="f2")
        replayed = JobJournal(tmp_path).replay()
        assert [job.job_id for job in replayed] == ["j2"]

    def test_replay_preserves_submission_order(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            for i in range(5):
                journal.record("submitted", f"j{i}", fingerprint=f"f{i}")
            journal.record("done", "j2")
        replayed = JobJournal(tmp_path).replay()
        assert [job.job_id for job in replayed] == ["j0", "j1", "j3", "j4"]

    def test_empty_or_missing_journal_replays_empty(self, tmp_path):
        journal = JobJournal(tmp_path)
        assert journal.replay() == []
        journal.close()


class TestTornTail:
    def test_truncated_last_line_is_skipped(self, tmp_path):
        telemetry = Telemetry()
        with JobJournal(tmp_path) as journal:
            journal.record("submitted", "j1", fingerprint="f1")
            journal.record("submitted", "j2", fingerprint="f2")
        # Simulate kill -9 mid-append: chop the file mid-way through j2.
        raw = tmp_path.joinpath("journal.jsonl").read_bytes()
        tmp_path.joinpath("journal.jsonl").write_bytes(raw[:-15])
        journal = JobJournal(tmp_path, telemetry=telemetry)
        replayed = journal.replay()
        assert [job.job_id for job in replayed] == ["j1"]
        assert telemetry.registry.counter("service.journal.torn").value == 1
        journal.close()

    def test_unknown_version_line_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.path.write_text(
            '{"v": 99, "event": "submitted", "job_id": "jX", "fingerprint": "f"}\n'
        )
        assert journal.replay() == []
        journal.close()


class TestCompaction:
    def test_compact_rewrites_to_open_jobs_only(self, tmp_path):
        journal = JobJournal(tmp_path)
        for i in range(10):
            journal.record("submitted", f"j{i}", fingerprint=f"f{i}")
            journal.record("done", f"j{i}")
        journal.record("submitted", "alive", fingerprint="fa")
        journal.compact([
            OpenJob(job_id="alive", fingerprint="fa", request=None, was_running=True)
        ])
        lines = _lines(journal)
        assert [ln["event"] for ln in lines] == ["submitted", "started"]
        assert lines[0]["job_id"] == "alive"
        # The compacted journal replays identically.
        (job,) = journal.replay()
        assert job.job_id == "alive" and job.was_running
        journal.close()

    def test_append_still_works_after_compaction(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("submitted", "j1", fingerprint="f1")
        journal.compact([])
        journal.record("submitted", "j2", fingerprint="f2")
        assert [job.job_id for job in journal.replay()] == ["j2"]
        journal.close()


class TestTelemetry:
    def test_fsync_histogram_and_record_counter(self, tmp_path):
        telemetry = Telemetry()
        with JobJournal(tmp_path, telemetry=telemetry) as journal:
            journal.record("submitted", "j1", fingerprint="f1")
            journal.record("done", "j1")
        hist = telemetry.registry.histogram("service.journal.fsync_seconds")
        assert hist.count == 2
        assert telemetry.registry.counter("service.journal.records").value == 2


class TestCheckpointDirs:
    def test_checkpoint_dir_is_under_journal_root(self, tmp_path):
        journal = JobJournal(tmp_path)
        path = journal.checkpoint_dir("a" * 64)
        assert path.parent == journal.checkpoints_root
        journal.close()

    def test_malformed_fingerprint_rejected(self, tmp_path):
        journal = JobJournal(tmp_path)
        for bad in ("", "../x", "a.b"):
            with pytest.raises(ValueError, match="malformed"):
                journal.checkpoint_dir(bad)
        journal.close()


class TestManagerIntegration:
    def test_journal_records_full_lifecycle(self, tmp_path, make_request):
        request = make_request(model="white_matter", n_photons=400)
        with JobManager(journal=JobJournal(tmp_path / "j")) as manager:
            job = manager.submit(request)
            job.result(timeout=120)
            journal_path = manager.journal.path
        events = [json.loads(ln)["event"] for ln in journal_path.read_text().splitlines()]
        assert events == ["submitted", "started", "done"]

    def test_cache_hits_are_not_journaled(self, tmp_path, make_request):
        from repro.service import ResultStore

        request = make_request(model="white_matter", n_photons=400)
        store = ResultStore(tmp_path / "store")
        with JobManager(store, journal=JobJournal(tmp_path / "j")) as manager:
            manager.submit(request).result(timeout=120)
            lines_before = len(_lines(manager.journal))
            hit = manager.submit(request)
            assert hit.cache_hit
            assert len(_lines(manager.journal)) == lines_before

    def test_oversized_journal_is_compacted_after_flights(self, tmp_path, make_request):
        journal = JobJournal(tmp_path / "j", max_bytes=1)  # compact every flight
        with JobManager(journal=journal) as manager:
            manager.submit(make_request(model="white_matter", n_photons=400)).result(
                timeout=120
            )
        # Everything settled: the compacted journal is empty.
        assert JobJournal(tmp_path / "j").replay() == []


class TestRequestRoundTrip:
    def test_model_request_round_trips(self, make_request):
        from repro.service import request_fingerprint, request_from_json

        request = make_request(model="white_matter", gate=(5.0, 50.0))
        payload = request_to_json(request)
        assert payload is not None
        rebuilt = request_from_json(payload)
        assert request_fingerprint(rebuilt) == request_fingerprint(request)

    def test_unexpressible_requests_return_none(self, make_request):
        assert request_to_json(make_request()) is None  # explicit config
        assert request_to_json(make_request(model="white_matter", sub_batch=64)) is None
