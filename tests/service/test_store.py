"""Content-addressed store: round-trips, verification, LRU bounds."""

from __future__ import annotations

import json
import time

import pytest

from repro.core import Simulation
from repro.api import build_config
from repro.io import save_tally
from repro.observe import Telemetry
from repro.service import ResultStore, request_fingerprint


def _counter(telemetry: Telemetry, name: str) -> float:
    return telemetry.registry.counter(name).value


@pytest.fixture
def tally(make_request):
    return Simulation(build_config(make_request())).run(300, seed=2)


@pytest.fixture
def fingerprint(make_request):
    return request_fingerprint(make_request())


class TestRoundTrip:
    def test_put_get_bit_identical(self, tmp_path, tally, fingerprint):
        store = ResultStore(tmp_path / "store")
        store.put(fingerprint, tally)
        loaded = store.get(fingerprint)
        assert loaded == tally  # Tally.__eq__ is bitwise

    def test_get_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store", telemetry=Telemetry())
        assert store.get("0" * 64) is None
        assert _counter(store.telemetry, "service.store.misses") == 1

    def test_put_stamps_fingerprint_into_provenance(
        self, tmp_path, tally, fingerprint, make_request
    ):
        store = ResultStore(tmp_path / "store")
        store.put(fingerprint, tally, provenance=make_request().provenance())
        loaded = store.get(fingerprint)
        assert loaded.provenance["fingerprint"] == fingerprint
        assert loaded.provenance["model"] == "custom"
        assert loaded.provenance["n_photons"] == 400

    def test_index_survives_reopen(self, tmp_path, tally, fingerprint):
        root = tmp_path / "store"
        ResultStore(root).put(fingerprint, tally)
        reopened = ResultStore(root)
        assert fingerprint in reopened
        assert reopened.get(fingerprint) == tally

    def test_missing_files_pruned_on_open(self, tmp_path, tally, fingerprint):
        root = tmp_path / "store"
        store = ResultStore(root)
        path = store.put(fingerprint, tally)
        path.unlink()
        assert fingerprint not in ResultStore(root)

    def test_malformed_fingerprint_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for bad in ("", "../../etc/passwd", "a.b"):
            with pytest.raises(ValueError, match="malformed"):
                store.path(bad)


class TestVerification:
    """The store never serves an artifact it cannot prove belongs there."""

    def test_foreign_artifact_rejected_and_evicted(
        self, tmp_path, tally, fingerprint
    ):
        store = ResultStore(tmp_path / "store", telemetry=Telemetry())
        path = store.put(fingerprint, tally)
        # Overwrite with an archive claiming a different fingerprint —
        # e.g. hand-copied from another store.
        save_tally(path, tally, provenance={"fingerprint": "deadbeef"})
        assert store.get(fingerprint) is None
        assert not path.exists()
        assert _counter(store.telemetry, "service.store.foreign") == 1

    def test_unstamped_artifact_rejected(self, tmp_path, tally, fingerprint):
        store = ResultStore(tmp_path / "store")
        path = store.put(fingerprint, tally)
        save_tally(path, tally)  # no provenance at all
        assert store.get(fingerprint) is None


class TestLRUEviction:
    def _filled(self, tmp_path, tally, n=1, **kwargs):
        store = ResultStore(tmp_path / "store", **kwargs)
        fps = [f"{i:064x}" for i in range(n)]
        for fp in fps:
            store.put(fp, tally)
            time.sleep(0.01)  # distinct last_access stamps
        return store, fps

    def test_unbounded_store_keeps_everything(self, tmp_path, tally):
        store, fps = self._filled(tmp_path, tally, n=4, max_bytes=None)
        assert len(store) == 4

    def test_least_recently_used_is_evicted(self, tmp_path, tally):
        store, _ = self._filled(tmp_path, tally, n=1)
        size = store.total_bytes()
        store.clear()
        store.max_bytes = int(2.5 * size)

        a, b, c = "a" * 64, "b" * 64, "c" * 64
        store.put(a, tally)
        time.sleep(0.01)
        store.put(b, tally)
        time.sleep(0.01)
        assert store.get(a) is not None  # touch a: b is now the LRU entry
        time.sleep(0.01)
        store.put(c, tally)  # over budget -> evict b, not a
        assert set(store.fingerprints()) == {a, c}
        assert not store.path(b).exists()
        assert store.total_bytes() <= store.max_bytes

    def test_newest_entry_survives_even_alone_over_budget(self, tmp_path, tally):
        store, fps = self._filled(tmp_path, tally, n=1)
        store.max_bytes = 1  # absurdly small
        fp2 = "f" * 64
        store.put(fp2, tally)
        assert fp2 in store
        assert fps[0] not in store

    def test_index_is_valid_json_throughout(self, tmp_path, tally):
        store, _ = self._filled(tmp_path, tally, n=3)
        raw = json.loads((store.root / "index.json").read_text())
        assert raw["index_version"] == 3
        assert set(raw["entries"]) == set(store.fingerprints())


class TestIndexRebuild:
    """A corrupt or missing index is rebuilt from the artifacts on disk."""

    def _seed_store(self, tmp_path, tally):
        store = ResultStore(tmp_path / "store")
        fps = ["a" * 64, "b" * 64]
        for fp in fps:
            store.put(fp, tally)
        return store.root, fps

    def test_corrupt_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text("{ not json")
        telemetry = Telemetry()
        store = ResultStore(root, telemetry=telemetry)
        assert set(store.fingerprints()) == set(fps)
        assert store.get(fps[0]) == tally  # artifacts still self-verify
        assert _counter(telemetry, "service.store.index_rebuilds") == 1

    def test_truncated_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        raw = (root / "index.json").read_bytes()
        (root / "index.json").write_bytes(raw[: len(raw) // 2])  # torn write
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)

    def test_missing_index_with_artifacts_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").unlink()
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)
        # The rebuilt index is persisted for the next open.
        assert json.loads((root / "index.json").read_text())["index_version"] == 3

    def test_wrong_version_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text(
            json.dumps({"index_version": 999, "entries": "what"})
        )
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)

    def test_fresh_store_is_not_a_rebuild(self, tmp_path):
        telemetry = Telemetry()
        ResultStore(tmp_path / "fresh", telemetry=telemetry)
        assert _counter(telemetry, "service.store.index_rebuilds") == 0

    def test_rebuild_ignores_non_artifact_files(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text("{")
        (root / "notes.txt").write_text("not an artifact")
        (root / "weird.name.npz").write_bytes(b"x")  # dotted stem: skipped
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)


class TestPrefixIndex:
    """Split addressing: best_prefix queries, supersession, frontier reads."""

    @staticmethod
    def _frontier(tally, k):
        from repro.core.reduce import TallyFrontier

        return TallyFrontier([(0, k, tally)])

    @staticmethod
    def _keys(make_request, n_photons):
        from repro.service import physics_fingerprint

        request = make_request(n_photons=n_photons)
        return request_fingerprint(request), physics_fingerprint(request)

    def test_best_prefix_returns_largest_smaller_budget(
        self, tmp_path, tally, make_request
    ):
        store = ResultStore(tmp_path / "store")
        fp200, physics = self._keys(make_request, 200)
        fp600, _ = self._keys(make_request, 600)
        store.put(fp200, tally, physics=physics, n_photons=200,
                  frontier=self._frontier(tally, 1))
        store.put(fp600, tally, physics=physics, n_photons=600,
                  frontier=self._frontier(tally, 3))
        assert store.best_prefix(physics, 800) == (fp600, 600, 3)
        assert store.best_prefix(physics, 600) is None  # exact is get()'s job
        assert store.best_prefix(physics, 200) is None
        assert store.best_prefix("f" * 64, 800) is None  # foreign physics

    def test_frontierless_entries_are_not_extension_bases(
        self, tmp_path, tally, make_request
    ):
        store = ResultStore(tmp_path / "store")
        fp, physics = self._keys(make_request, 200)
        store.put(fp, tally, physics=physics, n_photons=200)  # no frontier
        assert store.best_prefix(physics, 800) is None

    def test_get_frontier_roundtrip(self, tmp_path, tally, make_request):
        store = ResultStore(tmp_path / "store")
        fp, physics = self._keys(make_request, 400)
        store.put(fp, tally, physics=physics, n_photons=400,
                  frontier=self._frontier(tally, 2))
        frontier = store.get_frontier(fp)
        assert frontier is not None and frontier.prefix_tasks == 2
        assert frontier.spans[0][2] == tally  # bitwise
        assert store.get_frontier("0" * 64) is None

    def test_put_supersedes_smaller_budget(self, tmp_path, tally, make_request):
        telemetry = Telemetry()
        store = ResultStore(tmp_path / "store", telemetry=telemetry)
        fp200, physics = self._keys(make_request, 200)
        fp400, _ = self._keys(make_request, 400)
        store.put(fp200, tally, physics=physics, n_photons=200,
                  frontier=self._frontier(tally, 1))
        store.put(fp400, tally, physics=physics, n_photons=400,
                  frontier=self._frontier(tally, 2))
        assert fp200 not in store
        assert fp400 in store
        assert _counter(telemetry, "service.store.superseded") == 1

    def test_richer_smaller_frontier_survives_supersession(
        self, tmp_path, tally, make_request
    ):
        # A smaller-budget entry whose frontier covers MORE tasks than the
        # new entry's still answers extension queries the new one cannot.
        store = ResultStore(tmp_path / "store")
        fp200, physics = self._keys(make_request, 200)
        fp400, _ = self._keys(make_request, 400)
        store.put(fp200, tally, physics=physics, n_photons=200,
                  frontier=self._frontier(tally, 1))
        store.put(fp400, tally, physics=physics, n_photons=400)  # frontierless
        assert fp200 in store
        assert store.best_prefix(physics, 800) == (fp200, 200, 1)

    def test_rebuild_recovers_prefix_metadata(self, tmp_path, tally, make_request):
        root = tmp_path / "store"
        fp, physics = self._keys(make_request, 400)
        ResultStore(root).put(
            fp, tally, provenance={"n_photons": 400},
            physics=physics, n_photons=400, frontier=self._frontier(tally, 2),
        )
        (root / "index.json").unlink()
        reopened = ResultStore(root)
        assert reopened.best_prefix(physics, 800) == (fp, 400, 2)
        frontier = reopened.get_frontier(fp)
        assert frontier is not None and frontier.prefix_tasks == 2


class TestEvictionFrontierInterplay:
    """LRU eviction x pending extensions: stale plans degrade, never corrupt."""

    def test_evicted_base_is_a_clean_frontier_miss(
        self, tmp_path, tally, make_request
    ):
        from repro.core.reduce import TallyFrontier
        from repro.service import physics_fingerprint

        store = ResultStore(tmp_path / "store")
        request = make_request(n_photons=200)
        fp = request_fingerprint(request)
        physics = physics_fingerprint(request)
        store.put(fp, tally, physics=physics, n_photons=200,
                  frontier=TallyFrontier([(0, 1, tally)]))
        hit = store.best_prefix(physics, 800)
        assert hit is not None
        # The base vanishes between planning and the frontier read (LRU
        # pressure, another process, a supersession race) ...
        store.clear()
        # ... and the read degrades to a miss instead of serving bytes of a
        # deleted artifact; the caller falls back to a cold run.
        assert store.get_frontier(hit[0]) is None
        assert store.best_prefix(physics, 800) is None

    def test_lru_pressure_evicts_base_without_corrupting_index(
        self, tmp_path, tally, make_request
    ):
        from repro.core.reduce import TallyFrontier
        from repro.service import physics_fingerprint
        import json as _json

        request = make_request(n_photons=200)
        physics = physics_fingerprint(request)
        base_fp = request_fingerprint(request)
        size = len(
            ResultStore(tmp_path / "probe").put(
                base_fp, tally, physics=physics, n_photons=200,
                frontier=TallyFrontier([(0, 1, tally)]),
            ).read_bytes()
        )
        store = ResultStore(tmp_path / "store", max_bytes=int(size * 2.5))
        store.put(base_fp, tally, physics=physics, n_photons=200,
                  frontier=TallyFrontier([(0, 1, tally)]))
        # Unrelated entries push the base out of the LRU window.
        for i in range(3):
            store.put(f"{i:064x}", tally)
        assert base_fp not in store
        assert store.get_frontier(base_fp) is None
        index = _json.loads((tmp_path / "store" / "index.json").read_text())
        assert base_fp not in index["entries"]
        # Re-putting the base re-registers it for extension queries.
        store.put(base_fp, tally, physics=physics, n_photons=200,
                  frontier=TallyFrontier([(0, 1, tally)]))
        assert store.best_prefix(physics, 800) == (base_fp, 200, 1)
