"""Content-addressed store: round-trips, verification, LRU bounds."""

from __future__ import annotations

import json
import time

import pytest

from repro.core import Simulation
from repro.api import build_config
from repro.io import save_tally
from repro.observe import Telemetry
from repro.service import ResultStore, request_fingerprint


def _counter(telemetry: Telemetry, name: str) -> float:
    return telemetry.registry.counter(name).value


@pytest.fixture
def tally(make_request):
    return Simulation(build_config(make_request())).run(300, seed=2)


@pytest.fixture
def fingerprint(make_request):
    return request_fingerprint(make_request())


class TestRoundTrip:
    def test_put_get_bit_identical(self, tmp_path, tally, fingerprint):
        store = ResultStore(tmp_path / "store")
        store.put(fingerprint, tally)
        loaded = store.get(fingerprint)
        assert loaded == tally  # Tally.__eq__ is bitwise

    def test_get_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store", telemetry=Telemetry())
        assert store.get("0" * 64) is None
        assert _counter(store.telemetry, "service.store.misses") == 1

    def test_put_stamps_fingerprint_into_provenance(
        self, tmp_path, tally, fingerprint, make_request
    ):
        store = ResultStore(tmp_path / "store")
        store.put(fingerprint, tally, provenance=make_request().provenance())
        loaded = store.get(fingerprint)
        assert loaded.provenance["fingerprint"] == fingerprint
        assert loaded.provenance["model"] == "custom"
        assert loaded.provenance["n_photons"] == 400

    def test_index_survives_reopen(self, tmp_path, tally, fingerprint):
        root = tmp_path / "store"
        ResultStore(root).put(fingerprint, tally)
        reopened = ResultStore(root)
        assert fingerprint in reopened
        assert reopened.get(fingerprint) == tally

    def test_missing_files_pruned_on_open(self, tmp_path, tally, fingerprint):
        root = tmp_path / "store"
        store = ResultStore(root)
        path = store.put(fingerprint, tally)
        path.unlink()
        assert fingerprint not in ResultStore(root)

    def test_malformed_fingerprint_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for bad in ("", "../../etc/passwd", "a.b"):
            with pytest.raises(ValueError, match="malformed"):
                store.path(bad)


class TestVerification:
    """The store never serves an artifact it cannot prove belongs there."""

    def test_foreign_artifact_rejected_and_evicted(
        self, tmp_path, tally, fingerprint
    ):
        store = ResultStore(tmp_path / "store", telemetry=Telemetry())
        path = store.put(fingerprint, tally)
        # Overwrite with an archive claiming a different fingerprint —
        # e.g. hand-copied from another store.
        save_tally(path, tally, provenance={"fingerprint": "deadbeef"})
        assert store.get(fingerprint) is None
        assert not path.exists()
        assert _counter(store.telemetry, "service.store.foreign") == 1

    def test_unstamped_artifact_rejected(self, tmp_path, tally, fingerprint):
        store = ResultStore(tmp_path / "store")
        path = store.put(fingerprint, tally)
        save_tally(path, tally)  # no provenance at all
        assert store.get(fingerprint) is None


class TestLRUEviction:
    def _filled(self, tmp_path, tally, n=1, **kwargs):
        store = ResultStore(tmp_path / "store", **kwargs)
        fps = [f"{i:064x}" for i in range(n)]
        for fp in fps:
            store.put(fp, tally)
            time.sleep(0.01)  # distinct last_access stamps
        return store, fps

    def test_unbounded_store_keeps_everything(self, tmp_path, tally):
        store, fps = self._filled(tmp_path, tally, n=4, max_bytes=None)
        assert len(store) == 4

    def test_least_recently_used_is_evicted(self, tmp_path, tally):
        store, _ = self._filled(tmp_path, tally, n=1)
        size = store.total_bytes()
        store.clear()
        store.max_bytes = int(2.5 * size)

        a, b, c = "a" * 64, "b" * 64, "c" * 64
        store.put(a, tally)
        time.sleep(0.01)
        store.put(b, tally)
        time.sleep(0.01)
        assert store.get(a) is not None  # touch a: b is now the LRU entry
        time.sleep(0.01)
        store.put(c, tally)  # over budget -> evict b, not a
        assert set(store.fingerprints()) == {a, c}
        assert not store.path(b).exists()
        assert store.total_bytes() <= store.max_bytes

    def test_newest_entry_survives_even_alone_over_budget(self, tmp_path, tally):
        store, fps = self._filled(tmp_path, tally, n=1)
        store.max_bytes = 1  # absurdly small
        fp2 = "f" * 64
        store.put(fp2, tally)
        assert fp2 in store
        assert fps[0] not in store

    def test_index_is_valid_json_throughout(self, tmp_path, tally):
        store, _ = self._filled(tmp_path, tally, n=3)
        raw = json.loads((store.root / "index.json").read_text())
        assert raw["index_version"] == 1
        assert set(raw["entries"]) == set(store.fingerprints())


class TestIndexRebuild:
    """A corrupt or missing index is rebuilt from the artifacts on disk."""

    def _seed_store(self, tmp_path, tally):
        store = ResultStore(tmp_path / "store")
        fps = ["a" * 64, "b" * 64]
        for fp in fps:
            store.put(fp, tally)
        return store.root, fps

    def test_corrupt_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text("{ not json")
        telemetry = Telemetry()
        store = ResultStore(root, telemetry=telemetry)
        assert set(store.fingerprints()) == set(fps)
        assert store.get(fps[0]) == tally  # artifacts still self-verify
        assert _counter(telemetry, "service.store.index_rebuilds") == 1

    def test_truncated_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        raw = (root / "index.json").read_bytes()
        (root / "index.json").write_bytes(raw[: len(raw) // 2])  # torn write
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)

    def test_missing_index_with_artifacts_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").unlink()
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)
        # The rebuilt index is persisted for the next open.
        assert json.loads((root / "index.json").read_text())["index_version"] == 1

    def test_wrong_version_index_rebuilt(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text(
            json.dumps({"index_version": 999, "entries": "what"})
        )
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)

    def test_fresh_store_is_not_a_rebuild(self, tmp_path):
        telemetry = Telemetry()
        ResultStore(tmp_path / "fresh", telemetry=telemetry)
        assert _counter(telemetry, "service.store.index_rebuilds") == 0

    def test_rebuild_ignores_non_artifact_files(self, tmp_path, tally):
        root, fps = self._seed_store(tmp_path, tally)
        (root / "index.json").write_text("{")
        (root / "notes.txt").write_text("not an artifact")
        (root / "weird.name.npz").write_bytes(b"x")  # dotted stem: skipped
        store = ResultStore(root)
        assert set(store.fingerprints()) == set(fps)
