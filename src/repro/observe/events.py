"""Event sinks: where telemetry events go.

An *event* is one flat JSON-serialisable dict.  Every event carries three
reserved keys —

``event``
    The kind: ``"span_start"``, ``"span_end"``, ``"counter"``, ``"gauge"``,
    ``"progress"``, ``"metrics"``, ``"run_start"``, ``"run_end"``, ...
``t``
    Seconds on the run's monotonic clock (simulated seconds for
    discrete-event runs); non-decreasing within one sink.
``ts``
    Wall-clock Unix timestamp (absent for simulated events).

— plus event-specific fields at the top level (``name``, ``task``,
``worker``, ``duration_s``...).  :func:`validate_event` is the schema the
tests (and any downstream consumer) can hold a stream to.

Sinks are deliberately tiny: :class:`NullSink` is the disabled fast path
(one attribute check and no allocation at call sites that gate on
``telemetry``), :class:`JsonlSink` appends one JSON object per line to a
file (the ``--metrics FILE.jsonl`` stream), and :class:`MemorySink` buffers
events for tests.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO

__all__ = [
    "EventSink",
    "NullSink",
    "JsonlSink",
    "MemorySink",
    "validate_event",
    "EVENT_KINDS",
]

#: Every event kind the instrumented layers emit.
EVENT_KINDS = frozenset({
    "run_start",
    "run_end",
    "span_start",
    "span_end",
    "counter",
    "gauge",
    "progress",
    "metrics",
})


class EventSink:
    """Interface: accepts events; must be safe to call from many threads."""

    #: Fast-path flag — instrumented code may skip building events entirely
    #: when the sink declares itself inert.
    enabled: bool = True

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class NullSink(EventSink):
    """Discard everything (the telemetry-disabled fast path)."""

    enabled = False

    def emit(self, event: dict) -> None:
        pass


class MemorySink(EventSink):
    """Buffer events in a list (for tests and in-process consumers)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)


class JsonlSink(EventSink):
    """Append one JSON object per line to ``path`` (or an open stream).

    Writes are serialised by a lock so concurrent server handler threads
    never interleave half-lines.  ``close()`` flushes; the file handle is
    only closed if this sink opened it.
    """

    def __init__(self, path: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path = getattr(path, "name", None)
        else:
            self.path = Path(path)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._owns = True

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=float)
        with self._lock:
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.flush()
            except ValueError:  # already closed
                return
            if self._owns:
                self._fh.close()


def validate_event(event: dict) -> None:
    """Raise ``ValueError`` if ``event`` violates the telemetry schema.

    Checks the reserved keys and the per-kind required fields; extra
    fields are always allowed (they are the payload).
    """
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    kind = event.get("event")
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    t = event.get("t")
    if not isinstance(t, (int, float)):
        raise ValueError(f"event {kind!r} missing numeric 't', got {t!r}")
    if "ts" in event and not isinstance(event["ts"], (int, float)):
        raise ValueError(f"'ts' must be numeric, got {event['ts']!r}")
    if kind in ("span_start", "span_end", "counter", "gauge"):
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event {kind!r} requires a string 'name'")
    if kind in ("span_start", "span_end"):
        if not isinstance(event.get("span_id"), int):
            raise ValueError(f"event {kind!r} requires an integer 'span_id'")
    if kind == "span_end" and not isinstance(event.get("duration_s"), (int, float)):
        raise ValueError("span_end requires numeric 'duration_s'")
    if kind in ("counter", "gauge") and not isinstance(
        event.get("value"), (int, float)
    ):
        raise ValueError(f"event {kind!r} requires numeric 'value'")
    if kind == "progress":
        for key in ("done", "total"):
            if not isinstance(event.get(key), (int, float)):
                raise ValueError(f"progress event requires numeric {key!r}")
    if kind == "metrics" and not isinstance(event.get("metrics"), dict):
        raise ValueError("metrics event requires a 'metrics' dict")
