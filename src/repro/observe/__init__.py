"""repro.observe — lightweight, dependency-free telemetry.

One :class:`Telemetry` handle bundles the three observability primitives —
a :class:`MetricsRegistry` (counters/gauges/histograms), an event sink
(JSONL spans, the ``--metrics FILE.jsonl`` stream) and a
:class:`ProgressReporter` (TTY bar or machine-readable stream) — and is
threaded through every layer of the platform: the Monte Carlo kernels
(batch timings), the :class:`~repro.distributed.datamanager.DataManager`
(dispatch/retry/merge spans), the TCP server (bytes, round-trips,
heartbeat latency) and the discrete-event cluster simulator (the same
span schema stamped with simulated time).

Passing ``telemetry=None`` (the default everywhere) disables the whole
subsystem at the cost of one identity check per call site.
"""

from .events import (
    EVENT_KINDS,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    validate_event,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .progress import NullProgress, ProgressReporter, StreamProgress, TTYProgress
from .telemetry import Telemetry, maybe_span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullProgress",
    "NullSink",
    "ProgressReporter",
    "StreamProgress",
    "TTYProgress",
    "Telemetry",
    "maybe_span",
    "validate_event",
]
