"""In-process metrics: counters, gauges and histograms.

The paper's operators needed to know "the condition of each client" on a
150-machine non-dedicated cluster; this module is the numeric half of that
answer.  A :class:`MetricsRegistry` is a named bag of

* :class:`Counter` — monotone totals (photons traced, tasks dispatched,
  bytes on the wire);
* :class:`Gauge` — last-write-wins levels (tasks in flight, connected
  clients);
* :class:`Histogram` — streaming distributions (task latency, merge
  latency, heartbeat gaps) with fixed bucket edges plus exact
  count/sum/min/max, so percentl-ish questions can be answered without
  storing samples.

Everything is dependency-free and thread-safe (one registry lock; metric
updates happen at task granularity, never per photon, so contention is
negligible).  ``snapshot()`` renders the whole registry as plain dicts —
the "final metrics block" of a
:class:`~repro.distributed.datamanager.RunReport` and the payload of the
JSONL ``metrics`` event.

Metrics support labels (``registry.counter("worker.photons", worker="w1")``)
so per-worker throughput lives next to the global totals under one name.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (seconds-flavoured exponential
#: ladder; fine for latencies from sub-millisecond to minutes).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


@dataclass
class Counter:
    """A monotonically increasing total (thread-safe)."""

    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self.value += amount

    def inc(self) -> None:
        self.add(1.0)


@dataclass
class Gauge:
    """A last-write-wins level (thread-safe)."""

    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


@dataclass
class Histogram:
    """A streaming distribution with fixed bucket edges.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; one extra
    overflow bucket counts the rest (Prometheus-style cumulative-free
    layout, kept simple).
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if tuple(sorted(self.buckets)) != tuple(self.buckets):
            raise ValueError("histogram bucket edges must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
            self.bucket_counts[bisect_right(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


def _key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


@dataclass(frozen=True)
class _Entry:
    name: str
    labels: dict
    metric: object


class MetricsRegistry:
    """Create-or-get factory and snapshot container for named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, _Entry] = {}

    def _get(self, kind, name: str, labels: dict[str, str], **kwargs):
        key = _key(name, labels)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(name=name, labels=dict(labels), metric=kind(**kwargs))
                self._entries[key] = entry
            elif not isinstance(entry.metric, kind):
                raise TypeError(
                    f"metric {name!r}{labels or ''} already registered as "
                    f"{type(entry.metric).__name__}, not {kind.__name__}"
                )
            return entry.metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Render every metric as plain JSON-serialisable dicts.

        Layout: ``{"counters": [...], "gauges": [...], "histograms": [...]}``
        where each row carries ``name``, ``labels`` and the metric's values.
        """
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            m = entry.metric
            if isinstance(m, Counter):
                out["counters"].append(
                    {"name": entry.name, "labels": entry.labels, "value": m.value}
                )
            elif isinstance(m, Gauge):
                out["gauges"].append(
                    {"name": entry.name, "labels": entry.labels, "value": m.value}
                )
            elif isinstance(m, Histogram):
                out["histograms"].append({
                    "name": entry.name,
                    "labels": entry.labels,
                    "count": m.count,
                    "total": m.total,
                    "mean": None if m.count == 0 else m.mean,
                    "min": None if m.count == 0 else m.minimum,
                    "max": None if m.count == 0 else m.maximum,
                    "buckets": list(m.buckets),
                    "bucket_counts": list(m.bucket_counts),
                })
        for rows in out.values():
            rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return out
