"""The :class:`Telemetry` handle — one object threaded through every layer.

Design
------
Instrumented code takes ``telemetry: Telemetry | None = None``.  ``None``
means *disabled* and costs one identity check on the hot path — the
vectorised kernel's throughput is unchanged (the ``< 5 %`` acceptance bound
of ISSUE 2 is enforced by ``benchmarks/bench_ablation_kernel.py``).  A live
``Telemetry`` bundles the three observability primitives:

* an event **sink** (:mod:`repro.observe.events`) receiving the JSONL
  stream of spans, counters and progress;
* a **metrics registry** (:mod:`repro.observe.metrics`) accumulating the
  final numeric block (photons/s, retries, bytes, latencies);
* a **progress reporter** (:mod:`repro.observe.progress`) for humans
  (TTY bar) or machines (JSON stream).

Timestamps: ``t`` is seconds on this telemetry's monotonic clock (zero at
construction), ``ts`` the Unix wall clock.  Discrete-event simulations emit
with explicit simulated ``t`` (:meth:`Telemetry.emit` accepts ``t=``), so a
simulated run and a real run produce streams of the same schema.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator

from .events import EventSink, JsonlSink, MemorySink, NullSink
from .metrics import MetricsRegistry
from .progress import NullProgress, ProgressReporter

__all__ = ["Telemetry", "maybe_span"]


@contextmanager
def maybe_span(telemetry: "Telemetry | None", name: str, **fields) -> Iterator[None]:
    """``telemetry.span(...)`` that no-ops when ``telemetry`` is ``None``.

    Collapses the ``if telemetry is None: work() else: with span(): work()``
    duplication at call sites — the work appears exactly once.
    """
    if telemetry is None:
        yield
        return
    with telemetry.span(name, **fields):
        yield


class Telemetry:
    """A sink + registry + progress reporter with one emit API.

    Examples
    --------
    >>> from repro.observe import Telemetry, MemorySink
    >>> t = Telemetry(sink=MemorySink())
    >>> with t.span("merge", task=3):
    ...     pass
    >>> [e["event"] for e in t.sink.events]
    ['span_start', 'span_end']
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
        progress: ProgressReporter | None = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.progress = progress if progress is not None else NullProgress()
        self._span_ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self._last_t = 0.0
        self._emit_lock = threading.Lock()

    # -------------------------------------------------------------- factories
    @classmethod
    def to_jsonl(
        cls,
        path: str | IO[str],
        *,
        progress: ProgressReporter | None = None,
    ) -> "Telemetry":
        """Telemetry writing its event stream to a JSONL file (``--metrics``)."""
        return cls(sink=JsonlSink(path), progress=progress)

    @classmethod
    def in_memory(cls, progress: ProgressReporter | None = None) -> "Telemetry":
        """Telemetry buffering events in a :class:`MemorySink` (tests)."""
        return cls(sink=MemorySink(), progress=progress)

    # ---------------------------------------------------------------- plumbing
    @property
    def enabled(self) -> bool:
        """Whether events reach a real sink (metrics always accumulate)."""
        return self.sink.enabled

    def now(self) -> float:
        """Seconds on this telemetry's monotonic clock."""
        return time.perf_counter() - self._epoch

    def new_span_id(self) -> int:
        """Allocate a fresh span id (for callers emitting raw span events)."""
        return next(self._span_ids)

    def emit(self, event: str, *, t: float | None = None, **fields) -> None:
        """Emit one event.

        ``t`` overrides the monotonic timestamp (used by the discrete-event
        simulator to stamp simulated seconds); when given, no wall-clock
        ``ts`` is attached.  Events are clamped monotone non-decreasing in
        ``t`` so the stream is always time-ordered.
        """
        if not self.sink.enabled:
            return
        with self._emit_lock:
            if t is None:
                t = self.now()
                fields.setdefault("ts", time.time())
            # Clamp monotone: concurrent emitters and retro-stamped spans
            # never push the stream backwards in time.
            t = max(t, self._last_t)
            self._last_t = t
            record = {"event": event, "t": t}
            record.update(fields)
            self.sink.emit(record)

    # ------------------------------------------------------------------ spans
    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        """Trace one timed section as a ``span_start``/``span_end`` pair."""
        if not self.sink.enabled:
            yield
            return
        span_id = next(self._span_ids)
        start = self.now()
        self.emit("span_start", name=name, span_id=span_id, **fields)
        try:
            yield
        finally:
            self.emit(
                "span_end",
                name=name,
                span_id=span_id,
                duration_s=self.now() - start,
                **fields,
            )

    def span_begin(self, name: str, **fields) -> tuple[int, float]:
        """Open a span whose end happens at a different call site.

        Returns an opaque ``(span_id, start_t)`` handle for
        :meth:`span_finish`.  Unlike :meth:`span`, the pair need not nest —
        the DataManager opens one per dispatched task attempt and closes it
        whenever that attempt settles.
        """
        span_id = next(self._span_ids)
        start = self.now()
        self.emit("span_start", name=name, span_id=span_id, **fields)
        return span_id, start

    def span_finish(self, name: str, handle: tuple[int, float], **fields) -> None:
        """Close a span opened with :meth:`span_begin`."""
        span_id, start = handle
        self.emit(
            "span_end",
            name=name,
            span_id=span_id,
            duration_s=self.now() - start,
            **fields,
        )

    def emit_span(
        self, name: str, start: float, end: float, **fields
    ) -> None:
        """Emit a complete span with explicit (e.g. simulated) timestamps."""
        span_id = next(self._span_ids)
        self.emit("span_start", t=start, name=name, span_id=span_id, **fields)
        self.emit(
            "span_end", t=end, name=name, span_id=span_id,
            duration_s=end - start, **fields,
        )

    # ---------------------------------------------------------------- metrics
    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment a counter and mirror it into the event stream."""
        counter = self.registry.counter(name, **labels)
        counter.add(amount)
        if self.sink.enabled:
            self.emit("counter", name=name, value=counter.value, **labels)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge and mirror it into the event stream."""
        self.registry.gauge(name, **labels).set(value)
        if self.sink.enabled:
            self.emit("gauge", name=name, value=value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one histogram observation (not mirrored per event)."""
        self.registry.histogram(name, **labels).observe(value)

    # --------------------------------------------------------------- progress
    def progress_update(self, done: int, total: int, **stats) -> None:
        """Advance the progress reporter and emit a ``progress`` event."""
        self.progress.update(done, total, **stats)
        if self.sink.enabled:
            self.emit("progress", done=done, total=total, **stats)

    # ------------------------------------------------------------- lifecycle
    def snapshot(self) -> dict:
        """The current metrics block (plain dicts)."""
        return self.registry.snapshot()

    def finish(self) -> dict:
        """Emit the final ``metrics`` event, close sink and progress.

        Returns the final metrics snapshot so callers can attach it to a
        :class:`~repro.distributed.datamanager.RunReport`.
        """
        metrics = self.snapshot()
        self.emit("metrics", metrics=metrics)
        self.progress.close()
        self.sink.close()
        return metrics
