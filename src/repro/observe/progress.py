"""Progress reporters: humans get a TTY bar, machines get JSON lines.

A :class:`ProgressReporter` receives ``update(done, total, **stats)`` calls
from the run (task granularity — the DataManager calls it once per merged
task) and renders them however it likes.  Implementations:

* :class:`NullProgress` — the disabled default;
* :class:`TTYProgress` — an in-place carriage-return bar on a terminal
  stream, throttled so a 10 000-task run does not spend its life redrawing;
* :class:`StreamProgress` — one machine-readable JSON object per update,
  for driving dashboards or supervising processes over a pipe.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO

__all__ = ["ProgressReporter", "NullProgress", "TTYProgress", "StreamProgress"]


class ProgressReporter:
    """Interface for run progress consumers."""

    def update(self, done: int, total: int, **stats) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Finish the display (newline, final flush...)."""


class NullProgress(ProgressReporter):
    """Ignore progress (the disabled default)."""

    def update(self, done: int, total: int, **stats) -> None:
        pass


class TTYProgress(ProgressReporter):
    """An in-place ``[#####.....] done/total`` bar.

    Redraws at most every ``min_interval`` seconds (the final update always
    draws), writes to ``stream`` (default stderr so piped stdout stays
    machine-clean), and appends any ``photons_per_s`` stat it is given.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        width: int = 30,
        min_interval: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.width = width
        self.min_interval = min_interval
        self._last_draw = -float("inf")
        self._drew = False

    def update(self, done: int, total: int, **stats) -> None:
        now = time.perf_counter()
        if done < total and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        frac = done / total if total else 1.0
        filled = int(round(frac * self.width))
        bar = "#" * filled + "." * (self.width - filled)
        extra = ""
        if "photons_per_s" in stats:
            extra = f" {stats['photons_per_s']:,.0f} photons/s"
        self.stream.write(f"\r[{bar}] {done}/{total} tasks{extra}")
        self.stream.flush()
        self._drew = True

    def close(self) -> None:
        if self._drew:
            self.stream.write("\n")
            self.stream.flush()


class StreamProgress(ProgressReporter):
    """One JSON object per update on ``stream`` (machine-readable)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def update(self, done: int, total: int, **stats) -> None:
        record = {"progress": {"done": done, "total": total, **stats}}
        self.stream.write(json.dumps(record, default=float) + "\n")
        self.stream.flush()
