"""Reproducible random-number streams for distributed Monte Carlo.

The distributed platform splits a simulation of ``n_photons`` into tasks, and
each task must draw from a random stream that is

* statistically independent of every other task's stream, and
* a pure function of ``(experiment_seed, task_index)`` — *not* of which worker
  executes the task, how tasks are interleaved, or how many workers exist.

That second property is what makes the merged tallies of a distributed run
bit-identical to a serial run (tested in
``tests/distributed/test_determinism.py``) and is the Python analogue of the
per-client seeding the paper's Java ``DataManager`` performs.

We build streams with :class:`numpy.random.SeedSequence` spawning, which is
the NumPy-endorsed mechanism for constructing provably non-overlapping
substreams, and use the Philox counter-based bit generator, the standard
choice for parallel Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StreamFactory",
    "task_rng",
    "spawn_rngs",
]

#: Bit generator used everywhere.  Philox is counter-based: streams keyed by
#: distinct SeedSequences never overlap, and generation order inside a stream
#: is independent of other streams.
_BITGEN = np.random.Philox


def task_rng(experiment_seed: int, task_index: int) -> np.random.Generator:
    """Return the random generator for one task of one experiment.

    Parameters
    ----------
    experiment_seed:
        The user-facing seed of the whole simulation.
    task_index:
        Zero-based index of the task within the simulation.  The same
        ``(experiment_seed, task_index)`` pair always yields a generator that
        produces the same sequence, regardless of process, platform or the
        number of workers.
    """
    if task_index < 0:
        raise ValueError(f"task_index must be >= 0, got {task_index}")
    ss = np.random.SeedSequence(entropy=experiment_seed, spawn_key=(task_index,))
    return np.random.Generator(_BITGEN(ss))


def spawn_rngs(experiment_seed: int, n_tasks: int) -> list[np.random.Generator]:
    """Return independent generators for ``n_tasks`` tasks (see :func:`task_rng`)."""
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    return [task_rng(experiment_seed, i) for i in range(n_tasks)]


@dataclass(frozen=True)
class StreamFactory:
    """Factory handing out per-task random streams for one experiment.

    A ``StreamFactory`` is cheap, picklable and immutable, so the
    ``DataManager`` can embed one in every task description it ships to a
    worker; the worker then materialises the actual generator locally.

    Examples
    --------
    >>> f = StreamFactory(seed=42)
    >>> g0 = f.for_task(0)
    >>> g0_again = StreamFactory(seed=42).for_task(0)
    >>> g0.random() == g0_again.random()
    True
    """

    seed: int

    def for_task(self, task_index: int) -> np.random.Generator:
        """Generator for task ``task_index`` (stable across processes)."""
        return task_rng(self.seed, task_index)

    def spawn(self, n_tasks: int) -> list[np.random.Generator]:
        """Generators for tasks ``0 .. n_tasks-1``."""
        return spawn_rngs(self.seed, n_tasks)
