"""Vectorised production kernel.

Traces photons in structure-of-arrays sub-batches: one NumPy-vectorised
"event" (boundary hit or scattering interaction) per live photon per loop
iteration.  Statistically identical to the scalar reference kernel
(:mod:`repro.core.kernel`) — the integration tests compare the two on every
headline quantity — but orders of magnitude faster, which is what makes
laptop-scale reproduction of the paper's billion-photon experiments
feasible.

Design notes (following this repo's HPC guides):

* All per-photon state lives in flat float64/int64/bool arrays; every update
  is an in-place whole-array operation — no per-photon Python objects and no
  repeated fancy-index gathers of the full state.
* **Stream compaction**: dead photons are squeezed out of the state arrays
  whenever the dead fraction passes a threshold, so the working arrays track
  the live population and per-iteration cost decays with it.  A ``gid``
  array maps compacted rows back to original photon ids for path recording.
* Per-layer optical coefficients are gathered with a single fancy-index from
  the :class:`~repro.tissue.layer.LayerStack` coefficient vectors.
* Path recording ("save path" for detected photons, the Fig. 3 quantity)
  buffers interaction events as append-only arrays and periodically compacts
  them: events of dead-undetected photons are dropped, events of detected
  photons are deposited into the voxel grid, and only events of still-live
  photons are retained.  This keeps memory bounded by the live tail rather
  than the full event history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import SimulationConfig
from .fresnel import fresnel_reflectance
from .tally import Tally

#: Square of the direction-cosine threshold for the near-vertical rotation
#: branch (matches ``repro.core.sampling._VERTICAL_EPS``).
_VERTICAL_EPS2 = (1.0 - 1e-12) ** 2

__all__ = ["run_batch_vectorized", "DEFAULT_SUB_BATCH"]

#: Photons traced simultaneously.  Large enough to amortise NumPy dispatch
#: and the long-lived-photon tail, small enough that per-photon state and
#: path-event buffers stay modest.
DEFAULT_SUB_BATCH = 65536

#: Compact the path-event buffers every this many loop iterations.
_COMPACT_EVERY = 256

#: Squeeze dead photons out of the state arrays when they exceed this
#: fraction of the batch.
_DEAD_FRACTION = 0.25


@dataclass
class _PathEvents:
    """Append-only buffer of (photon, voxel, weight) interaction events.

    Events are voxelised at append time: positions outside the recording
    grid are dropped immediately and the rest are stored as flat voxel
    indices, which halves memory traffic relative to buffering raw
    coordinates and makes the final deposit a single ``np.add.at``.
    """

    spec: "object"  # GridSpec; typed loosely to avoid an import cycle
    gids: list[np.ndarray] = field(default_factory=list)
    voxels: list[np.ndarray] = field(default_factory=list)
    ws: list[np.ndarray] = field(default_factory=list)

    def append(self, gid, x, y, z, w) -> None:
        flat, inside = self.spec.world_to_index(x, y, z)
        flat = np.atleast_1d(flat)
        inside = np.atleast_1d(inside)
        # Normalise dtypes and shapes *before* masking: gid and w may arrive
        # as lists, scalars or narrower dtypes, and a scalar weight applies
        # to every event.  Masking unaligned inputs with `inside` would
        # silently mispair weights with voxels, so misalignment is an error.
        gid = np.atleast_1d(np.asarray(gid, dtype=np.int64))
        w = np.asarray(w, dtype=np.float64)
        w = np.broadcast_to(w, flat.shape) if w.ndim == 0 else np.atleast_1d(w)
        if gid.shape != flat.shape or w.shape != flat.shape:
            raise ValueError(
                "misaligned path-event inputs: "
                f"gid {gid.shape}, w {w.shape}, positions {flat.shape}"
            )
        if not inside.any():
            return
        self.gids.append(gid[inside])
        self.voxels.append(flat[inside])
        self.ws.append(np.ascontiguousarray(w[inside], dtype=np.float64))

    def _append_raw(self, gid: np.ndarray, voxel: np.ndarray, w: np.ndarray) -> None:
        self.gids.append(gid)
        self.voxels.append(voxel)
        self.ws.append(w)

    def compact(
        self,
        keep_mask_by_gid: np.ndarray,
        deposit_mask_by_gid: np.ndarray,
        grid: np.ndarray,
    ) -> None:
        """Deposit events of detected photons, keep events of live photons.

        ``keep_mask_by_gid[g]`` — photon g is still alive (retain events).
        ``deposit_mask_by_gid[g]`` — photon g was detected (commit events).
        Everything else is dropped.
        """
        if not self.gids:
            return
        gid = np.concatenate(self.gids)
        voxel = np.concatenate(self.voxels)
        w = np.concatenate(self.ws)
        self.gids.clear()
        self.voxels.clear()
        self.ws.clear()

        dep = deposit_mask_by_gid[gid]
        if dep.any():
            # reshape(-1) on a non-contiguous grid would return a *copy* and
            # the deposit would vanish silently; grids from GridSpec.zeros()
            # are always contiguous, so this only guards external arrays.
            if not grid.flags["C_CONTIGUOUS"]:
                raise ValueError("recording grid must be C-contiguous")
            np.add.at(grid.reshape(-1), voxel[dep], w[dep])
        # A photon can be both detected and still alive in classical mode
        # (the Fresnel remnant keeps propagating); exclude already-deposited
        # events from the retained set so nothing is committed twice.
        keep = keep_mask_by_gid[gid] & ~dep
        if keep.any():
            self._append_raw(gid[keep], voxel[keep], w[keep])


class _State:
    """Compacted structure-of-arrays photon state for one sub-batch."""

    __slots__ = (
        "x", "y", "z", "ux", "uy", "uz", "w", "layer",
        "opl", "maxz", "s_dim", "alive", "gid", "lpl",
    )

    def __init__(self, pos: np.ndarray, dirs: np.ndarray, layer: np.ndarray, w: np.ndarray):
        n = pos.shape[0]
        self.x = pos[:, 0].copy()
        self.y = pos[:, 1].copy()
        self.z = pos[:, 2].copy()
        self.ux = dirs[:, 0].copy()
        self.uy = dirs[:, 1].copy()
        self.uz = dirs[:, 2].copy()
        self.w = w
        self.layer = layer
        self.opl = np.zeros(n)
        self.maxz = self.z.copy()
        self.s_dim = np.zeros(n)
        self.alive = np.ones(n, dtype=bool)
        self.gid = np.arange(n, dtype=np.int64)
        #: Per-layer geometric pathlength, (n, n_layers); allocated only
        #: when the caller captures perturbation-MC path records.
        self.lpl: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.x.size

    def squeeze(self) -> None:
        """Drop dead photons from every state array (stream compaction)."""
        keep = self.alive
        for name in self.__slots__:
            value = getattr(self, name)
            if value is not None:
                setattr(self, name, value[keep])


def run_batch_vectorized(
    config: SimulationConfig,
    n_photons: int,
    rng: np.random.Generator,
    *,
    sub_batch: int = DEFAULT_SUB_BATCH,
    telemetry=None,
    capture_paths: bool = False,
) -> Tally:
    """Trace ``n_photons`` photons with the vectorised kernel.

    Parameters
    ----------
    config:
        The experiment description.
    n_photons:
        Photons to launch.
    rng:
        Randomness source; results are a deterministic function of the
        generator state (and hence of the task's stream).
    sub_batch:
        Photons per structure-of-arrays batch.
    telemetry:
        Optional :class:`~repro.observe.Telemetry`; when given, each
        sub-batch is traced as a ``kernel.batch`` span and photons
        accumulate on the ``kernel.photons`` counter.  ``None`` (default)
        adds a single identity check to the whole call — telemetry never
        enters the per-iteration loop.
    capture_paths:
        Record per-detection-event path statistics (per-layer pathlength,
        exit weight, optical pathlength, maximum depth) on ``tally.paths``
        for perturbation Monte Carlo.  Capture consumes no RNG draws, so
        all other tally fields are bit-identical with and without it.
    """
    if n_photons < 0:
        raise ValueError(f"n_photons must be >= 0, got {n_photons}")
    if sub_batch <= 0:
        raise ValueError(f"sub_batch must be > 0, got {sub_batch}")
    tally = Tally(n_layers=len(config.stack), records=config.records)
    if capture_paths:
        from ..detect.records import PathRecords

        tally.paths = PathRecords(len(config.stack))
    done = 0
    while done < n_photons:
        n = min(sub_batch, n_photons - done)
        if telemetry is None:
            _run_sub_batch(config, tally, n, rng)
        else:
            with telemetry.span("kernel.batch", kernel="vector", photons=n):
                _run_sub_batch(config, tally, n, rng)
            telemetry.count("kernel.photons", n, kernel="vector")
        done += n
    return tally


def _run_sub_batch(
    config: SimulationConfig, tally: Tally, n: int, rng: np.random.Generator
) -> None:
    stack = config.stack
    n_layers = len(stack)
    boundaries = stack.boundaries  # (n_layers + 1,)
    gate = config.pathlength_gate()
    record_path = tally.path_grid is not None
    semi_infinite = stack.is_semi_infinite
    # Hot-loop fast-path flags, hoisted out of the iteration.
    any_transparent = bool((stack.mu_t <= 0.0).any())
    uniform_g = float(stack.g[0]) if bool((stack.g == stack.g[0]).all()) else None
    single_layer = n_layers == 1

    # --- initialise photons ----------------------------------------------------
    pos, dirs = config.source.sample(n, rng)
    w = np.ones(n)
    surface_launch = (pos[:, 2] == 0.0) & (dirs[:, 2] > 0.0)
    if np.any(surface_launch):
        _launch_through_surface(
            dirs, w, surface_launch, stack.n_above, stack[0].properties.n, tally
        )

    layer = np.zeros(n, dtype=np.int64)
    buried = ~surface_launch
    if np.any(buried):
        idx = np.searchsorted(boundaries, pos[buried, 2], side="right") - 1
        layer[buried] = np.minimum(np.maximum(idx, 0), n_layers - 1)

    st = _State(pos, dirs, layer, w)
    if tally.paths is not None:
        st.lpl = np.zeros((n, n_layers))
    tally.n_launched += n

    detected_flag = np.zeros(n, dtype=bool)
    events = _PathEvents(config.records.path_grid) if record_path else None
    if record_path:
        events.append(st.gid, st.x, st.y, st.z, st.w)

    mu_a_vec = stack.mu_a
    mu_t_vec = stack.mu_t
    g_vec = stack.g
    n_vec = stack.n

    iteration = 0
    while st.size:
        iteration += 1
        if iteration > config.max_steps:
            tally.lost_weight += float(st.w.sum())
            tally.record_penetration(st.maxz[st.alive])
            break

        if single_layer:
            mu_t = mu_t_vec[0]
            n_med = n_vec[0]
        else:
            mu_t = mu_t_vec[st.layer]
            n_med = n_vec[st.layer]

        # Draw fresh dimensionless steps where the previous one is spent.
        need = st.s_dim <= 0.0
        n_need = int(np.count_nonzero(need))
        if n_need:
            st.s_dim[need] = -np.log(1.0 - rng.random(n_need))

        if any_transparent:
            d_step = np.where(mu_t > 0.0, st.s_dim / np.maximum(mu_t, 1e-300), np.inf)
        else:
            d_step = st.s_dim / mu_t

        d_bnd = np.full(st.size, np.inf)
        up = st.uz < 0.0
        down = st.uz > 0.0
        if single_layer:
            d_bnd[down] = (boundaries[1] - st.z[down]) / st.uz[down]
            d_bnd[up] = (boundaries[0] - st.z[up]) / st.uz[up]
        else:
            d_bnd[down] = (boundaries[st.layer[down] + 1] - st.z[down]) / st.uz[down]
            d_bnd[up] = (boundaries[st.layer[up]] - st.z[up]) / st.uz[up]
        # Round-off can leave a photon epsilon past its boundary; clamp.
        np.maximum(d_bnd, 0.0, out=d_bnd)

        hit = d_bnd <= d_step
        d = np.where(hit, d_bnd, d_step)

        # Pathological: transparent semi-infinite layer, photon never lands.
        if any_transparent:
            runaway = np.isinf(d)
            if runaway.any():
                tally.lost_weight += float(st.w[runaway].sum())
                tally.record_penetration(st.maxz[runaway])
                st.alive[runaway] = False
                st.w[runaway] = 0.0
                d[runaway] = 0.0
                hit[runaway] = False

        # --- move photon -----------------------------------------------------
        st.x += st.ux * d
        st.y += st.uy * d
        st.z += st.uz * d
        st.opl += n_med * d
        if st.lpl is not None:
            if single_layer:
                st.lpl[:, 0] += d
            else:
                st.lpl[np.arange(st.size), st.layer] += d
        np.maximum(st.maxz, st.z, out=st.maxz)
        # Spend the step: boundary hits retain the unused remainder,
        # interactions reset to zero (drawn afresh next iteration).
        st.s_dim -= d * mu_t
        st.s_dim[~hit] = 0.0
        np.maximum(st.s_dim, 0.0, out=st.s_dim)

        hit &= st.alive
        bi = np.flatnonzero(hit)  # photons at a boundary
        ii = np.flatnonzero(hit != st.alive)  # alive & ~hit: interaction sites

        if bi.size:
            _handle_boundaries(
                config, tally, rng, gate, st, detected_flag, bi,
                n_vec, n_layers, semi_infinite,
            )
        if ii.size:
            _handle_interactions(
                config, tally, rng, events, st, ii,
                mu_a_vec, mu_t_vec, g_vec, uniform_g, single_layer,
            )

        if record_path and iteration % _COMPACT_EVERY == 0:
            alive_by_gid = np.zeros(n, dtype=bool)
            alive_by_gid[st.gid[st.alive]] = True
            events.compact(alive_by_gid, detected_flag, tally.path_grid)
            detected_flag[:] = False  # already deposited

        # --- stream compaction -------------------------------------------------
        n_dead = st.size - int(np.count_nonzero(st.alive))
        if n_dead and n_dead >= st.size * _DEAD_FRACTION:
            st.squeeze()

    if record_path:
        events.compact(np.zeros(n, dtype=bool), detected_flag, tally.path_grid)


def _launch_through_surface(
    dirs: np.ndarray,
    w: np.ndarray,
    mask: np.ndarray,
    n_outside: float,
    n_inside: float,
    tally: Tally,
) -> None:
    """Refract launch directions through the entry surface (in place).

    Applies the angle-dependent Fresnel loss as specular reflectance and
    bends each direction by Snell's law, so tilted sources enter the
    tissue physically.  For normal incidence this reduces to the classic
    ``((n1-n2)/(n1+n2))^2`` loss with an unchanged direction.
    """
    cos_i = dirs[mask, 2]
    r = fresnel_reflectance(cos_i, n_outside, n_inside)
    tally.specular_weight += float(r.sum())
    w[mask] -= r
    if n_outside != n_inside:
        ratio = n_outside / n_inside
        sin_t2 = ratio * ratio * (1.0 - cos_i * cos_i)
        cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin_t2))
        sub = dirs[mask]
        sub[:, 0] *= ratio
        sub[:, 1] *= ratio
        sub[:, 2] = cos_t
        norm = np.sqrt((sub * sub).sum(axis=1))
        dirs[mask] = sub / norm[:, None]


def _handle_boundaries(
    config, tally, rng, gate, st: _State, detected_flag, bi,
    n_vec, n_layers, semi_infinite,
) -> None:
    """Medium-change handling for photons sitting exactly on an interface."""
    buz = st.uz[bi]
    blay = st.layer[bi]
    going_up = buz < 0.0
    exiting = (going_up & (blay == 0)) | (
        ~going_up & (blay == n_layers - 1) & (not semi_infinite)
    )

    n_here = n_vec[blay]
    next_lay = np.clip(blay + np.where(going_up, -1, 1), 0, n_layers - 1)
    n_next = np.where(
        exiting,
        np.where(going_up, config.stack.n_above, config.stack.n_below),
        n_vec[next_lay],
    )

    cos_i = np.abs(buz)
    r_f = fresnel_reflectance(cos_i, n_here, n_next)

    if config.boundary_mode == "classical":
        classical_exit = exiting
    else:
        classical_exit = np.zeros_like(exiting)

    if np.any(classical_exit):
        ce = bi[classical_exit]
        r_ce = r_f[classical_exit]
        escaped = (1.0 - r_ce) * st.w[ce]
        _score_escapes(
            config, tally, gate, detected_flag,
            st.gid[ce], st.x[ce], st.y[ce], st.uz[ce], escaped,
            st.opl[ce], st.maxz[ce], going_up[classical_exit],
            terminal=False,
            elpl=None if st.lpl is None else st.lpl[ce],
        )
        st.w[ce] *= r_ce
        st.uz[ce] = -st.uz[ce]
        dead = st.w[ce] <= 0.0
        if np.any(dead):
            st.alive[ce[dead]] = False
            tally.record_penetration(st.maxz[ce[dead]])

    rest = ~classical_exit
    if not np.any(rest):
        return
    ri = bi[rest]
    r_rest = r_f[rest]
    up_rest = going_up[rest]
    exit_rest = exiting[rest]
    n1 = n_here[rest]
    n2 = n_next[rest]
    nlay = next_lay[rest]

    reflect = rng.random(ri.size) < r_rest

    # Internal reflection: flip the z direction cosine.
    refl_idx = ri[reflect]
    st.uz[refl_idx] = -st.uz[refl_idx]

    transmit = ~reflect
    # Transmission out of the tissue: score and terminate.
    out = transmit & exit_rest
    if np.any(out):
        oi = ri[out]
        _score_escapes(
            config, tally, gate, detected_flag,
            st.gid[oi], st.x[oi], st.y[oi], st.uz[oi], st.w[oi],
            st.opl[oi], st.maxz[oi], up_rest[out],
            terminal=True,
            elpl=None if st.lpl is None else st.lpl[oi],
        )
        st.alive[oi] = False
        st.w[oi] = 0.0

    # Transmission into the adjacent layer: Snell refraction.
    inside = transmit & ~exit_rest
    if np.any(inside):
        si = ri[inside]
        ratio = n1[inside] / n2[inside]
        ci = np.abs(st.uz[si])
        sin_t2 = ratio * ratio * (1.0 - ci * ci)
        cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin_t2))
        st.ux[si] *= ratio
        st.uy[si] *= ratio
        st.uz[si] = np.copysign(cos_t, st.uz[si])
        norm = np.sqrt(st.ux[si] ** 2 + st.uy[si] ** 2 + st.uz[si] ** 2)
        st.ux[si] /= norm
        st.uy[si] /= norm
        st.uz[si] /= norm
        st.layer[si] = nlay[inside]


def _score_escapes(
    config, tally, gate, detected_flag,
    gids, ex, ey, euz, ew, eopl, emaxz, going_up,
    *, terminal: bool, elpl=None,
) -> None:
    """Score escaping weight: reflectance/transmittance, detection, gating.

    ``terminal`` marks escapes that end the photon (probabilistic mode);
    classical-mode partial escapes keep the photon alive and must not be
    counted in the per-photon penetration histogram.  ``elpl`` carries the
    escaping photons' per-layer pathlengths when path records are captured.
    """
    if terminal:
        tally.record_penetration(emaxz)
    up = going_up
    down = ~going_up
    if np.any(down):
        tally.transmittance_weight += float(ew[down].sum())
    if not np.any(up):
        return

    tx, ty, tuz = ex[up], ey[up], euz[up]
    tw, topl, tmaxz = ew[up], eopl[up], emaxz[up]
    tg = gids[up]

    tally.diffuse_reflectance_weight += float(tw.sum())
    if tally.reflectance_rho_hist is not None:
        tally.reflectance_rho_hist.add(np.hypot(tx, ty), tw)

    accepted = config.detector.accepts(tx, ty, tuz)
    if gate is not None:
        accepted &= gate.accepts(topl)
    if not np.any(accepted):
        return

    tally.detected_count += int(accepted.sum())
    tally.detected_weight += float(tw[accepted].sum())
    tally.pathlength.add(topl[accepted], tw[accepted])
    tally.penetration_depth.add(tmaxz[accepted], tw[accepted])
    if tally.pathlength_hist is not None:
        tally.pathlength_hist.add(topl[accepted], tw[accepted])
    if tally.paths is not None and elpl is not None:
        tally.paths.append(
            elpl[up][accepted], tw[accepted], topl[accepted], tmaxz[accepted], 0
        )
    detected_flag[tg[accepted]] = True


def _handle_interactions(
    config, tally, rng, events, st: _State, ii,
    mu_a_vec, mu_t_vec, g_vec, uniform_g, single_layer,
) -> None:
    """Drop (absorb) and spin (scatter) photons at interaction sites.

    This runs every loop iteration and dominates the per-iteration constant,
    so it avoids helper-function dispatch: the Henyey–Greenstein draw and the
    direction rotation are inlined with fast paths for the common case of a
    single layer / uniform anisotropy.  The maths is identical to
    :func:`repro.core.sampling.sample_hg_cosine` and
    :func:`repro.core.sampling.rotate_direction` (cross-checked in tests).
    """
    m = ii.size
    wi = st.w[ii]
    if single_layer:
        mu_a = mu_a_vec[0]
        mu_t = mu_t_vec[0]
        # --- update absorption and photon weight -------------------------------
        absorbed = wi * (mu_a / mu_t) if mu_t > 0.0 else np.zeros(m)
        tally.absorbed_by_layer[0] += float(absorbed.sum())
    else:
        lay = st.layer[ii]
        mu_a = mu_a_vec[lay]
        mu_t = mu_t_vec[lay]
        absorbed = np.where(mu_t > 0.0, wi * mu_a / np.maximum(mu_t, 1e-300), 0.0)
        tally.absorbed_by_layer += np.bincount(
            lay, weights=absorbed, minlength=tally.absorbed_by_layer.size
        )
    if tally.absorption_grid is not None:
        config.records.absorption_grid.deposit(
            tally.absorption_grid, st.x[ii], st.y[ii], st.z[ii], absorbed
        )
    wi = wi - absorbed
    st.w[ii] = wi

    if events is not None:
        events.append(st.gid[ii], st.x[ii], st.y[ii], st.z[ii], wi)

    # --- spin: Henyey-Greenstein cos(theta), uniform azimuth --------------------
    xi = rng.random(m)
    if uniform_g is not None:
        g = uniform_g
        if abs(g) < 1e-12:
            cos_theta = 2.0 * xi - 1.0
        else:
            frac = (1.0 - g * g) / (1.0 - g + 2.0 * g * xi)
            cos_theta = (1.0 + g * g - frac * frac) / (2.0 * g)
            np.clip(cos_theta, -1.0, 1.0, out=cos_theta)
    else:
        g = g_vec[st.layer[ii]]
        frac = (1.0 - g * g) / (1.0 - g + 2.0 * g * xi)
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_theta = (1.0 + g * g - frac * frac) / (2.0 * g)
        iso = np.abs(g) < 1e-12
        if iso.any():
            cos_theta[iso] = 2.0 * xi[iso] - 1.0
        np.clip(cos_theta, -1.0, 1.0, out=cos_theta)
    psi = rng.random(m)
    psi *= 2.0 * np.pi

    ux, uy, uz = st.ux[ii], st.uy[ii], st.uz[ii]
    sin_theta = np.sqrt(1.0 - cos_theta * cos_theta)
    cos_psi = np.cos(psi)
    sin_psi = np.sin(psi)
    uz2 = uz * uz
    denom = np.sqrt(np.maximum(1.0 - uz2, 1e-300))
    sc = sin_theta * cos_psi
    ss = sin_theta * sin_psi
    nux = (ux * uz * sc - uy * ss) / denom + ux * cos_theta
    nuy = (uy * uz * sc + ux * ss) / denom + uy * cos_theta
    nuz = -denom * sc + uz * cos_theta
    vertical = uz2 >= _VERTICAL_EPS2
    if vertical.any():
        sign = np.sign(uz[vertical])
        nux[vertical] = sc[vertical]
        nuy[vertical] = sign * ss[vertical]
        nuz[vertical] = sign * cos_theta[vertical]
    norm = np.sqrt(nux * nux + nuy * nuy + nuz * nuz)
    st.ux[ii] = nux / norm
    st.uy[ii] = nuy / norm
    st.uz[ii] = nuz / norm

    # --- if weight too small: survive roulette ----------------------------------
    small = wi < config.roulette.threshold
    if small.any():
        cand = ii[small]
        survive = rng.random(cand.size) < (1.0 / config.roulette.boost)
        winners = cand[survive]
        losers = cand[~survive]
        if winners.size:
            boost = config.roulette.boost
            tally.roulette_net_weight += float(st.w[winners].sum()) * (boost - 1.0)
            st.w[winners] *= boost
        if losers.size:
            tally.roulette_net_weight -= float(st.w[losers].sum())
            st.w[losers] = 0.0
            st.alive[losers] = False
            tally.record_penetration(st.maxz[losers])
