"""Boundary optics: Snell refraction, critical angle, Fresnel reflectance.

Implements the "if photon angle > critical angle: internally reflect, else
refract" branch of the paper's Fig. 1 pseudocode.  Two treatments are
supported, matching the paper's feature list ("refraction and internal
reflection (classical physics or probabilistic methods)"):

* ``probabilistic`` — draw a uniform variate; reflect the whole photon with
  probability R(theta_i), otherwise transmit it whole.  This is the MCML
  default and keeps photon weight untouched at boundaries.
* ``classical`` — deterministically split the wave: a fraction R of the
  weight continues as the reflected photon, the fraction (1 − R) is
  transmitted.  In our kernels the photon follows the *larger* branch and
  the smaller branch's weight is accounted where it physically goes
  (escape tally when the small branch leaves the tissue, or carried along
  otherwise); see the kernel modules for the exact bookkeeping.

All functions broadcast over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "specular_reflectance",
    "cos_transmitted",
    "fresnel_reflectance",
    "critical_cosine",
]


def specular_reflectance(n1: float, n2: float) -> float:
    """Normal-incidence Fresnel reflectance between media n1 and n2.

    This is the specular loss applied when a collimated beam first strikes
    the tissue surface: ``R_sp = ((n1 - n2) / (n1 + n2))^2``.
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("refractive indices must be > 0")
    r = (n1 - n2) / (n1 + n2)
    return r * r


def critical_cosine(n1: float, n2: float) -> float:
    """Cosine of the critical angle for light going from n1 into n2.

    For ``n1 <= n2`` there is no total internal reflection and the critical
    cosine is 0 (every incidence angle transmits partially).  For
    ``n1 > n2`` it is ``sqrt(1 - (n2/n1)^2)``; incidence with
    ``|cos theta_i| < critical_cosine`` is totally internally reflected.
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("refractive indices must be > 0")
    if n1 <= n2:
        return 0.0
    ratio = n2 / n1
    return float(np.sqrt(1.0 - ratio * ratio))


def cos_transmitted(
    cos_i: np.ndarray | float, n1: np.ndarray | float, n2: np.ndarray | float
) -> np.ndarray:
    """|cos| of the refracted angle by Snell's law, NaN under total reflection.

    Parameters
    ----------
    cos_i:
        |cos| of the incidence angle (>= 0).
    n1, n2:
        Indices of the incidence and transmission media.
    """
    cos_i = np.abs(np.asarray(cos_i, dtype=np.float64))
    n1 = np.asarray(n1, dtype=np.float64)
    n2 = np.asarray(n2, dtype=np.float64)
    sin_i2 = 1.0 - cos_i * cos_i
    sin_t2 = (n1 / n2) ** 2 * sin_i2
    with np.errstate(invalid="ignore"):
        return np.sqrt(1.0 - sin_t2)  # NaN where sin_t2 > 1 (total reflection)


def fresnel_reflectance(
    cos_i: np.ndarray | float, n1: np.ndarray | float, n2: np.ndarray | float
) -> np.ndarray:
    """Unpolarised Fresnel reflectance R(theta_i) for n1 -> n2 incidence.

    Averages the s- and p-polarised intensities:

    ``R = 1/2 [ sin^2(ti - tt)/sin^2(ti + tt) + tan^2(ti - tt)/tan^2(ti + tt) ]``

    evaluated in the numerically stable cosine form.  Handles the three
    special cases exactly:

    * total internal reflection (``sin_t > 1``): R = 1;
    * normal incidence: R = ((n1-n2)/(n1+n2))^2;
    * grazing incidence (``cos_i -> 0``): R -> 1.
    """
    cos_i = np.abs(np.asarray(cos_i, dtype=np.float64))
    n1 = np.asarray(n1, dtype=np.float64)
    n2 = np.asarray(n2, dtype=np.float64)
    cos_i, n1, n2 = np.broadcast_arrays(cos_i, n1, n2)

    out = np.empty(cos_i.shape, dtype=np.float64)

    matched = np.isclose(n1, n2)
    out[matched] = 0.0

    todo = ~matched
    if np.any(todo):
        ci = np.clip(cos_i[todo], 0.0, 1.0)
        a1 = n1[todo]
        a2 = n2[todo]
        si2 = 1.0 - ci * ci
        st2 = (a1 / a2) ** 2 * si2
        r = np.empty_like(ci)

        tir = st2 >= 1.0
        r[tir] = 1.0

        ok = ~tir
        if np.any(ok):
            cio = ci[ok]
            cto = np.sqrt(1.0 - st2[ok])
            n1o = a1[ok]
            n2o = a2[ok]
            # s- and p-polarised amplitude reflection coefficients.
            rs = (n1o * cio - n2o * cto) / (n1o * cio + n2o * cto)
            rp = (n1o * cto - n2o * cio) / (n1o * cto + n2o * cio)
            r[ok] = 0.5 * (rs * rs + rp * rp)

        out[todo] = r

    return np.clip(out, 0.0, 1.0)
