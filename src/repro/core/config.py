"""Simulation configuration objects.

``SimulationConfig`` bundles everything a worker needs to run one photon
batch: tissue stack, source, detector, gate, boundary-physics mode, roulette
parameters and recording options.  It is immutable and picklable — the
``DataManager`` ships one copy to every worker, together with a per-task
photon count and RNG stream index (see :mod:`repro.distributed.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal, Union

from ..detect.detector import AcceptAll, Detector
from ..detect.gating import PathlengthGate, TimeGate
from ..detect.records import GridSpec
from ..sources.base import Source
from ..tissue.layer import LayerStack
from .roulette import RouletteConfig

__all__ = ["RecordConfig", "SimulationConfig", "BoundaryMode"]

#: The two boundary treatments of the paper's feature list.
BoundaryMode = Literal["probabilistic", "classical"]

Gate = Union[PathlengthGate, TimeGate]


@dataclass(frozen=True)
class RecordConfig:
    """What to record beyond the scalar energy balance.

    Attributes
    ----------
    absorption_grid:
        Voxel grid for deposited (absorbed) weight of *all* photons — the
        Fig. 4 quantity.  ``None`` disables it.
    path_grid:
        Voxel grid accumulating the visited positions of *detected* photons
        only ("save path" in Fig. 1) — the Fig. 3 banana quantity.  ``None``
        disables it; enabling it costs per-step bookkeeping.
    pathlength_bins:
        ``(l_min, l_max, n_bins)`` for a histogram of detected optical
        pathlengths, or ``None``.
    reflectance_rho_bins:
        ``(rho_max, n_bins)`` for a radially resolved diffuse-reflectance
        histogram R(rho) over all escaping photons, or ``None``.  Used by
        the diffusion-theory validation.
    penetration_bins:
        ``(z_max, n_bins)`` for a histogram of every photon's lifetime
        maximum depth (one count per terminated photon), or ``None``.
        This is the Fig. 4 quantity: "most of the photons are reflected
        before they enter the CSF, however some do penetrate all the way
        into the white matter".
    """

    absorption_grid: GridSpec | None = None
    path_grid: GridSpec | None = None
    pathlength_bins: tuple[float, float, int] | None = None
    reflectance_rho_bins: tuple[float, int] | None = None
    penetration_bins: tuple[float, int] | None = None

    def __post_init__(self) -> None:
        if self.pathlength_bins is not None:
            lo, hi, n = self.pathlength_bins
            if not (0 <= lo < hi) or n <= 0:
                raise ValueError(f"invalid pathlength_bins {self.pathlength_bins}")
        if self.reflectance_rho_bins is not None:
            rho_max, n = self.reflectance_rho_bins
            if rho_max <= 0 or n <= 0:
                raise ValueError(f"invalid reflectance_rho_bins {self.reflectance_rho_bins}")
        if self.penetration_bins is not None:
            z_max, n = self.penetration_bins
            if z_max <= 0 or n <= 0:
                raise ValueError(f"invalid penetration_bins {self.penetration_bins}")


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one Monte Carlo experiment.

    Attributes
    ----------
    stack:
        The layered tissue geometry.
    source:
        Photon source (delta / Gaussian / uniform / isotropic).
    detector:
        Surface detector; default accepts every escaping photon.
    gate:
        Optional time or pathlength gate applied at detection.
    boundary_mode:
        ``"probabilistic"`` (sample reflect-vs-transmit, MCML style) or
        ``"classical"`` (deterministic Fresnel weight splitting) — the
        paper's two options for refraction/internal reflection.
    roulette:
        Russian-roulette parameters (Fig. 1 "survive roulette").
    max_steps:
        Hard cap on interactions per photon; photons exceeding it are
        terminated and their remaining weight tallied as ``lost_weight``.
        The cap exists to bound worst-case task time on a worker.
    records:
        Optional grid/histogram recording.
    """

    stack: LayerStack
    source: Source
    detector: Detector = field(default_factory=AcceptAll)
    gate: Gate | None = None
    boundary_mode: BoundaryMode = "probabilistic"
    roulette: RouletteConfig = field(default_factory=RouletteConfig)
    max_steps: int = 100_000
    records: RecordConfig = field(default_factory=RecordConfig)

    def __post_init__(self) -> None:
        if self.boundary_mode not in ("probabilistic", "classical"):
            raise ValueError(
                f"boundary_mode must be 'probabilistic' or 'classical', got {self.boundary_mode!r}"
            )
        if self.max_steps <= 0:
            raise ValueError(f"max_steps must be > 0, got {self.max_steps}")

    def pathlength_gate(self) -> PathlengthGate | None:
        """The gate normalised to optical pathlength (TimeGate converted)."""
        if self.gate is None:
            return None
        if isinstance(self.gate, TimeGate):
            return self.gate.to_pathlength_gate()
        return self.gate

    def with_(self, **changes) -> "SimulationConfig":
        """Functional update (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)
