"""Monte Carlo sampling primitives for photon transport.

These are the textbook MCML-family samplers (Prahl et al. [5] of the paper;
Wang & Jacques): exponential free-path lengths, Henyey–Greenstein scattering
angles, uniform azimuth, and the direction-cosine update.  Every function is
written against NumPy broadcasting so the same code serves the scalar
reference kernel (arrays of length 1) and the vectorised production kernel
(arrays of length = batch size).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_step_length",
    "sample_hg_cosine",
    "sample_azimuth",
    "rotate_direction",
    "hg_pdf",
]

#: Direction cosines closer to +/-1 than this use the near-vertical branch of
#: the rotation formula (avoids the 1/sqrt(1-uz^2) singularity).
_VERTICAL_EPS = 1.0 - 1e-12


def sample_step_length(
    mu_t: np.ndarray | float, rng: np.random.Generator, n: int | None = None
) -> np.ndarray:
    """Draw free-path lengths ``s = -ln(xi) / mu_t`` (mm).

    Parameters
    ----------
    mu_t:
        Interaction coefficient(s) in mm⁻¹; scalar or array broadcastable to
        the sample shape.  Non-scattering, non-absorbing media (``mu_t = 0``)
        yield infinite steps, which the kernels clip at the geometry.
    rng:
        Source of randomness.
    n:
        Number of samples; defaults to the shape of ``mu_t``.

    Notes
    -----
    Uses ``1 - random()`` so the argument of the log lies in (0, 1] and the
    step length is finite with probability 1 (``random()`` can return 0.0
    but never 1.0).
    """
    mu_t = np.asarray(mu_t, dtype=np.float64)
    if n is None:
        xi = 1.0 - rng.random(mu_t.shape)
    else:
        xi = 1.0 - rng.random(n)
    with np.errstate(divide="ignore"):
        return -np.log(xi) / mu_t


def sample_hg_cosine(
    g: np.ndarray | float, rng: np.random.Generator, n: int | None = None
) -> np.ndarray:
    """Draw scattering-angle cosines from the Henyey–Greenstein phase function.

    Uses the standard analytic inversion

    ``cos(theta) = (1 + g^2 - ((1 - g^2)/(1 - g + 2 g xi))^2) / (2 g)``

    for ``g != 0`` and the isotropic limit ``cos(theta) = 2 xi - 1`` for
    ``g = 0``.  The anisotropy g is the mean cosine of the scattering angle
    (paper, Table 1 footnote), which the property tests verify empirically.
    """
    g = np.asarray(g, dtype=np.float64)
    if n is None:
        xi = rng.random(g.shape)
    else:
        xi = rng.random(n)
        g = np.broadcast_to(g, xi.shape)
    cos_theta = np.empty_like(xi)
    iso = np.abs(g) < 1e-12
    if np.any(iso):
        cos_theta[iso] = 2.0 * xi[iso] - 1.0
    aniso = ~iso
    if np.any(aniso):
        ga = g[aniso]
        frac = (1.0 - ga * ga) / (1.0 - ga + 2.0 * ga * xi[aniso])
        cos_theta[aniso] = (1.0 + ga * ga - frac * frac) / (2.0 * ga)
    # Guard against round-off pushing the cosine out of [-1, 1].
    return np.clip(cos_theta, -1.0, 1.0)


def sample_azimuth(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform azimuthal scattering angle psi in [0, 2*pi)."""
    return rng.uniform(0.0, 2.0 * np.pi, n)


def rotate_direction(
    ux: np.ndarray,
    uy: np.ndarray,
    uz: np.ndarray,
    cos_theta: np.ndarray,
    psi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rotate unit direction(s) by polar angle theta and azimuth psi.

    Implements the MCML direction update.  When the incoming direction is
    (numerically) parallel to the z-axis the general formula divides by
    ``sqrt(1 - uz^2) = 0``; those photons take the closed-form vertical
    branch instead.

    All inputs are broadcast together; the result is a tuple of new
    direction-cosine arrays, normalised to unit length to keep round-off
    from accumulating over thousands of scattering events.
    """
    ux, uy, uz, cos_theta, psi = np.broadcast_arrays(ux, uy, uz, cos_theta, psi)
    sin_theta = np.sqrt(np.maximum(0.0, 1.0 - cos_theta * cos_theta))
    cos_psi = np.cos(psi)
    sin_psi = np.sin(psi)

    vertical = np.abs(uz) >= _VERTICAL_EPS
    # General branch (guard the division; vertical entries are overwritten).
    denom = np.sqrt(np.maximum(1.0 - uz * uz, 1e-300))
    nux = sin_theta * (ux * uz * cos_psi - uy * sin_psi) / denom + ux * cos_theta
    nuy = sin_theta * (uy * uz * cos_psi + ux * sin_psi) / denom + uy * cos_theta
    nuz = -denom * sin_theta * cos_psi + uz * cos_theta

    if np.any(vertical):
        sign = np.sign(uz)
        nux = np.where(vertical, sin_theta * cos_psi, nux)
        nuy = np.where(vertical, sign * sin_theta * sin_psi, nuy)
        nuz = np.where(vertical, sign * cos_theta, nuz)

    norm = np.sqrt(nux * nux + nuy * nuy + nuz * nuz)
    return nux / norm, nuy / norm, nuz / norm


def hg_pdf(cos_theta: np.ndarray | float, g: float) -> np.ndarray:
    """Henyey–Greenstein probability density p(cos theta).

    ``p(mu) = (1 - g^2) / (2 (1 + g^2 - 2 g mu)^{3/2})``, normalised so that
    ``integral p(mu) d mu = 1`` over [-1, 1].  Used by the statistical tests
    that validate :func:`sample_hg_cosine`.
    """
    mu = np.asarray(cos_theta, dtype=np.float64)
    if not -1.0 < g < 1.0:
        raise ValueError(f"g must lie in (-1, 1) for a proper density, got {g}")
    if abs(g) < 1e-12:
        return np.full_like(mu, 0.5)
    return (1.0 - g * g) / (2.0 * np.power(1.0 + g * g - 2.0 * g * mu, 1.5))
