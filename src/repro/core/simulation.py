"""High-level simulation façade.

``Simulation`` is the single-process entry point: it owns a
:class:`~repro.core.config.SimulationConfig`, splits the photon budget into
tasks with independent RNG streams (exactly the decomposition the
distributed ``DataManager`` uses), runs them through the selected kernel and
merges the tallies.  Because the task decomposition and seeding are shared
with :mod:`repro.distributed`, a serial run and a distributed run of the
same ``(config, n_photons, seed, task_size)`` produce *identical* results.
"""

from __future__ import annotations

import inspect
from functools import lru_cache
from typing import Callable, Literal

import numpy as np

from ..observe import maybe_span
from .config import SimulationConfig
from .kernel import run_batch_scalar
from .reduce import PairwiseReducer
from .rng import task_rng
from .tally import Tally
from .vkernel import run_batch_vectorized

__all__ = ["Simulation", "run_photons", "KernelName", "split_photons"]

KernelName = Literal["vector", "scalar"]

_KERNELS: dict[str, Callable[[SimulationConfig, int, np.random.Generator], Tally]] = {
    "vector": run_batch_vectorized,
    "scalar": run_batch_scalar,
}


@lru_cache(maxsize=None)
def _accepts_kwarg(fn: Callable, name: str) -> bool:
    """Whether a registered kernel declares keyword parameter ``name``.

    Kernels are an open registry (e.g. :mod:`repro.voxel` registers
    ``"voxel"``), so optional keywords — ``telemetry``, ``sub_batch`` — are
    forwarded only to kernels that opt in; an external kernel without the
    parameter keeps working unchanged.
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins/callables without signatures
        return False
    return name in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def run_photons(
    config: SimulationConfig,
    n_photons: int,
    rng: np.random.Generator,
    kernel: KernelName = "vector",
    *,
    sub_batch: int | None = None,
    telemetry=None,
    capture_paths: bool = False,
) -> Tally:
    """Trace ``n_photons`` with the named kernel (the worker-side entry point).

    ``telemetry`` (optional :class:`~repro.observe.Telemetry`) is handed to
    the kernel, which traces batch timings; ``None`` disables telemetry at
    zero cost.  ``sub_batch`` overrides the vectorized kernel's internal
    batching (``None`` keeps the kernel's default); it is an execution
    tuning knob — results for different sub-batch sizes are statistically
    equivalent but not bit-identical, so hold it fixed when comparing runs
    bit-for-bit.  ``capture_paths`` asks the kernel to record per-detected-
    photon path records (``Tally.paths``, perturbation-MC raw material);
    the returned records are *unsealed* — the caller owns assigning the
    task key via ``tally.paths.seal(task_index)``.  Kernels that do not
    declare a parameter simply run without it (the scalar kernel has no
    sub-batching; external kernels may predate path capture).
    """
    try:
        fn = _KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}"
        ) from None
    kwargs = {}
    if sub_batch is not None and _accepts_kwarg(fn, "sub_batch"):
        kwargs["sub_batch"] = sub_batch
    if telemetry is not None and _accepts_kwarg(fn, "telemetry"):
        kwargs["telemetry"] = telemetry
    if capture_paths:
        if not _accepts_kwarg(fn, "capture_paths"):
            raise ValueError(
                f"kernel {kernel!r} does not support capture_paths"
            )
        kwargs["capture_paths"] = True
    return fn(config, n_photons, rng, **kwargs)


def split_photons(n_photons: int, task_size: int) -> list[int]:
    """Split a photon budget into task-sized chunks (last may be short).

    This is *the* canonical decomposition: both :class:`Simulation` and the
    distributed ``DataManager`` use it, so task ``i`` always means the same
    photons with the same RNG stream regardless of execution backend.
    """
    if n_photons < 0:
        raise ValueError(f"n_photons must be >= 0, got {n_photons}")
    if task_size <= 0:
        raise ValueError(f"task_size must be > 0, got {task_size}")
    full, rem = divmod(n_photons, task_size)
    counts = [task_size] * full
    if rem:
        counts.append(rem)
    return counts


class Simulation:
    """Single-process Monte Carlo simulation of one experiment.

    Examples
    --------
    >>> from repro.tissue import white_matter
    >>> from repro.sources import PencilBeam
    >>> from repro.core import SimulationConfig, Simulation
    >>> config = SimulationConfig(stack=white_matter(), source=PencilBeam())
    >>> tally = Simulation(config).run(n_photons=1000, seed=1)
    >>> 0.0 < tally.diffuse_reflectance < 1.0
    True
    """

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config

    def run(
        self,
        n_photons: int,
        seed: int = 0,
        *,
        kernel: KernelName = "vector",
        task_size: int | None = None,
        sub_batch: int | None = None,
        telemetry=None,
        capture_paths: bool = False,
    ) -> Tally:
        """Run the experiment and return the merged tally.

        Parameters
        ----------
        n_photons:
            Total photon budget.
        seed:
            Experiment seed; combined with per-task indices to derive
            independent streams.
        kernel:
            ``"vector"`` (production) or ``"scalar"`` (reference).
        task_size:
            Photons per task.  ``None`` runs everything as one task.
            Choosing the same ``task_size`` as a distributed run makes the
            results bit-identical to it.
        sub_batch:
            Vectorized-kernel sub-batch override (see :func:`run_photons`);
            an execution tuning knob, ``None`` keeps the kernel default.
        telemetry:
            Optional :class:`~repro.observe.Telemetry`; traces per-task
            spans, kernel batch timings and progress.  ``None`` (default)
            disables telemetry at zero cost.
        capture_paths:
            Record per-detected-photon path records (``Tally.paths``)
            keyed by task index — the raw material for perturbation
            Monte Carlo reweighting (:mod:`repro.perturb`).  Captured
            records do not change any other tally field; the merged
            records are bit-identical across serial and distributed
            execution for the same ``task_size``.
        """
        if task_size is None:
            task_size = max(n_photons, 1)
        counts = split_photons(n_photons, task_size)
        if not counts:
            return Tally(n_layers=len(self.config.stack), records=self.config.records)
        # Incremental pairwise reduction: each task tally is folded in as
        # soon as it is produced (no end-of-run merge pass), through the
        # same canonical tree the distributed DataManager uses — so serial
        # and distributed runs remain bit-identical.
        reducer = PairwiseReducer(len(counts), telemetry=telemetry)
        for i, count in enumerate(counts):
            with maybe_span(telemetry, "task", task=i, photons=count):
                tally = run_photons(
                    self.config, count, task_rng(seed, i), kernel,
                    sub_batch=sub_batch, telemetry=telemetry,
                    capture_paths=capture_paths,
                )
                if tally.paths is not None:
                    tally.paths.seal(i)
                reducer.add(i, tally, owned=True)
            if telemetry is not None:
                telemetry.progress_update(i + 1, len(counts))
        return reducer.result()
