"""Mergeable Monte Carlo tallies.

A :class:`Tally` is the complete result of tracing a batch of photons.  It
is designed around one algebraic property: **tallies form a commutative
monoid under** :meth:`Tally.merge`.  That property is what makes the
distributed decomposition exact — the ``DataManager`` merges worker tallies
in any order and obtains the same result as a serial run with the same
per-task RNG streams (tested in ``tests/distributed/test_determinism.py``).

All extensive quantities are raw weight sums; normalised physical quantities
(reflectance, absorbed fraction, DPF, …) are exposed as properties that
divide by the launched photon count at read time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..detect.records import GridSpec, Histogram, PathRecords, RunningStat
from .config import RecordConfig

__all__ = ["Tally"]


@dataclass
class Tally:
    """Accumulated results of a photon-batch simulation.

    Extensive fields (all merge by addition):

    - ``n_launched`` — photons launched.
    - ``specular_weight`` — weight lost to specular reflection at launch.
    - ``diffuse_reflectance_weight`` — weight escaping the top surface
      (includes detected weight).
    - ``transmittance_weight`` — weight escaping the bottom surface.
    - ``absorbed_by_layer`` — weight absorbed in each tissue layer.
    - ``lost_weight`` — weight of photons terminated by the ``max_steps``
      cap (diagnostic; should be ~0 in healthy runs).
    - ``roulette_net_weight`` — net weight created (+) or destroyed (−) by
      Russian roulette; zero in expectation, useful for diagnostics.
    - ``detected_count`` / ``detected_weight`` — photons passing the
      detector (and gate, when present).
    """

    n_layers: int
    records: RecordConfig = field(default_factory=RecordConfig)

    n_launched: int = 0
    specular_weight: float = 0.0
    diffuse_reflectance_weight: float = 0.0
    transmittance_weight: float = 0.0
    lost_weight: float = 0.0
    roulette_net_weight: float = 0.0
    detected_count: int = 0
    detected_weight: float = 0.0

    absorbed_by_layer: np.ndarray = field(default=None)  # type: ignore[assignment]

    #: Statistics over *detected* photons.
    pathlength: RunningStat = field(default_factory=RunningStat)
    penetration_depth: RunningStat = field(default_factory=RunningStat)

    #: Optional recordings (allocated from ``records`` when enabled).
    absorption_grid: np.ndarray | None = None
    path_grid: np.ndarray | None = None
    pathlength_hist: Histogram | None = None
    reflectance_rho_hist: Histogram | None = None
    penetration_hist: Histogram | None = None

    #: Per-detected-photon path records (perturbation-MC raw material).
    #: Execution-scoped, not part of the experiment shape: excluded from
    #: ``__eq__`` (two runs are "the same result" whether or not paths were
    #: captured — capture adds no RNG draws), and all-or-nothing under
    #: merge: combining a paths-bearing tally with a paths-less one yields
    #: ``paths=None``, because a partial record set would silently
    #: misrepresent the ensemble it claims to describe.
    paths: PathRecords | None = None

    def __post_init__(self) -> None:
        if self.n_layers <= 0:
            raise ValueError(f"n_layers must be > 0, got {self.n_layers}")
        if self.absorbed_by_layer is None:
            self.absorbed_by_layer = np.zeros(self.n_layers, dtype=np.float64)
        else:
            self.absorbed_by_layer = np.asarray(self.absorbed_by_layer, dtype=np.float64)
            if self.absorbed_by_layer.shape != (self.n_layers,):
                raise ValueError("absorbed_by_layer shape does not match n_layers")
        r = self.records
        if r.absorption_grid is not None and self.absorption_grid is None:
            self.absorption_grid = r.absorption_grid.zeros()
        if r.path_grid is not None and self.path_grid is None:
            self.path_grid = r.path_grid.zeros()
        if r.pathlength_bins is not None and self.pathlength_hist is None:
            lo, hi, n = r.pathlength_bins
            self.pathlength_hist = Histogram.linear(lo, hi, n)
        if r.reflectance_rho_bins is not None and self.reflectance_rho_hist is None:
            rho_max, n = r.reflectance_rho_bins
            self.reflectance_rho_hist = Histogram.linear(0.0, rho_max, n)
        if r.penetration_bins is not None and self.penetration_hist is None:
            z_max, n = r.penetration_bins
            self.penetration_hist = Histogram.linear(0.0, z_max, n)

    # -- equality --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Exact (bitwise) equality — the distributed-reproducibility check.

        Two tallies are equal iff every scalar, array, histogram and running
        statistic matches bit for bit.  This is deliberately strict: it is
        the contract that a resumed or re-scheduled distributed run must
        reproduce the uninterrupted serial result exactly, not approximately.
        """
        if not isinstance(other, Tally):
            return NotImplemented

        def _array_eq(a: np.ndarray | None, b: np.ndarray | None) -> bool:
            if a is None or b is None:
                return a is None and b is None
            return np.array_equal(a, b)

        def _hist_eq(a: Histogram | None, b: Histogram | None) -> bool:
            if a is None or b is None:
                return a is None and b is None
            return np.array_equal(a.edges, b.edges) and np.array_equal(a.counts, b.counts)

        return (
            self.n_layers == other.n_layers
            and self.records == other.records
            and self.n_launched == other.n_launched
            and self.specular_weight == other.specular_weight
            and self.diffuse_reflectance_weight == other.diffuse_reflectance_weight
            and self.transmittance_weight == other.transmittance_weight
            and self.lost_weight == other.lost_weight
            and self.roulette_net_weight == other.roulette_net_weight
            and self.detected_count == other.detected_count
            and self.detected_weight == other.detected_weight
            and _array_eq(self.absorbed_by_layer, other.absorbed_by_layer)
            and self.pathlength == other.pathlength
            and self.penetration_depth == other.penetration_depth
            and _array_eq(self.absorption_grid, other.absorption_grid)
            and _array_eq(self.path_grid, other.path_grid)
            and _hist_eq(self.pathlength_hist, other.pathlength_hist)
            and _hist_eq(self.reflectance_rho_hist, other.reflectance_rho_hist)
            and _hist_eq(self.penetration_hist, other.penetration_hist)
        )

    # -- monoid ---------------------------------------------------------------

    def _check_mergeable(self, other: "Tally") -> None:
        if self.n_layers != other.n_layers:
            raise ValueError(
                f"cannot merge tallies with {self.n_layers} vs {other.n_layers} layers"
            )
        if self.records != other.records:
            raise ValueError("cannot merge tallies with different RecordConfigs")

    def merge(self, other: "Tally") -> "Tally":
        """Combine two tallies from independent photon batches.

        Both tallies must describe the same experiment shape (same layer
        count and recording configuration).
        """
        self._check_mergeable(other)

        merged = Tally(
            n_layers=self.n_layers,
            records=self.records,
            n_launched=self.n_launched + other.n_launched,
            specular_weight=self.specular_weight + other.specular_weight,
            diffuse_reflectance_weight=(
                self.diffuse_reflectance_weight + other.diffuse_reflectance_weight
            ),
            transmittance_weight=self.transmittance_weight + other.transmittance_weight,
            lost_weight=self.lost_weight + other.lost_weight,
            roulette_net_weight=self.roulette_net_weight + other.roulette_net_weight,
            detected_count=self.detected_count + other.detected_count,
            detected_weight=self.detected_weight + other.detected_weight,
            absorbed_by_layer=self.absorbed_by_layer + other.absorbed_by_layer,
            pathlength=self.pathlength.merge(other.pathlength),
            penetration_depth=self.penetration_depth.merge(other.penetration_depth),
        )
        if self.absorption_grid is not None:
            merged.absorption_grid = self.absorption_grid + other.absorption_grid
        if self.path_grid is not None:
            merged.path_grid = self.path_grid + other.path_grid
        if self.pathlength_hist is not None:
            merged.pathlength_hist = self.pathlength_hist.merge(other.pathlength_hist)
        if self.reflectance_rho_hist is not None:
            merged.reflectance_rho_hist = self.reflectance_rho_hist.merge(
                other.reflectance_rho_hist
            )
        if self.penetration_hist is not None:
            merged.penetration_hist = self.penetration_hist.merge(other.penetration_hist)
        if self.paths is not None and other.paths is not None:
            merged.paths = self.paths.merge(other.paths)
        return merged

    def imerge(self, other: "Tally") -> "Tally":
        """In-place :meth:`merge`: accumulate ``other`` into ``self``.

        Returns ``self``.  Produces bit-identical results to ``merge``
        (every field combines by IEEE-754 addition or min/max, both of
        which are commutative bitwise), while reusing ``self``'s arrays so
        incremental reduction does not allocate per step.  ``other`` is not
        modified.
        """
        self._check_mergeable(other)

        self.n_launched += other.n_launched
        self.specular_weight += other.specular_weight
        self.diffuse_reflectance_weight += other.diffuse_reflectance_weight
        self.transmittance_weight += other.transmittance_weight
        self.lost_weight += other.lost_weight
        self.roulette_net_weight += other.roulette_net_weight
        self.detected_count += other.detected_count
        self.detected_weight += other.detected_weight
        self.absorbed_by_layer += other.absorbed_by_layer
        self.pathlength = self.pathlength.merge(other.pathlength)
        self.penetration_depth = self.penetration_depth.merge(other.penetration_depth)
        if self.absorption_grid is not None:
            self.absorption_grid += other.absorption_grid
        if self.path_grid is not None:
            self.path_grid += other.path_grid
        if self.pathlength_hist is not None:
            self.pathlength_hist = self.pathlength_hist.merge(other.pathlength_hist)
        if self.reflectance_rho_hist is not None:
            self.reflectance_rho_hist = self.reflectance_rho_hist.merge(
                other.reflectance_rho_hist
            )
        if self.penetration_hist is not None:
            self.penetration_hist = self.penetration_hist.merge(other.penetration_hist)
        if self.paths is not None:
            # All-or-nothing: a one-sided record set must not survive the
            # merge claiming to describe the combined ensemble.
            self.paths = (
                self.paths.imerge(other.paths) if other.paths is not None else None
            )
        return self

    def copy(self) -> "Tally":
        """Bitwise-identical deep copy.

        Snapshotting via ``merge`` with an empty tally is *not* safe here:
        IEEE-754 addition with 0.0 is not the identity on the bit level
        (``-0.0 + 0.0 == +0.0``), so a merged "copy" could differ from the
        original by a sign bit.  This copy duplicates every field verbatim.
        """
        out = Tally(
            n_layers=self.n_layers,
            records=self.records,
            n_launched=self.n_launched,
            specular_weight=self.specular_weight,
            diffuse_reflectance_weight=self.diffuse_reflectance_weight,
            transmittance_weight=self.transmittance_weight,
            lost_weight=self.lost_weight,
            roulette_net_weight=self.roulette_net_weight,
            detected_count=self.detected_count,
            detected_weight=self.detected_weight,
            absorbed_by_layer=self.absorbed_by_layer.copy(),
            pathlength=RunningStat(
                count=self.pathlength.count,
                weight=self.pathlength.weight,
                weighted_sum=self.pathlength.weighted_sum,
                weighted_sumsq=self.pathlength.weighted_sumsq,
                minimum=self.pathlength.minimum,
                maximum=self.pathlength.maximum,
            ),
            penetration_depth=RunningStat(
                count=self.penetration_depth.count,
                weight=self.penetration_depth.weight,
                weighted_sum=self.penetration_depth.weighted_sum,
                weighted_sumsq=self.penetration_depth.weighted_sumsq,
                minimum=self.penetration_depth.minimum,
                maximum=self.penetration_depth.maximum,
            ),
        )
        if self.absorption_grid is not None:
            out.absorption_grid = self.absorption_grid.copy()
        if self.path_grid is not None:
            out.path_grid = self.path_grid.copy()
        if self.pathlength_hist is not None:
            out.pathlength_hist = Histogram(
                edges=self.pathlength_hist.edges.copy(),
                counts=self.pathlength_hist.counts.copy(),
            )
        if self.reflectance_rho_hist is not None:
            out.reflectance_rho_hist = Histogram(
                edges=self.reflectance_rho_hist.edges.copy(),
                counts=self.reflectance_rho_hist.counts.copy(),
            )
        if self.penetration_hist is not None:
            out.penetration_hist = Histogram(
                edges=self.penetration_hist.edges.copy(),
                counts=self.penetration_hist.counts.copy(),
            )
        if self.paths is not None:
            out.paths = self.paths.copy()
        return out

    def record_penetration(self, max_depths: np.ndarray) -> None:
        """Record lifetime maximum depths of terminated photons (one count each).

        Depths beyond the histogram range are clipped into the last bin so
        every photon is counted exactly once ("reached at least z_max").
        """
        if self.penetration_hist is None or max_depths.size == 0:
            return
        hi = self.penetration_hist.edges[-1]
        lo = self.penetration_hist.edges[0]
        width = self.penetration_hist.edges[1] - self.penetration_hist.edges[0]
        clipped = np.clip(max_depths, lo, hi - 0.5 * width)
        self.penetration_hist.add(clipped)

    @classmethod
    def merge_all(cls, tallies: "list[Tally]") -> "Tally":
        """Merge a non-empty list of tallies."""
        if not tallies:
            raise ValueError("merge_all needs at least one tally")
        out = tallies[0]
        for t in tallies[1:]:
            out = out.merge(t)
        return out

    # -- normalised physical quantities ----------------------------------------

    def _per_photon(self, weight: float) -> float:
        return weight / self.n_launched if self.n_launched > 0 else float("nan")

    @property
    def specular_reflectance(self) -> float:
        """Specular reflectance R_sp (fraction of launched energy)."""
        return self._per_photon(self.specular_weight)

    @property
    def diffuse_reflectance(self) -> float:
        """Diffuse reflectance R_d (fraction escaping the top surface)."""
        return self._per_photon(self.diffuse_reflectance_weight)

    @property
    def transmittance(self) -> float:
        """Diffuse transmittance T_d (fraction escaping the bottom)."""
        return self._per_photon(self.transmittance_weight)

    @property
    def absorbed_fraction(self) -> np.ndarray:
        """Fraction of launched energy absorbed per layer."""
        if self.n_launched == 0:
            return np.full(self.n_layers, np.nan)
        return self.absorbed_by_layer / self.n_launched

    @property
    def total_absorbed_fraction(self) -> float:
        return float(self.absorbed_fraction.sum())

    @property
    def energy_balance(self) -> float:
        """R_sp + R_d + T_d + A + lost − roulette_net; ≈ 1 in expectation."""
        if self.n_launched == 0:
            return float("nan")
        return (
            self.specular_reflectance
            + self.diffuse_reflectance
            + self.transmittance
            + self.total_absorbed_fraction
            + self._per_photon(self.lost_weight)
            - self._per_photon(self.roulette_net_weight)
        )

    @property
    def detection_efficiency(self) -> float:
        """Detected photons per launched photon."""
        return self.detected_count / self.n_launched if self.n_launched else float("nan")

    def differential_pathlength_factor(self, source_detector_spacing: float) -> float:
        """DPF = mean detected *geometric* pathlength / optode spacing.

        The pathlength statistic stores optical pathlengths; dividing by the
        (mean) refractive index is the caller's concern when layers differ.
        For the single-index models used here the optical and geometric DPF
        differ by the constant factor n, and we report the optical one —
        the quantity a time-of-flight instrument measures.
        """
        if source_detector_spacing <= 0:
            raise ValueError(
                f"source_detector_spacing must be > 0, got {source_detector_spacing}"
            )
        return self.pathlength.mean / source_detector_spacing

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline scalars (for reports and tests)."""
        return {
            "n_launched": float(self.n_launched),
            "specular_reflectance": self.specular_reflectance,
            "diffuse_reflectance": self.diffuse_reflectance,
            "transmittance": self.transmittance,
            "absorbed_fraction": self.total_absorbed_fraction,
            "lost_fraction": self._per_photon(self.lost_weight),
            "detected_count": float(self.detected_count),
            "detected_weight": self.detected_weight,
            "mean_pathlength": self.pathlength.mean,
            "mean_penetration_depth": self.penetration_depth.mean,
            "energy_balance": self.energy_balance,
        }
