"""Core Monte Carlo photon-transport engine (the paper's Fig. 1 algorithm)."""

from .config import BoundaryMode, RecordConfig, SimulationConfig
from .fresnel import (
    cos_transmitted,
    critical_cosine,
    fresnel_reflectance,
    specular_reflectance,
)
from .kernel import run_batch_scalar, trace_photon
from .reduce import (
    PairwiseReducer,
    SpanFolder,
    TallyFrontier,
    aligned_spans,
    prefix_spans,
    reduce_all,
    span_level,
)
from .rng import StreamFactory, spawn_rngs, task_rng
from .roulette import RouletteConfig, roulette
from .sampling import (
    hg_pdf,
    rotate_direction,
    sample_azimuth,
    sample_hg_cosine,
    sample_step_length,
)
from .simulation import KernelName, Simulation, run_photons, split_photons
from .tally import Tally
from .vkernel import run_batch_vectorized

__all__ = [
    "BoundaryMode",
    "KernelName",
    "PairwiseReducer",
    "RecordConfig",
    "RouletteConfig",
    "Simulation",
    "SimulationConfig",
    "SpanFolder",
    "StreamFactory",
    "Tally",
    "TallyFrontier",
    "aligned_spans",
    "cos_transmitted",
    "critical_cosine",
    "fresnel_reflectance",
    "hg_pdf",
    "prefix_spans",
    "reduce_all",
    "rotate_direction",
    "roulette",
    "run_batch_scalar",
    "run_batch_vectorized",
    "run_photons",
    "sample_azimuth",
    "sample_hg_cosine",
    "sample_step_length",
    "span_level",
    "spawn_rngs",
    "specular_reflectance",
    "split_photons",
    "task_rng",
    "trace_photon",
]
