"""Scalar reference kernel — a direct transcription of the paper's Fig. 1.

::

    begin
        initialise photon
        while(photon survived)
            move photon
            if(changed medium)
                if(photon angle > critical angle) internally reflect
                else refract
            if(photon passed through detector) save path and end
            update absorbtion and photon weight
            if(weight too small) survive roulette
    end

This module traces one photon at a time with plain Python floats.  It is the
*reference* implementation: slow, but easy to audit against the pseudocode
and against the MCML hop-drop-spin algorithm (Prahl et al., the paper's
ref [5]).  The vectorised production kernel (:mod:`repro.core.vkernel`) is
validated against it statistically.

Physics notes
-------------
* Steps are carried across boundaries in *dimensionless* form
  (s = −ln ξ, geometric length s/µt), the standard multi-layer treatment:
  when a hop is truncated at an interface the unused fraction of the step
  is retained and re-scaled by the next layer's µt.
* ``boundary_mode="probabilistic"`` samples reflect-vs-transmit from the
  Fresnel reflectance.  ``boundary_mode="classical"`` splits the weight
  deterministically at *external* (tissue–ambient) boundaries: the fraction
  (1 − R) escapes and is scored, the fraction R continues internally
  reflected.  Interior boundaries with mismatched indices fall back to the
  probabilistic rule (the Table 1 models are index-matched internally, so
  this only matters for exotic stacks; see DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from ..detect.records import GridSpec, PathRecords
from .config import SimulationConfig
from .fresnel import fresnel_reflectance
from .sampling import rotate_direction, sample_hg_cosine
from .tally import Tally

__all__ = ["run_batch_scalar", "trace_photon"]

#: Weight below which a "classical" reflected remnant is not worth tracking
#: and is terminated by roulette anyway; kept for documentation purposes.
_TINY = 1e-300


class _PathBuffer:
    """Per-photon scratch recording of interaction sites.

    Only committed to the tally's path grid when the photon is detected
    ("save path" in Fig. 1); discarded otherwise.
    """

    __slots__ = ("xs", "ys", "zs", "ws")

    def __init__(self) -> None:
        self.xs: list[float] = []
        self.ys: list[float] = []
        self.zs: list[float] = []
        self.ws: list[float] = []

    def visit(self, x: float, y: float, z: float, w: float) -> None:
        self.xs.append(x)
        self.ys.append(y)
        self.zs.append(z)
        self.ws.append(w)

    def commit(self, spec: GridSpec, grid: np.ndarray, scale: float = 1.0) -> None:
        if not self.xs:
            return
        spec.deposit(
            grid,
            np.asarray(self.xs),
            np.asarray(self.ys),
            np.asarray(self.zs),
            np.asarray(self.ws) * scale,
        )


def run_batch_scalar(
    config: SimulationConfig,
    n_photons: int,
    rng: np.random.Generator,
    *,
    telemetry=None,
    capture_paths: bool = False,
) -> Tally:
    """Trace ``n_photons`` photons one at a time and return the tally.

    ``telemetry`` (optional :class:`~repro.observe.Telemetry`) traces the
    batch as one ``kernel.batch`` span; photons accumulate on the
    ``kernel.photons`` counter.  The per-photon loop is never instrumented.

    ``capture_paths`` records one :class:`~repro.detect.PathRecords` row per
    detection event (per-layer pathlength, exit weight, optical pathlength,
    maximum depth) on ``tally.paths``.  Capture consumes no RNG draws, so
    every other tally field is bit-identical with and without it; the
    caller seals the records under its task index.
    """
    if n_photons < 0:
        raise ValueError(f"n_photons must be >= 0, got {n_photons}")
    tally = Tally(n_layers=len(config.stack), records=config.records)
    if capture_paths:
        tally.paths = PathRecords(len(config.stack))
    if n_photons == 0:
        return tally
    positions, directions = config.source.sample(n_photons, rng)
    if telemetry is None:
        for i in range(n_photons):
            trace_photon(config, tally, rng, positions[i], directions[i])
    else:
        with telemetry.span("kernel.batch", kernel="scalar", photons=n_photons):
            for i in range(n_photons):
                trace_photon(config, tally, rng, positions[i], directions[i])
        telemetry.count("kernel.photons", n_photons, kernel="scalar")
    return tally


def trace_photon(
    config: SimulationConfig,
    tally: Tally,
    rng: np.random.Generator,
    position: np.ndarray,
    direction: np.ndarray,
) -> None:
    """Trace a single photon and accumulate its contributions into ``tally``.

    ``position`` and ``direction`` are length-3 arrays (the direction must be
    a unit vector).  Follows the Fig. 1 control flow; see the module
    docstring for the physics conventions.
    """
    stack = config.stack
    gate = config.pathlength_gate()
    record_path = tally.path_grid is not None
    path = _PathBuffer() if record_path else None
    # Per-layer geometric pathlength, maintained only when the caller wants
    # perturbation-MC records; the transport itself never reads it.
    layer_paths = [0.0] * len(stack) if tally.paths is not None else None

    x, y, z = float(position[0]), float(position[1]), float(position[2])
    ux, uy, uz = float(direction[0]), float(direction[1]), float(direction[2])

    # --- initialise photon ---------------------------------------------------
    w = 1.0
    if z == 0.0 and uz > 0.0:
        # Surface launch: angle-dependent Fresnel loss (specular) and Snell
        # refraction of the entry direction.  At normal incidence this is
        # the classic ((n1-n2)/(n1+n2))^2 with an unchanged direction.
        n_outside = stack.n_above
        n_inside = stack[0].properties.n
        r_sp = float(fresnel_reflectance(uz, n_outside, n_inside))
        tally.specular_weight += r_sp
        w -= r_sp
        if n_outside != n_inside:
            ratio = n_outside / n_inside
            sin_t2 = ratio * ratio * (1.0 - uz * uz)
            cos_t = math.sqrt(max(0.0, 1.0 - sin_t2))
            ux *= ratio
            uy *= ratio
            uz = cos_t
            norm = math.sqrt(ux * ux + uy * uy + uz * uz)
            ux /= norm
            uy /= norm
            uz /= norm
        layer = 0
    else:
        layer = stack.layer_index_at(z)
    tally.n_launched += 1
    if record_path:
        path.visit(x, y, z, w)

    optical_path = 0.0
    max_depth = z
    s_dimless = 0.0  # unused dimensionless step carried across boundaries
    steps = 0

    while True:
        props = stack[layer].properties
        mu_t = props.mu_t
        n_here = props.n

        if s_dimless <= 0.0:
            s_dimless = -math.log(1.0 - rng.random())

        # Geometric distance to the interaction point in this layer.
        d_step = s_dimless / mu_t if mu_t > 0.0 else math.inf

        # Distance to the layer boundary along the direction of travel.
        if uz > 0.0:
            d_boundary = (stack.layer_bottom(layer) - z) / uz
        elif uz < 0.0:
            d_boundary = (stack.layer_top(layer) - z) / uz  # both negative -> positive
        else:
            d_boundary = math.inf

        if math.isinf(d_boundary) and math.isinf(d_step):
            # Transparent semi-infinite layer: the photon would travel
            # forever without interacting.  Pathological configuration;
            # book the weight as lost and stop.
            tally.lost_weight += w
            tally.record_penetration(np.asarray([max_depth]))
            return

        if d_boundary <= d_step:
            # --- move photon to the boundary; handle medium change -----------
            x += ux * d_boundary
            y += uy * d_boundary
            z += uz * d_boundary
            optical_path += n_here * d_boundary
            if layer_paths is not None:
                layer_paths[layer] += d_boundary
            if mu_t > 0.0:
                s_dimless -= d_boundary * mu_t

            going_up = uz < 0.0
            exiting = (going_up and layer == 0) or (
                not going_up and layer == len(stack) - 1 and not stack.is_semi_infinite
            )
            if going_up:
                n_next = stack.n_above if exiting else stack[layer - 1].properties.n
            else:
                n_next = stack.n_below if exiting else stack[layer + 1].properties.n

            cos_i = abs(uz)
            r_fresnel = float(fresnel_reflectance(cos_i, n_here, n_next))

            if config.boundary_mode == "classical" and exiting:
                # Deterministic Fresnel split: (1 - R) escapes and is scored
                # (including detection), the remnant R*w continues internally
                # reflected so energy is conserved exactly.
                escaped = (1.0 - r_fresnel) * w
                if escaped > 0.0:
                    _score_escape(
                        config, tally, gate, path,
                        x, y, uz, escaped, optical_path, max_depth,
                        top=going_up, terminal=False, layer_paths=layer_paths,
                    )
                w *= r_fresnel
                if w <= _TINY:
                    tally.record_penetration(np.asarray([max_depth]))
                    return
                uz = -uz  # remaining weight is internally reflected
            else:
                if rng.random() < r_fresnel:
                    # internally reflect
                    uz = -uz
                else:
                    if exiting:
                        _score_escape(
                            config, tally, gate, path,
                            x, y, uz, w, optical_path, max_depth,
                            top=going_up, terminal=True, layer_paths=layer_paths,
                        )
                        return  # photon left the tissue (detected or not)
                    # refract into the adjacent layer (Snell)
                    ratio = n_here / n_next
                    sin_t2 = ratio * ratio * (1.0 - cos_i * cos_i)
                    cos_t = math.sqrt(max(0.0, 1.0 - sin_t2))
                    ux *= ratio
                    uy *= ratio
                    uz = math.copysign(cos_t, uz)
                    norm = math.sqrt(ux * ux + uy * uy + uz * uz)
                    ux /= norm
                    uy /= norm
                    uz /= norm
                    layer += -1 if going_up else 1
            continue  # no interaction happened; spend the rest of the step

        # --- move photon to the interaction site ------------------------------
        x += ux * d_step
        y += uy * d_step
        z += uz * d_step
        optical_path += n_here * d_step
        if layer_paths is not None:
            layer_paths[layer] += d_step
        s_dimless = 0.0
        max_depth = max(max_depth, z)

        # --- update absorption and photon weight ------------------------------
        if mu_t > 0.0:
            absorbed = w * props.mu_a / mu_t
            if absorbed > 0.0:
                tally.absorbed_by_layer[layer] += absorbed
                if tally.absorption_grid is not None:
                    config.records.absorption_grid.deposit(
                        tally.absorption_grid,
                        np.asarray([x]), np.asarray([y]), np.asarray([z]),
                        np.asarray([absorbed]),
                    )
            w -= absorbed

        if record_path:
            path.visit(x, y, z, w)

        # --- spin: sample the new direction ------------------------------------
        cos_theta = float(sample_hg_cosine(props.g, rng, 1)[0])
        psi = rng.uniform(0.0, 2.0 * math.pi)
        nux, nuy, nuz = rotate_direction(
            np.asarray([ux]), np.asarray([uy]), np.asarray([uz]),
            np.asarray([cos_theta]), np.asarray([psi]),
        )
        ux, uy, uz = float(nux[0]), float(nuy[0]), float(nuz[0])

        # --- if weight too small: survive roulette -----------------------------
        if w < config.roulette.threshold:
            if rng.random() < 1.0 / config.roulette.boost:
                boosted = w * config.roulette.boost
                tally.roulette_net_weight += boosted - w
                w = boosted
            else:
                tally.roulette_net_weight -= w
                tally.record_penetration(np.asarray([max_depth]))
                return  # photon absorbed by the roulette

        steps += 1
        if steps >= config.max_steps:
            tally.lost_weight += w
            tally.record_penetration(np.asarray([max_depth]))
            return


def _score_escape(
    config: SimulationConfig,
    tally: Tally,
    gate,
    path: _PathBuffer | None,
    x: float,
    y: float,
    uz: float,
    weight: float,
    optical_path: float,
    max_depth: float,
    *,
    top: bool,
    terminal: bool,
    layer_paths: list[float] | None = None,
) -> bool:
    """Score an escaping weight; returns False when the photon was detected.

    Top-surface escapes are diffuse reflectance and are offered to the
    detector (+ gate).  Bottom escapes are transmittance.  The return value
    signals "passed through detector" so callers can end the photon.
    ``terminal`` marks escapes that end the photon; classical-mode partial
    escapes keep it alive and must not enter the penetration histogram.
    """
    if terminal:
        tally.record_penetration(np.asarray([max_depth]))
    if not top:
        tally.transmittance_weight += weight
        return True

    tally.diffuse_reflectance_weight += weight
    if tally.reflectance_rho_hist is not None:
        tally.reflectance_rho_hist.add(
            np.asarray([math.hypot(x, y)]), np.asarray([weight])
        )

    accepted = bool(config.detector.accepts(np.asarray([x]), np.asarray([y]), np.asarray([uz]))[0])
    if accepted and gate is not None:
        accepted = bool(gate.accepts(np.asarray([optical_path]))[0])
    if not accepted:
        return True

    # --- photon passed through detector: save path and end --------------------
    tally.detected_count += 1
    tally.detected_weight += weight
    tally.pathlength.add(np.asarray([optical_path]), np.asarray([weight]))
    tally.penetration_depth.add(np.asarray([max_depth]), np.asarray([weight]))
    if tally.pathlength_hist is not None:
        tally.pathlength_hist.add(np.asarray([optical_path]), np.asarray([weight]))
    if tally.paths is not None and layer_paths is not None:
        # Snapshot: a classical-mode photon continues after a partial
        # escape and may be detected again with longer paths.
        tally.paths.append(
            np.asarray(layer_paths), weight, optical_path, max_depth, 0
        )
    if path is not None and tally.path_grid is not None:
        path.commit(config.records.path_grid, tally.path_grid)
    return False
