"""Russian-roulette photon termination.

The last branch of the paper's Fig. 1 pseudocode: once a photon's weight has
been whittled down by absorption below a threshold, tracking it further is
poor value — but simply discarding it would bias the tallies (destroy
weight).  Russian roulette terminates it with probability ``1 - 1/m`` and,
when it survives, multiplies its weight by ``m``, keeping the expectation of
every tally exactly unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RouletteConfig", "roulette"]

#: MCML-conventional defaults.
DEFAULT_THRESHOLD = 1e-4
DEFAULT_SURVIVAL_BOOST = 10.0


@dataclass(frozen=True)
class RouletteConfig:
    """Parameters of the survival roulette.

    Attributes
    ----------
    threshold:
        Weight below which a photon enters the roulette.
    boost:
        Survival multiplier m: survive with probability 1/m, weight *= m.
    """

    threshold: float = DEFAULT_THRESHOLD
    boost: float = DEFAULT_SURVIVAL_BOOST

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.boost <= 1:
            raise ValueError(f"boost must be > 1, got {self.boost}")


def roulette(
    weights: np.ndarray,
    alive: np.ndarray,
    rng: np.random.Generator,
    config: RouletteConfig = RouletteConfig(),
) -> None:
    """Apply Russian roulette in place to a batch of photons.

    Photons that are alive and below ``config.threshold`` survive with
    probability ``1/boost`` (their weight multiplied by ``boost``) and are
    killed otherwise (weight zeroed, ``alive`` cleared).

    Parameters
    ----------
    weights, alive:
        Weight and liveness arrays, modified in place.
    rng:
        Randomness source; exactly one uniform variate is consumed per
        photon entering the roulette.
    """
    candidates = alive & (weights < config.threshold) & (weights > 0.0)
    n = int(candidates.sum())
    if n == 0:
        return
    survive = rng.random(n) < (1.0 / config.boost)
    idx = np.flatnonzero(candidates)
    winners = idx[survive]
    losers = idx[~survive]
    weights[winners] *= config.boost
    weights[losers] = 0.0
    alive[losers] = False
