"""Incremental, deterministic, bounded-memory tally reduction.

The distributed ``DataManager`` of the source paper merges worker results
as they arrive; buffering every task tally and folding once at the end
(the pre-PR-3 behaviour) costs O(n_tasks) memory and a serial end-of-run
stall.  :class:`PairwiseReducer` replaces that with a **fixed binary
reduction tree keyed by task index**: the shape of the tree depends only
on ``n_tasks``, never on completion order, so the reduced tally is
bit-identical no matter how the scheduler interleaves workers — the same
reproducibility contract the serial/distributed cross-checks rely on.

How it works
------------
Tree node ``(level, slot)`` covers task indices
``[slot * 2**level, (slot + 1) * 2**level)``.  A completed task enters as
leaf ``(0, task_index)`` and climbs:

- if its sibling ``(level, slot ^ 1)`` is already pending, the two merge
  and the parent continues climbing;
- if the sibling's range starts at or beyond ``n_tasks`` it can never
  exist, so the node is promoted to its parent unchanged (this keeps the
  tree canonical for non-power-of-two task counts — exactly one root);
- otherwise the node parks in the pending table and waits.

Each pairwise combination is a single IEEE-754 add per field, which is
commutative bitwise, so *which* operand accumulates into which does not
affect the bits; only the tree shape matters, and that is fixed.

Memory bound
------------
With in-order completion the pending table is a binary counter:
≤ ⌈log₂ n_tasks⌉ entries.  Out-of-order completion adds at most ~log₂ n
pending nodes per "hole" (an outstanding task splitting two completed
runs), i.e. peak pending ≈ ⌈log₂ n_tasks⌉ + tasks in flight — versus
n_tasks for the old buffer-then-fold approach.  ``pending_peak`` reports
the observed maximum.
"""

from __future__ import annotations

import time
from typing import Iterable

from .tally import Tally

__all__ = ["PairwiseReducer", "reduce_all"]


class PairwiseReducer:
    """Fold task tallies into a canonical binary tree, in any arrival order.

    Parameters
    ----------
    n_tasks:
        Total number of tasks that will be fed in (``add`` rejects indices
        outside ``[0, n_tasks)`` and duplicates).  Must be ``> 0``.
    telemetry:
        Optional :class:`~repro.observe.Telemetry` (duck-typed).  On
        :meth:`result` the reducer emits a ``reduce.pending_peak`` gauge
        and a ``reduce.seconds`` counter.

    The reducer never mutates a tally added with ``owned=False`` — pass
    ``owned=True`` when the caller relinquishes the tally (e.g. it will
    not be retained in a ``RunReport``) so the reducer may accumulate into
    it in place instead of allocating a copy at the first merge.
    """

    def __init__(self, n_tasks: int, *, telemetry=None) -> None:
        if n_tasks <= 0:
            raise ValueError(f"n_tasks must be > 0, got {n_tasks}")
        self.n_tasks = n_tasks
        self._telemetry = telemetry
        # (level, slot) -> (tally, owned); bounded by ~log2(n) + holes.
        self._nodes: dict[tuple[int, int], tuple[Tally, bool]] = {}
        # One bit per task index: duplicate detection in n/8 bytes.
        self._seen = bytearray((n_tasks + 7) // 8)
        self._n_added = 0
        self._pending_peak = 0
        self._seconds = 0.0

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of partially reduced tallies currently held."""
        return len(self._nodes)

    @property
    def pending_peak(self) -> int:
        """Maximum number of tallies ever held simultaneously."""
        return self._pending_peak

    @property
    def n_added(self) -> int:
        return self._n_added

    @property
    def seconds(self) -> float:
        """Cumulative wall time spent combining tallies."""
        return self._seconds

    # -- reduction -------------------------------------------------------------

    def add(self, task_index: int, tally: Tally, *, owned: bool = False) -> None:
        """Feed one completed task's tally into the tree.

        Raises ``ValueError`` on an out-of-range or duplicate index —
        speculative duplicates must be filtered *before* reduction, since
        adding a task twice would double-count its photons.
        """
        if not 0 <= task_index < self.n_tasks:
            raise ValueError(
                f"task_index {task_index} out of range [0, {self.n_tasks})"
            )
        byte, bit = divmod(task_index, 8)
        if self._seen[byte] & (1 << bit):
            raise ValueError(f"task {task_index} already reduced (duplicate result)")
        self._seen[byte] |= 1 << bit

        start = time.perf_counter()
        level, slot = 0, task_index
        node, node_owned = tally, owned
        while (1 << level) < self.n_tasks:
            sibling = self._nodes.pop((level, slot ^ 1), None)
            if sibling is not None:
                other, other_owned = sibling
                # A single pairwise merge is order-independent bitwise, so
                # accumulate into whichever operand we are allowed to mutate.
                if node_owned:
                    node = node.imerge(other)
                elif other_owned:
                    node, node_owned = other.imerge(node), True
                else:
                    node, node_owned = node.merge(other), True
            elif ((slot | 1) << level) >= self.n_tasks:
                pass  # sibling range is empty: promote unchanged
            else:
                break  # park and wait for the sibling
            level += 1
            slot >>= 1
        self._nodes[(level, slot)] = (node, node_owned)
        self._n_added += 1
        if len(self._nodes) > self._pending_peak:
            self._pending_peak = len(self._nodes)
        self._seconds += time.perf_counter() - start

    def result(self) -> Tally:
        """Return the fully reduced tally; all tasks must have been added."""
        if self._n_added != self.n_tasks:
            raise ValueError(
                f"reduction incomplete: {self._n_added}/{self.n_tasks} tasks added"
            )
        assert len(self._nodes) == 1, "complete reduction must leave a single root"
        ((tally, _),) = self._nodes.values()
        tel = self._telemetry
        if tel is not None:
            tel.gauge("reduce.pending_peak", float(self._pending_peak))
            tel.count("reduce.seconds", self._seconds)
        return tally


def reduce_all(tallies: Iterable[Tally], *, owned: bool = False) -> Tally:
    """Reduce a non-empty sequence through the canonical pairwise tree.

    Equivalent to feeding a :class:`PairwiseReducer` in index order; the
    drop-in deterministic replacement for ``Tally.merge_all``.
    """
    items = list(tallies)
    if not items:
        raise ValueError("reduce_all needs at least one tally")
    reducer = PairwiseReducer(len(items))
    for i, tally in enumerate(items):
        reducer.add(i, tally, owned=owned)
    return reducer.result()
