"""Incremental, deterministic, bounded-memory tally reduction.

The distributed ``DataManager`` of the source paper merges worker results
as they arrive; buffering every task tally and folding once at the end
(the pre-PR-3 behaviour) costs O(n_tasks) memory and a serial end-of-run
stall.  :class:`PairwiseReducer` replaces that with a **fixed binary
reduction tree keyed by task index**: the shape of the tree depends only
on ``n_tasks``, never on completion order, so the reduced tally is
bit-identical no matter how the scheduler interleaves workers — the same
reproducibility contract the serial/distributed cross-checks rely on.

How it works
------------
Tree node ``(level, slot)`` covers task indices
``[slot * 2**level, (slot + 1) * 2**level)``.  A completed task enters as
leaf ``(0, task_index)`` and climbs:

- if its sibling ``(level, slot ^ 1)`` is already pending, the two merge
  and the parent continues climbing;
- if the sibling's range starts at or beyond ``n_tasks`` it can never
  exist, so the node is promoted to its parent unchanged (this keeps the
  tree canonical for non-power-of-two task counts — exactly one root);
- otherwise the node parks in the pending table and waits.

Each pairwise combination is a single IEEE-754 add per field, which is
commutative bitwise, so *which* operand accumulates into which does not
affect the bits; only the tree shape matters, and that is fixed.

Memory bound
------------
With in-order completion the pending table is a binary counter:
≤ ⌈log₂ n_tasks⌉ entries.  Out-of-order completion adds at most ~log₂ n
pending nodes per "hole" (an outstanding task splitting two completed
runs), i.e. peak pending ≈ ⌈log₂ n_tasks⌉ + tasks in flight — versus
n_tasks for the old buffer-then-fold approach.  ``pending_peak`` reports
the observed maximum.
"""

from __future__ import annotations

import time
from typing import Iterable

from .tally import Tally

__all__ = [
    "PairwiseReducer",
    "SpanFolder",
    "TallyFrontier",
    "aligned_spans",
    "prefix_spans",
    "reduce_all",
    "span_level",
]


def span_level(start: int, stop: int, n_tasks: int) -> int:
    """Level of the canonical subtree covering task range ``[start, stop)``.

    A span is *tree-aligned* when the canonical reduction tree for
    ``n_tasks`` contains a single node whose (clipped) leaf range is exactly
    ``[start, stop)`` — i.e. ``start`` is a multiple of ``2**level`` and the
    span runs to the end of that block (or to ``n_tasks`` for the tail
    block).  Only aligned spans may be folded worker-side: their internal
    pairwise merges are precisely the merges the parent tree would have
    performed, so the folded partial is bit-identical to feeding the leaves
    individually.

    Returns the subtree level; raises ``ValueError`` for a misaligned span.
    """
    if not 0 <= start < stop <= n_tasks:
        raise ValueError(
            f"span [{start}, {stop}) out of range for {n_tasks} tasks"
        )
    level = (stop - start - 1).bit_length()
    size = 1 << level
    if start % size or min(start + size, n_tasks) != stop:
        raise ValueError(
            f"span [{start}, {stop}) is not aligned to the canonical "
            f"reduction tree of {n_tasks} tasks"
        )
    return level


def aligned_spans(n_tasks: int, span_size: int) -> list[tuple[int, int]]:
    """Partition ``[0, n_tasks)`` into contiguous tree-aligned spans.

    ``span_size`` is rounded *down* to a power of two (alignment demands
    it); every returned ``(start, stop)`` satisfies :func:`span_level`, so
    each span can be folded worker-side and re-injected with
    :meth:`PairwiseReducer.add_span` without changing a single bit of the
    reduced tally.  The final span may be shorter (the tail block).
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if span_size < 1:
        raise ValueError(f"span_size must be >= 1, got {span_size}")
    width = 1 << (span_size.bit_length() - 1)
    return [(s, min(s + width, n_tasks)) for s in range(0, n_tasks, width)]


def prefix_spans(k: int) -> list[tuple[int, int]]:
    """Canonical aligned-span decomposition of the task prefix ``[0, k)``.

    The spans follow the binary digits of ``k`` from most to least
    significant (``k = 13`` → ``[0, 8), [8, 12), [12, 13)``): each span
    ``[s, s + 2**l)`` starts at a multiple of its own power-of-two width,
    so every span satisfies :func:`span_level` in the reduction tree of
    *any* total task count ``n_tasks >= k``.  This is exactly the pending
    set a :class:`PairwiseReducer` holds after being fed tasks ``[0, k)``
    — independent of ``n_tasks`` — which is what makes a cached run's
    frontier re-injectable into a larger run's tree (see
    :class:`TallyFrontier`).
    """
    if k < 0:
        raise ValueError(f"prefix length must be >= 0, got {k}")
    spans: list[tuple[int, int]] = []
    start = 0
    for level in range(k.bit_length() - 1, -1, -1):
        width = 1 << level
        if k & width:
            spans.append((start, start + width))
            start += width
    return spans


class TallyFrontier:
    """Re-injectable partial reduction state: canonical span partials.

    A frontier is a list of ``(start, stop, tally)`` span partials, each
    the canonical subtree fold of the task range ``[start, stop)``.  A
    frontier captured from a run of ``k`` full tasks (spans =
    :func:`prefix_spans` ``(k)``) can be primed into the reduction tree of
    any larger run via :meth:`PairwiseReducer.add_span`; folding the
    missing tasks on top then yields a tally bit-identical to reducing all
    tasks from scratch — the prefix-extension contract the serving cache
    relies on.

    Spans must be non-overlapping and sorted by ``start``.
    """

    __slots__ = ("spans",)

    def __init__(self, spans: list[tuple[int, int, Tally]]) -> None:
        prev = None
        for start, stop, _tally in spans:
            if not 0 <= start < stop:
                raise ValueError(f"invalid frontier span [{start}, {stop})")
            if prev is not None and start < prev:
                raise ValueError("frontier spans must be sorted and disjoint")
            prev = stop
        self.spans = list(spans)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    @property
    def n_covered(self) -> int:
        """Total number of tasks covered by the frontier's spans."""
        return sum(stop - start for start, stop, _ in self.spans)

    @property
    def prefix_tasks(self) -> int:
        """Length ``k`` of the contiguous prefix ``[0, k)`` covered, or 0.

        A frontier is only usable as a budget-extension base when its
        spans tile ``[0, k)`` exactly; holes or a non-zero start make it a
        partial-range export (still resumable, not a prefix).
        """
        expect = 0
        for start, stop, _ in self.spans:
            if start != expect:
                return 0
            expect = stop
        return expect

    def copy(self) -> "TallyFrontier":
        """Deep copy (independent tallies, safe to mutate or re-inject)."""
        return TallyFrontier([(s, e, t.copy()) for s, e, t in self.spans])


class PairwiseReducer:
    """Fold task tallies into a canonical binary tree, in any arrival order.

    Parameters
    ----------
    n_tasks:
        Total number of tasks that will be fed in (``add`` rejects indices
        outside ``[0, n_tasks)`` and duplicates).  Must be ``> 0``.
    telemetry:
        Optional :class:`~repro.observe.Telemetry` (duck-typed).  On
        :meth:`result` the reducer emits a ``reduce.pending_peak`` gauge
        and a ``reduce.seconds`` counter.

    The reducer never mutates a tally added with ``owned=False`` — pass
    ``owned=True`` when the caller relinquishes the tally (e.g. it will
    not be retained in a ``RunReport``) so the reducer may accumulate into
    it in place instead of allocating a copy at the first merge.
    """

    def __init__(
        self,
        n_tasks: int,
        *,
        telemetry=None,
        capture_spans: "Iterable[tuple[int, int]] | None" = None,
    ) -> None:
        if n_tasks <= 0:
            raise ValueError(f"n_tasks must be > 0, got {n_tasks}")
        self.n_tasks = n_tasks
        self._telemetry = telemetry
        # (level, slot) -> (tally, owned); bounded by ~log2(n) + holes.
        self._nodes: dict[tuple[int, int], tuple[Tally, bool]] = {}
        # One bit per task index: duplicate detection in n/8 bytes.
        self._seen = bytearray((n_tasks + 7) // 8)
        self._n_added = 0
        self._pending_peak = 0
        self._seconds = 0.0
        # Snapshot requests: tree node -> span; filled into _captured as the
        # climb passes through each node with its complete subtree fold.
        self._capture: dict[tuple[int, int], tuple[int, int]] = {}
        self._captured: dict[tuple[int, int], Tally] = {}
        self._capture_order: list[tuple[int, int]] = []
        for start, stop in capture_spans or ():
            level = span_level(start, stop, n_tasks)
            if stop - start != 1 << level:
                raise ValueError(
                    f"capture span [{start}, {stop}) is clipped by n_tasks="
                    f"{n_tasks}; only full-width spans can be captured"
                )
            self._capture[(level, start >> level)] = (start, stop)
            self._capture_order.append((start, stop))
        self._capture_order.sort()

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of partially reduced tallies currently held."""
        return len(self._nodes)

    @property
    def pending_peak(self) -> int:
        """Maximum number of tallies ever held simultaneously."""
        return self._pending_peak

    @property
    def n_added(self) -> int:
        return self._n_added

    @property
    def seconds(self) -> float:
        """Cumulative wall time spent combining tallies."""
        return self._seconds

    # -- reduction -------------------------------------------------------------

    def _mark_seen(self, start: int, stop: int) -> None:
        for task_index in range(start, stop):
            byte, bit = divmod(task_index, 8)
            if self._seen[byte] & (1 << bit):
                raise ValueError(
                    f"task {task_index} already reduced (duplicate result)"
                )
            self._seen[byte] |= 1 << bit

    def _climb(self, level: int, slot: int, tally: Tally, owned: bool) -> None:
        """Insert a node and climb the tree, merging/promoting as far as possible."""
        node, node_owned = tally, owned
        while True:
            if self._capture:
                # A node position is only ever reached carrying the complete
                # canonical fold of its task range (both children merged, or
                # promoted past an empty tail sibling), so snapshotting here
                # yields exactly the subtree partial the span denotes.
                span = self._capture.pop((level, slot), None)
                if span is not None:
                    self._captured[span] = node.copy()
            if (1 << level) >= self.n_tasks:
                break  # at the root: park
            sibling = self._nodes.pop((level, slot ^ 1), None)
            if sibling is not None:
                other, other_owned = sibling
                # A single pairwise merge is order-independent bitwise, so
                # accumulate into whichever operand we are allowed to mutate.
                if node_owned:
                    node = node.imerge(other)
                elif other_owned:
                    node, node_owned = other.imerge(node), True
                else:
                    node, node_owned = node.merge(other), True
            elif ((slot | 1) << level) >= self.n_tasks:
                pass  # sibling range is empty: promote unchanged
            else:
                break  # park and wait for the sibling
            level += 1
            slot >>= 1
        self._nodes[(level, slot)] = (node, node_owned)
        if len(self._nodes) > self._pending_peak:
            self._pending_peak = len(self._nodes)

    def add(self, task_index: int, tally: Tally, *, owned: bool = False) -> None:
        """Feed one completed task's tally into the tree.

        Raises ``ValueError`` on an out-of-range or duplicate index —
        speculative duplicates must be filtered *before* reduction, since
        adding a task twice would double-count its photons.
        """
        if not 0 <= task_index < self.n_tasks:
            raise ValueError(
                f"task_index {task_index} out of range [0, {self.n_tasks})"
            )
        self._mark_seen(task_index, task_index + 1)
        start = time.perf_counter()
        self._climb(0, task_index, tally, owned)
        self._n_added += 1
        self._seconds += time.perf_counter() - start

    def add_span(
        self, start: int, stop: int, partial: Tally, *, owned: bool = False
    ) -> None:
        """Feed a worker-folded subtree partial covering tasks ``[start, stop)``.

        ``partial`` must be the canonical bottom-up fold of that span's task
        tallies (:class:`SpanFolder` produces exactly this), and the span
        must be tree-aligned (:func:`span_level`).  The partial enters the
        tree at its subtree node and climbs like any other node, so the
        final result is bit-identical to adding the ``stop - start`` leaves
        individually — the worker merely performed the subtree's merges on
        the parent's behalf.

        Raises ``ValueError`` on a misaligned span or if any covered task
        was already reduced (speculative span duplicates must be filtered
        before reduction).
        """
        level = span_level(start, stop, self.n_tasks)
        self._mark_seen(start, stop)
        t0 = time.perf_counter()
        self._climb(level, start >> level, partial, owned)
        self._n_added += stop - start
        self._seconds += time.perf_counter() - t0

    def result(self) -> Tally:
        """Return the fully reduced tally; all tasks must have been added."""
        if self._n_added != self.n_tasks:
            raise ValueError(
                f"reduction incomplete: {self._n_added}/{self.n_tasks} tasks added"
            )
        assert len(self._nodes) == 1, "complete reduction must leave a single root"
        ((tally, _),) = self._nodes.values()
        tel = self._telemetry
        if tel is not None:
            tel.gauge("reduce.pending_peak", float(self._pending_peak))
            tel.count("reduce.seconds", self._seconds)
        return tally

    # -- frontiers -------------------------------------------------------------

    def prime(self, frontier: TallyFrontier) -> None:
        """Re-inject a previously exported frontier's span partials.

        Each span enters the tree at its canonical subtree node (via
        :meth:`add_span`), so priming a cached run's frontier and then
        adding only the missing tasks reproduces the from-scratch reduction
        bit for bit.  The frontier's tallies are not mutated.
        """
        for start, stop, tally in frontier:
            self.add_span(start, stop, tally, owned=False)

    def captured_frontier(self) -> TallyFrontier:
        """The frontier snapshotted at the requested ``capture_spans``.

        Raises ``ValueError`` while any requested span has not yet formed
        (its tasks are still outstanding).
        """
        if self._capture:
            missing = sorted(self._capture.values())
            raise ValueError(f"capture incomplete: spans {missing} not yet formed")
        return TallyFrontier(
            [(s, e, self._captured[(s, e)]) for s, e in self._capture_order]
        )

    def export_pending(self) -> TallyFrontier:
        """Snapshot the current pending nodes as a re-injectable frontier.

        Each pending node is the complete canonical fold of its (clipped)
        task range, so the export can resume this same-``n_tasks``
        reduction later via :meth:`prime`.  Tallies are deep-copied.
        """
        spans = []
        for (level, slot), (tally, _owned) in self._nodes.items():
            start = slot << level
            stop = min(start + (1 << level), self.n_tasks)
            spans.append((start, stop, tally.copy()))
        spans.sort(key=lambda item: item[0])
        return TallyFrontier(spans)

    def partial_result(self) -> Tally:
        """Merge the pending partials left-to-right without consuming them.

        For an incomplete reduction (e.g. a partial task-range run) this is
        the deterministic tally of everything added so far; for a complete
        one it equals a copy of :meth:`result`.
        """
        if not self._nodes:
            raise ValueError("no tallies added: nothing to reduce")
        items = sorted(self._nodes.items(), key=lambda kv: kv[0][1] << kv[0][0])
        out = items[0][1][0].copy()
        for _key, (tally, _owned) in items[1:]:
            out.imerge(tally)
        return out


class SpanFolder:
    """Fold one tree-aligned span of task tallies into its subtree partial.

    A worker assigned the contiguous task range ``[start, stop)`` feeds each
    task's tally in (any order) and ships the single :meth:`partial` back to
    the coordinator, which re-injects it with
    :meth:`PairwiseReducer.add_span`.  The folder performs **exactly** the
    pairwise merges the parent's canonical tree would have performed for
    this subtree — same node pairing, same promote-on-empty rule for the
    tail block — so the partial is bit-identical to feeding the leaves to
    the parent individually, while the coordinator does ``stop - start``
    times less merging and receives one payload instead of many.
    """

    def __init__(self, n_tasks: int, start: int, stop: int) -> None:
        self.level = span_level(start, stop, n_tasks)
        self.n_tasks = n_tasks
        self.start = start
        self.stop = stop
        self._nodes: dict[tuple[int, int], tuple[Tally, bool]] = {}
        self._seen: set[int] = set()
        self._added = 0

    def add(self, task_index: int, tally: Tally, *, owned: bool = False) -> None:
        """Feed one task of the span; rejects out-of-span and duplicate indices."""
        if not self.start <= task_index < self.stop:
            raise ValueError(
                f"task_index {task_index} outside span [{self.start}, {self.stop})"
            )
        if task_index in self._seen:
            raise ValueError(f"task {task_index} already folded (duplicate)")
        self._seen.add(task_index)
        level, slot = 0, task_index
        node, node_owned = tally, owned
        while level < self.level:
            sibling = self._nodes.pop((level, slot ^ 1), None)
            if sibling is not None:
                other, other_owned = sibling
                if node_owned:
                    node = node.imerge(other)
                elif other_owned:
                    node, node_owned = other.imerge(node), True
                else:
                    node, node_owned = node.merge(other), True
            elif ((slot | 1) << level) >= self.n_tasks:
                pass  # sibling range is empty (tail block): promote unchanged
            else:
                break  # park and wait for the in-span sibling
            level += 1
            slot >>= 1
        self._nodes[(level, slot)] = (node, node_owned)
        self._added += 1

    def partial(self) -> Tally:
        """The folded subtree partial; every task of the span must be added."""
        if self._added != self.stop - self.start:
            raise ValueError(
                f"span fold incomplete: {self._added}/{self.stop - self.start} "
                "tasks added"
            )
        assert len(self._nodes) == 1, "complete span fold must leave a single node"
        ((tally, _),) = self._nodes.values()
        return tally


def reduce_all(tallies: Iterable[Tally], *, owned: bool = False) -> Tally:
    """Reduce a non-empty sequence through the canonical pairwise tree.

    Equivalent to feeding a :class:`PairwiseReducer` in index order; the
    drop-in deterministic replacement for ``Tally.merge_all``.
    """
    items = list(tallies)
    if not items:
        raise ValueError("reduce_all needs at least one tally")
    reducer = PairwiseReducer(len(items))
    for i, tally in enumerate(items):
        reducer.add(i, tally, owned=owned)
    return reducer.result()
