"""Diffusion-approximation baselines.

The paper (§2): "Light transport in tissue is analysed using radiative
transport theory or the diffusion approximation [6]."  This module
implements the standard analytic diffusion-theory solutions for a
semi-infinite homogeneous medium — the baseline our Monte Carlo engine is
validated against in the integration tests:

* steady-state radially resolved diffuse reflectance R(rho) after Farrell,
  Patterson & Wilson (1992), using the extrapolated-boundary dipole;
* time-resolved reflectance R(rho, t) after Patterson, Chance & Wilson
  (1989), used to validate the pathlength-gated mode;
* the internal-reflection parameter A(n_rel) from the Groenhuis/Egan
  polynomial fit.

Validity: rho must be at least a few transport mean free paths from the
source, absorption must be weak compared with reduced scattering
(µa << µs′), which Table 1 tissues satisfy.
"""

from __future__ import annotations

import math

import numpy as np

from ..tissue.optical import OpticalProperties, SPEED_OF_LIGHT_MM_PER_NS

__all__ = [
    "internal_reflection_parameter",
    "extrapolation_distance",
    "reflectance_farrell",
    "reflectance_time_resolved",
    "mean_time_of_flight_theory",
    "dpf_theory",
    "fluence_infinite",
]


def internal_reflection_parameter(n_rel: float) -> float:
    """Internal-reflection parameter A for a refractive-index mismatch.

    Uses the Groenhuis polynomial fit for the effective reflection
    coefficient r_d of diffuse light at a boundary with relative index
    ``n_rel = n_inside / n_outside``:

    ``r_d = -1.440 / n_rel^2 + 0.710 / n_rel + 0.668 + 0.0636 n_rel``

    and ``A = (1 + r_d) / (1 - r_d)``.  ``A = 1`` for a matched boundary.
    """
    if n_rel <= 0:
        raise ValueError(f"n_rel must be > 0, got {n_rel}")
    if abs(n_rel - 1.0) < 1e-12:
        return 1.0
    r_d = -1.440 / n_rel**2 + 0.710 / n_rel + 0.668 + 0.0636 * n_rel
    if r_d >= 1.0:
        raise ValueError(f"reflection fit out of range for n_rel={n_rel}")
    return (1.0 + r_d) / (1.0 - r_d)


def extrapolation_distance(props: OpticalProperties, n_outside: float = 1.0) -> float:
    """Extrapolated-boundary distance z_b = 2 A D in mm."""
    a = internal_reflection_parameter(props.n / n_outside)
    return 2.0 * a * props.diffusion_coefficient


def reflectance_farrell(
    rho: np.ndarray | float, props: OpticalProperties, n_outside: float = 1.0
) -> np.ndarray:
    """Steady-state diffuse reflectance R(rho) of a semi-infinite medium.

    Farrell-Patterson-Wilson dipole solution with extrapolated boundary:
    an isotropic source at depth ``z0 = 1/µt'`` and a negative image source
    at ``-(z0 + 2 z_b)``.  Returns reflected power per unit area per unit
    incident power (mm⁻²).
    """
    rho = np.asarray(rho, dtype=np.float64)
    mu_eff = props.effective_attenuation
    z0 = 1.0 / props.mu_tr
    zb = extrapolation_distance(props, n_outside)

    r1 = np.sqrt(z0 * z0 + rho * rho)
    z2 = z0 + 2.0 * zb
    r2 = np.sqrt(z2 * z2 + rho * rho)

    term1 = z0 * (mu_eff + 1.0 / r1) * np.exp(-mu_eff * r1) / (r1 * r1)
    term2 = z2 * (mu_eff + 1.0 / r2) * np.exp(-mu_eff * r2) / (r2 * r2)
    return (term1 + term2) / (4.0 * math.pi)


def reflectance_time_resolved(
    rho: float,
    t: np.ndarray | float,
    props: OpticalProperties,
    n_outside: float = 1.0,
) -> np.ndarray:
    """Time-resolved diffuse reflectance R(rho, t) (mm⁻² ns⁻¹).

    Patterson-Chance-Wilson (1989) solution with the extrapolated-boundary
    dipole; ``t`` is the time of flight in ns inside a medium of index
    ``props.n`` (photon speed c/n).
    """
    t = np.asarray(t, dtype=np.float64)
    c = SPEED_OF_LIGHT_MM_PER_NS / props.n  # mm / ns in the medium
    d = props.diffusion_coefficient
    z0 = 1.0 / props.mu_tr
    zb = extrapolation_distance(props, n_outside)
    z2 = z0 + 2.0 * zb

    with np.errstate(divide="ignore", invalid="ignore"):
        prefactor = np.power(4.0 * math.pi * d * c, -1.5) * np.power(t, -2.5)
        decay = np.exp(-props.mu_a * c * t) * np.exp(-rho * rho / (4.0 * d * c * t))
        dipole = z0 * np.exp(-z0 * z0 / (4.0 * d * c * t)) + z2 * np.exp(
            -z2 * z2 / (4.0 * d * c * t)
        )
        out = 0.5 * prefactor * decay * dipole
    return np.where(t > 0.0, out, 0.0)


def mean_time_of_flight_theory(rho: float, props: OpticalProperties) -> float:
    """Mean time of flight <t> at spacing rho, from the R(rho, t) moments.

    Computed by numerical quadrature of the Patterson solution; used to
    cross-check the MC mean detected pathlength (<L> = c/n * <t> ... with
    optical pathlength <L_opt> = c_vacuum * <t>).
    """
    if rho <= 0:
        raise ValueError(f"rho must be > 0, got {rho}")
    # Integrate over a window generously covering the decay.
    c = SPEED_OF_LIGHT_MM_PER_NS / props.n
    t_scale = max(rho / c * 10.0, 1.0 / (props.mu_a * c + 1e-12) * 5.0)
    t = np.linspace(1e-6, t_scale, 200_000)
    r = reflectance_time_resolved(rho, t, props)
    norm = np.trapezoid(r, t)
    if norm <= 0:
        raise ValueError("time-resolved reflectance integrates to zero")
    return float(np.trapezoid(t * r, t) / norm)


def dpf_theory(rho: float, props: OpticalProperties) -> float:
    """Differential pathlength factor from diffusion theory.

    DPF = <geometric pathlength> / rho = c/n * <t> / rho, with <t> from
    :func:`mean_time_of_flight_theory`.  The classic closed-form
    approximation (valid for µa << µs′ and µeff·rho >> 1)

    ``DPF ≈ (1/2) sqrt(3 µs′ / µa) [1 - 1 / (1 + rho µeff)]``

    agrees with the quadrature within a few percent in that regime; we use
    the quadrature as the reference.
    """
    t_mean = mean_time_of_flight_theory(rho, props)
    c = SPEED_OF_LIGHT_MM_PER_NS / props.n
    return c * t_mean / rho


def fluence_infinite(r: np.ndarray | float, props: OpticalProperties) -> np.ndarray:
    """Fluence of an isotropic point source in an *infinite* medium (mm⁻²).

    ``phi(r) = exp(-µeff r) / (4 pi D r)`` — the Green's function of the
    diffusion equation, used by unit tests of the diffusion module itself.
    """
    r = np.asarray(r, dtype=np.float64)
    d = props.diffusion_coefficient
    with np.errstate(divide="ignore"):
        return np.exp(-props.effective_attenuation * r) / (4.0 * math.pi * d * r)
