"""Diffusion-approximation analytic baselines (validation of the MC engine)."""

from .theory import (
    dpf_theory,
    extrapolation_distance,
    fluence_infinite,
    internal_reflection_parameter,
    mean_time_of_flight_theory,
    reflectance_farrell,
    reflectance_time_resolved,
)

__all__ = [
    "dpf_theory",
    "extrapolation_distance",
    "fluence_infinite",
    "internal_reflection_parameter",
    "mean_time_of_flight_theory",
    "reflectance_farrell",
    "reflectance_time_resolved",
]
