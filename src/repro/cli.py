"""Command-line interface: ``tissue-mc``.

Subcommands map one-to-one onto the paper's experiments:

* ``run``      — run a Monte Carlo simulation of a named tissue model and
  print (or save) the tally summary;
* ``banana``   — the Fig. 3 experiment: detected-path sensitivity profile
  in homogeneous white matter, rendered as an ASCII heat map;
* ``head``     — the Fig. 4 experiment: layered adult-head simulation with
  per-layer penetration and absorption report;
* ``speedup``  — the Fig. 2 experiment: simulated homogeneous-cluster
  speedup/efficiency curve;
* ``table2``   — the heterogeneous-cluster experiment of Table 2.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_MODELS = ("white_matter", "adult_head", "neonatal_head")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tissue-mc",
        description="Distributed Monte Carlo simulation of light transport in tissue "
        "(reproduction of Page et al., IPPS 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a simulation and print the tally summary")
    run.add_argument("--model", choices=_MODELS, default="adult_head")
    run.add_argument("--photons", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--kernel", choices=("vector", "scalar"), default="vector")
    run.add_argument(
        "--boundary-mode", choices=("probabilistic", "classical"), default="probabilistic"
    )
    run.add_argument("--detector-spacing", type=float, default=None, metavar="MM",
                     help="annular detector at this source spacing (default: accept all)")
    run.add_argument("--gate", type=float, nargs=2, default=None, metavar=("L_MIN", "L_MAX"),
                     help="pathlength gate in mm")
    run.add_argument("--workers", type=int, default=1,
                     help="run distributed on this many local processes")
    run.add_argument("--task-size", type=int, default=10_000)
    run.add_argument("--save", type=str, default=None, metavar="FILE.npz")
    run.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                     help="persist completed tasks to DIR so the run can be resumed")
    run.add_argument("--resume", action="store_true",
                     help="continue from an existing checkpoint in --checkpoint DIR")
    run.add_argument("--task-deadline", type=float, default=None, metavar="SECONDS",
                     help="speculatively re-dispatch tasks in flight longer than this")

    banana = sub.add_parser("banana", help="Fig. 3: banana sensitivity profile")
    banana.add_argument("--photons", type=int, default=40_000)
    banana.add_argument("--spacing", type=float, default=4.0, help="optode spacing in mm")
    banana.add_argument("--granularity", type=int, default=50, help="voxel grid resolution")
    banana.add_argument("--seed", type=int, default=0)
    banana.add_argument("--pgm", type=str, default=None, metavar="FILE.pgm")

    head = sub.add_parser("head", help="Fig. 4: layered adult-head simulation")
    head.add_argument("--photons", type=int, default=40_000)
    head.add_argument("--spacing", type=float, default=30.0)
    head.add_argument("--seed", type=int, default=0)
    head.add_argument("--neonatal", action="store_true", help="use the neonatal model")

    speedup = sub.add_parser("speedup", help="Fig. 2: simulated speedup curve")
    speedup.add_argument("--max-k", type=int, default=60)
    speedup.add_argument("--photons", type=int, default=100_000_000)
    speedup.add_argument("--task-size", type=int, default=100_000)

    table2 = sub.add_parser("table2", help="Table 2: heterogeneous cluster simulation")
    table2.add_argument("--photons", type=int, default=1_000_000_000)
    table2.add_argument("--task-size", type=int, default=200_000)
    table2.add_argument("--seed", type=int, default=0)
    table2.add_argument("--dedicated", action="store_true",
                        help="disable the stochastic availability model")

    serve = sub.add_parser(
        "serve", help="run the DataManager as a TCP server (clients connect with 'client')"
    )
    serve.add_argument("--model", choices=_MODELS, default="adult_head")
    serve.add_argument("--photons", type=int, default=100_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--task-size", type=int, default=10_000)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument("--timeout", type=float, default=3600.0)
    serve.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                       help="persist completed tasks to DIR so the run can be resumed")
    serve.add_argument("--resume", action="store_true",
                       help="continue from an existing checkpoint in --checkpoint DIR")
    serve.add_argument("--task-deadline", type=float, default=None, metavar="SECONDS",
                       help="speculatively re-dispatch tasks in flight longer than this")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="declare a silent client hung after this long (0 disables)")

    client = sub.add_parser("client", help="connect to a 'serve' instance and work")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--name", default=None)
    client.add_argument("--max-tasks", type=int, default=None)
    client.add_argument("--heartbeat-interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="send a keep-alive this often while computing (0 disables)")

    fit = sub.add_parser(
        "fit", help="inverse problem: recover (mu_a, mu_s') from simulated R(rho)"
    )
    fit.add_argument("--mu-a", type=float, default=0.05, help="true absorption (mm^-1)")
    fit.add_argument("--mu-s-reduced", type=float, default=2.0,
                     help="true reduced scattering (mm^-1)")
    fit.add_argument("--photons", type=int, default=80_000)
    fit.add_argument("--seed", type=int, default=0)

    return parser


def _checkpoint_from_args(args):
    """Build the CheckpointManager requested by --checkpoint/--resume.

    ``--resume`` requires ``--checkpoint``; without ``--resume`` an existing
    checkpoint is refused rather than silently extended, so two unrelated
    runs can never be mixed by a stale directory.
    """
    from .distributed import CheckpointManager

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint DIR")
    if not args.checkpoint:
        return None
    checkpoint = CheckpointManager(args.checkpoint)
    if checkpoint.exists and not args.resume:
        raise SystemExit(
            f"checkpoint {args.checkpoint} already exists; "
            "pass --resume to continue that run"
        )
    return checkpoint


def _stack_for(model: str):
    from .tissue import adult_head, neonatal_head, white_matter

    return {"white_matter": white_matter, "adult_head": adult_head,
            "neonatal_head": neonatal_head}[model]()


def _cmd_run(args) -> int:
    from .core import RecordConfig, Simulation, SimulationConfig
    from .detect import AnnularDetector, PathlengthGate
    from .distributed import DataManager, MultiprocessingBackend
    from .io import format_table, save_tally
    from .sources import PencilBeam

    stack = _stack_for(args.model)
    detector = None
    if args.detector_spacing is not None:
        rho = args.detector_spacing
        detector = AnnularDetector(max(0.0, rho - 1.0), rho + 1.0)
    gate = PathlengthGate(*args.gate) if args.gate else None
    kwargs = dict(
        stack=stack,
        source=PencilBeam(),
        gate=gate,
        boundary_mode=args.boundary_mode,
        records=RecordConfig(penetration_bins=(50.0, 200)),
    )
    if detector is not None:
        kwargs["detector"] = detector
    config = SimulationConfig(**kwargs)

    checkpoint = _checkpoint_from_args(args)
    if args.workers > 1 or checkpoint is not None:
        from .distributed import SerialBackend

        manager = DataManager(config, args.photons, seed=args.seed,
                              task_size=args.task_size, kernel=args.kernel,
                              task_deadline=args.task_deadline,
                              checkpoint=checkpoint)
        if args.workers > 1:
            with MultiprocessingBackend(args.workers) as backend:
                report = manager.run(backend)
        else:
            report = manager.run(SerialBackend())
        tally = report.tally
        print(f"# distributed over {args.workers} workers, "
              f"{report.n_tasks} tasks, wall {report.wall_seconds:.1f}s, "
              f"{report.retries} retries, "
              f"{report.speculative_duplicates} speculative duplicates")
        if checkpoint is not None:
            print(f"# checkpoint: {checkpoint.directory} "
                  f"({len(checkpoint.completed_indices())} tasks recorded)")
    else:
        tally = Simulation(config).run(
            args.photons, seed=args.seed, task_size=args.task_size,
            kernel=args.kernel,
        )

    rows = [[k, v] for k, v in tally.summary().items()]
    print(format_table(["quantity", "value"], rows, float_format="{:.6g}"))
    if args.save:
        path = save_tally(args.save, tally)
        print(f"# tally saved to {path}")
    return 0


def _cmd_banana(args) -> int:
    from .analysis import ascii_heatmap, banana_metrics, save_pgm, xz_slice
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import DiscDetector, GridSpec
    from .sources import PencilBeam
    from .tissue import white_matter

    rho = args.spacing
    spec = GridSpec.banana_box(args.granularity, rho)
    config = SimulationConfig(
        stack=white_matter(),
        source=PencilBeam(),
        detector=DiscDetector(rho, 0.0, radius=0.75),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(path_grid=spec),
    )
    tally = Simulation(config).run(args.photons, seed=args.seed)
    print(f"# detected {tally.detected_count} of {tally.n_launched} photons")
    slab = xz_slice(tally.path_grid, spec)
    print(ascii_heatmap(slab))
    metrics = banana_metrics(tally.path_grid, spec, detector_x=rho)
    print(f"# banana: depth(source)={metrics.depth_at_source:.2f}mm "
          f"depth(mid)={metrics.depth_at_midpoint:.2f}mm "
          f"depth(detector)={metrics.depth_at_detector:.2f}mm "
          f"is_banana={metrics.is_banana}")
    if args.pgm:
        print(f"# wrote {save_pgm(args.pgm, slab)}")
    return 0


def _cmd_head(args) -> int:
    from .analysis import layer_report
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import AnnularDetector
    from .io import format_table
    from .sources import PencilBeam
    from .tissue import adult_head, neonatal_head

    stack = neonatal_head() if args.neonatal else adult_head()
    rho = args.spacing
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        detector=AnnularDetector(rho - 2.0, rho + 2.0),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(penetration_bins=(stack.layer_top(len(stack) - 1) + 20.0, 400)),
    )
    tally = Simulation(config).run(args.photons, seed=args.seed)
    rows = [
        [r.name, r.z_top, r.z_bottom, r.absorbed_fraction, r.reached_fraction, r.stopped_fraction]
        for r in layer_report(tally, stack)
    ]
    print(format_table(
        ["layer", "z_top(mm)", "z_bottom(mm)", "absorbed", "reached", "stopped"], rows
    ))
    print(f"# detected {tally.detected_count} photons at {rho} mm spacing; "
          f"Rd={tally.diffuse_reflectance:.4f}")
    return 0


def _cmd_speedup(args) -> int:
    from .cluster import speedup_curve
    from .io import format_table

    ks = sorted({1, *range(5, args.max_k + 1, 5), args.max_k})
    points = speedup_curve(ks, args.photons, args.task_size)
    rows = [[p.k, p.pk_seconds, p.speedup, p.efficiency] for p in points]
    print(format_table(["k", "Pk (s)", "speedup", "efficiency"], rows))
    return 0


def _cmd_table2(args) -> int:
    from .cluster import (
        Dedicated,
        TABLE2_CLASSES,
        UniformAvailability,
        simulate_run,
        table2_cluster,
        total_mflops,
    )
    from .io import format_table

    rows = [
        [c.count, f"{c.mflops_min:g}-{c.mflops_max:g}", c.ram_mb, c.os, c.processor]
        for c in TABLE2_CLASSES
    ]
    print(format_table(["#", "Mflop/s", "RAM (MB)", "O/S", "Processor"], rows))
    cluster = table2_cluster(np.random.default_rng(args.seed))
    availability = Dedicated() if args.dedicated else UniformAvailability()
    report = simulate_run(
        cluster, args.photons, args.task_size, availability=availability, seed=args.seed
    )
    print(f"# {len(cluster)} machines, {total_mflops(cluster):.0f} Mflop/s total")
    print(f"# {args.photons:.2g} photons -> makespan {report.makespan_seconds/3600:.2f} h, "
          f"utilisation {report.mean_utilisation:.3f}")
    return 0


def _cmd_serve(args) -> int:
    from .core import SimulationConfig
    from .distributed import NetworkServer
    from .sources import PencilBeam

    config = SimulationConfig(stack=_stack_for(args.model), source=PencilBeam())
    server = NetworkServer(
        config, n_photons=args.photons, seed=args.seed,
        task_size=args.task_size, host=args.host, port=args.port,
        heartbeat_timeout=args.heartbeat_timeout or None,
        task_deadline=args.task_deadline,
        checkpoint=_checkpoint_from_args(args),
    ).start()
    print(f"# DataManager listening on {args.host}:{server.port} "
          f"({args.photons:,} photons in {args.task_size:,}-photon tasks)")
    print(f"# start workers with: tissue-mc client --port {server.port}")
    report = server.wait(timeout=args.timeout)
    print(f"# complete: {report.n_tasks} tasks in {report.wall_seconds:.1f}s, "
          f"{report.retries} retries, "
          f"{report.speculative_duplicates} speculative duplicates")
    from .io import format_table

    rows = [[k, v] for k, v in report.tally.summary().items()]
    print(format_table(["quantity", "value"], rows, float_format="{:.6g}"))
    return 0


def _cmd_client(args) -> int:
    from .distributed import run_network_client

    try:
        completed = run_network_client(
            args.host, args.port, worker_name=args.name, max_tasks=args.max_tasks,
            heartbeat_interval=args.heartbeat_interval or None,
        )
    except OSError as exc:
        # The server vanished (or refused us) — a non-dedicated client
        # reports it and exits; its tasks are reassigned server-side.
        print(f"# lost the server at {args.host}:{args.port}: {exc}")
        return 1
    print(f"# completed {completed} tasks")
    return 0


def _cmd_fit(args) -> int:
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import radial_reflectance
    from .inverse import fit_optical_properties
    from .io import format_table
    from .sources import PencilBeam
    from .tissue import LayerStack, OpticalProperties

    truth = OpticalProperties.from_reduced(
        mu_a=args.mu_a, mu_s_reduced=args.mu_s_reduced, g=0.9, n=1.0
    )
    config = SimulationConfig(
        stack=LayerStack.homogeneous(truth),
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=1e-3, boost=10),
        records=RecordConfig(reflectance_rho_bins=(12.0, 24)),
    )
    print(f"# simulating R(rho) of the 'unknown' medium with {args.photons:,} photons")
    tally = Simulation(config).run(args.photons, seed=args.seed)
    rho, r_mc = radial_reflectance(tally)
    window = (rho >= 1.5) & (r_mc > 0)
    fit = fit_optical_properties(rho[window], r_mc[window], n=1.0, g=0.9)
    print(format_table(
        ["quantity", "truth", "recovered", "error"],
        [
            ["mu_a (mm^-1)", truth.mu_a, fit.mu_a,
             f"{abs(fit.mu_a / truth.mu_a - 1):.1%}"],
            ["mu_s' (mm^-1)", truth.mu_s_reduced, fit.mu_s_reduced,
             f"{abs(fit.mu_s_reduced / truth.mu_s_reduced - 1):.1%}"],
        ],
        float_format="{:.4f}",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "banana": _cmd_banana,
        "head": _cmd_head,
        "speedup": _cmd_speedup,
        "table2": _cmd_table2,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "fit": _cmd_fit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
