"""Command-line interface: ``tissue-mc``.

Subcommands map one-to-one onto the paper's experiments:

* ``run``      — run a Monte Carlo simulation of a named tissue model and
  print (or save) the tally summary;
* ``banana``   — the Fig. 3 experiment: detected-path sensitivity profile
  in homogeneous white matter, rendered as an ASCII heat map;
* ``head``     — the Fig. 4 experiment: layered adult-head simulation with
  per-layer penetration and absorption report;
* ``speedup``  — the Fig. 2 experiment: simulated homogeneous-cluster
  speedup/efficiency curve;
* ``table2``   — the heterogeneous-cluster experiment of Table 2.

Beyond the paper: ``serve``/``client`` run the TCP master–worker platform,
and ``serve-http`` exposes simulations as an HTTP service with
content-addressed result caching and request coalescing
(:mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_MODELS = ("white_matter", "adult_head", "neonatal_head")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tissue-mc",
        description="Distributed Monte Carlo simulation of light transport in tissue "
        "(reproduction of Page et al., IPPS 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a simulation and print the tally summary")
    run.add_argument("--model", choices=_MODELS, default="adult_head")
    run.add_argument("--photons", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--kernel", choices=("vector", "scalar"), default="vector")
    run.add_argument(
        "--boundary-mode", choices=("probabilistic", "classical"), default="probabilistic"
    )
    run.add_argument("--detector-spacing", type=float, default=None, metavar="MM",
                     help="annular detector at this source spacing (default: accept all)")
    run.add_argument("--gate", type=float, nargs=2, default=None, metavar=("L_MIN", "L_MAX"),
                     help="pathlength gate in mm")
    run.add_argument("--workers", type=int, default=1,
                     help="run distributed on this many local workers")
    run.add_argument("--backend", choices=("auto", "serial", "thread", "process"),
                     default="auto",
                     help="execution backend (auto: serial for 1 worker, "
                     "process pool otherwise)")
    run.add_argument("--task-size", type=int, default=10_000)
    run.add_argument("--span-size", type=int, default=None, metavar="N",
                     help="fold up to N tasks worker-side into one tree-aligned "
                          "span per dispatch (rounded down to a power of two; "
                          "bit-identical to per-task dispatch)")
    run.add_argument("--sub-batch", type=int, default=None, metavar="N",
                     help="vectorized-kernel sub-batch override (execution "
                          "tuning; results differ bit-for-bit across values "
                          "but are statistically equivalent)")
    run.add_argument("--task-range", type=int, nargs=2, default=None,
                     metavar=("LO", "HI"),
                     help="simulate only tasks [LO, HI) of the decomposition "
                          "(a partial tally; fingerprinted separately)")
    run.add_argument("--capture-frontier", action="store_true",
                     help="store the reducer's span partials in --save so the "
                          "archive can later seed a larger-budget run")
    run.add_argument("--capture-paths", action="store_true",
                     help="record per-detected-photon per-layer pathlengths "
                          "into the tally (and --save archive) so 'perturb "
                          "sweep' can derive perturbed tallies without "
                          "re-simulating")
    run.add_argument("--extend-from", type=str, default=None, metavar="FILE.npz",
                     help="prime this run with the frontier saved in a "
                          "smaller-budget archive of the same physics and "
                          "simulate only the missing tasks (bit-identical to "
                          "a from-scratch run; implies --capture-frontier)")
    run.add_argument("--save", type=str, default=None, metavar="FILE.npz")
    run.add_argument("--metrics", type=str, default=None, metavar="FILE.jsonl",
                     help="write structured telemetry events (spans, counters, "
                     "progress) to this JSONL file")
    run.add_argument("--progress", action="store_true",
                     help="live progress bar on stderr")
    run.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                     help="persist completed tasks to DIR so the run can be resumed")
    run.add_argument("--resume", action="store_true",
                     help="continue from an existing checkpoint in --checkpoint DIR")
    run.add_argument("--task-deadline", type=float, default=None, metavar="SECONDS",
                     help="speculatively re-dispatch tasks in flight longer than this")
    run.add_argument("--no-retain-task-tallies", dest="retain_task_tallies",
                     action="store_false",
                     help="drop per-task tallies once folded into the reduction "
                          "(bounds memory; task results carry metadata only)")
    run.add_argument("--compress", action="store_true",
                     help="offer zlib frame compression on the task wire "
                          "(meaningful when the run involves TCP clients; "
                          "a purely local run has no wire and ignores it)")

    banana = sub.add_parser("banana", help="Fig. 3: banana sensitivity profile")
    banana.add_argument("--photons", type=int, default=40_000)
    banana.add_argument("--spacing", type=float, default=4.0, help="optode spacing in mm")
    banana.add_argument("--granularity", type=int, default=50, help="voxel grid resolution")
    banana.add_argument("--seed", type=int, default=0)
    banana.add_argument("--pgm", type=str, default=None, metavar="FILE.pgm")

    head = sub.add_parser("head", help="Fig. 4: layered adult-head simulation")
    head.add_argument("--photons", type=int, default=40_000)
    head.add_argument("--spacing", type=float, default=30.0)
    head.add_argument("--seed", type=int, default=0)
    head.add_argument("--neonatal", action="store_true", help="use the neonatal model")

    speedup = sub.add_parser("speedup", help="Fig. 2: simulated speedup curve")
    speedup.add_argument("--max-k", type=int, default=60)
    speedup.add_argument("--photons", type=int, default=100_000_000)
    speedup.add_argument("--task-size", type=int, default=100_000)

    table2 = sub.add_parser("table2", help="Table 2: heterogeneous cluster simulation")
    table2.add_argument("--photons", type=int, default=1_000_000_000)
    table2.add_argument("--task-size", type=int, default=200_000)
    table2.add_argument("--seed", type=int, default=0)
    table2.add_argument("--dedicated", action="store_true",
                        help="disable the stochastic availability model")

    serve = sub.add_parser(
        "serve", help="run the DataManager as a TCP server (clients connect with 'client')"
    )
    serve.add_argument("--model", choices=_MODELS, default="adult_head")
    serve.add_argument("--photons", type=int, default=100_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--task-size", type=int, default=10_000)
    serve.add_argument("--span-size", type=int, default=None, metavar="N",
                       help="dispatch tree-aligned spans of up to N tasks; each "
                            "client folds its span and returns one partial "
                            "(bit-identical, ~N× fewer coordinator merges)")
    serve.add_argument("--sub-batch", type=int, default=None, metavar="N",
                       help="vectorized-kernel sub-batch override shipped with "
                            "every task")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument("--timeout", type=float, default=3600.0)
    serve.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                       help="persist completed tasks to DIR so the run can be resumed")
    serve.add_argument("--resume", action="store_true",
                       help="continue from an existing checkpoint in --checkpoint DIR")
    serve.add_argument("--task-deadline", type=float, default=None, metavar="SECONDS",
                       help="speculatively re-dispatch tasks in flight longer than this")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="declare a silent client hung after this long (0 disables)")
    serve.add_argument("--compress", action="store_true",
                       help="offer zlib frame compression to clients "
                            "(negotiated per connection)")
    serve.add_argument("--no-retain-task-tallies", dest="retain_task_tallies",
                       action="store_false",
                       help="drop per-task tallies once folded into the reduction "
                            "(bounds server memory on long campaigns)")
    serve.add_argument("--metrics", type=str, default=None, metavar="FILE.jsonl",
                       help="write structured telemetry events to this JSONL file")
    serve.add_argument("--progress", action="store_true",
                       help="live progress bar on stderr")

    serve_http = sub.add_parser(
        "serve-http",
        help="HTTP simulation service with content-addressed result caching "
             "and request coalescing",
    )
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8080,
                            help="0 picks a free port")
    serve_http.add_argument("--store", type=str, default="tally-store", metavar="DIR",
                            help="content-addressed result store directory")
    serve_http.add_argument("--store-max-mb", type=float, default=1024.0,
                            help="LRU-evict stored tallies beyond this footprint")
    serve_http.add_argument("--job-workers", type=int, default=2,
                            help="simulations running concurrently")
    serve_http.add_argument("--journal", type=str, default=None, metavar="DIR",
                            help="crash-safe job journal: transitions are fsynced "
                                 "to DIR before acknowledgement and replayed on "
                                 "restart (interrupted jobs resume from their "
                                 "checkpoints bit-identically)")
    serve_http.add_argument("--max-queue", type=int, default=64, metavar="N",
                            help="refuse new runs with 503 when this many jobs "
                                 "are unsettled (0 disables the bound)")
    serve_http.add_argument("--rate-limit", type=float, default=None,
                            metavar="PHOTONS_PER_S",
                            help="per-client token-bucket refill rate in photons "
                                 "per second (429 + Retry-After when exhausted; "
                                 "default: no rate limit)")
    serve_http.add_argument("--max-inflight", type=int, default=None, metavar="N",
                            help="unsettled jobs one client may hold (default: "
                                 "unbounded)")
    serve_http.add_argument("--drain-timeout", type=float, default=30.0,
                            metavar="SECONDS",
                            help="on SIGTERM/SIGINT, wait this long for running "
                                 "jobs to finish before exiting (unfinished jobs "
                                 "stay journaled for the next start)")
    serve_http.add_argument("--job-attempts", type=int, default=1, metavar="N",
                            help="attempts per job before it fails (transient "
                                 "failures retry with exponential backoff)")
    serve_http.add_argument("--job-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="fail a job running longer than this wall budget")
    serve_http.add_argument("--metrics", type=str, default=None, metavar="FILE.jsonl",
                            help="write structured telemetry events to this JSONL file")
    serve_http.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                            help="serve for this long then exit (default: forever)")

    client = sub.add_parser("client", help="connect to a 'serve' instance and work")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--name", default=None)
    client.add_argument("--max-tasks", type=int, default=None)
    client.add_argument("--heartbeat-interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="send a keep-alive this often while computing (0 disables)")

    fit = sub.add_parser(
        "fit", help="inverse problem: recover (mu_a, mu_s') from simulated R(rho)"
    )
    fit.add_argument("--mu-a", type=float, default=0.05, help="true absorption (mm^-1)")
    fit.add_argument("--mu-s-reduced", type=float, default=2.0,
                     help="true reduced scattering (mm^-1)")
    fit.add_argument("--photons", type=int, default=80_000)
    fit.add_argument("--seed", type=int, default=0)

    perturb = sub.add_parser(
        "perturb",
        help="derive perturbed tallies from a path-capturing archive "
             "(no re-simulation)",
    )
    perturb_sub = perturb.add_subparsers(dest="action", required=True)
    sweep = perturb_sub.add_parser(
        "sweep",
        help="sweep one layer's mu_a across derived tallies "
             "(parent archive from 'run --capture-paths --save')",
    )
    sweep.add_argument("archive", metavar="PARENT.npz",
                       help="archive written by 'run --capture-paths --save'")
    sweep.add_argument("--layer", type=int, default=0,
                       help="index of the layer to perturb (default 0)")
    sweep.add_argument("--mu-a", type=float, nargs="+", required=True,
                       metavar="MUA",
                       help="absolute mu_a values (mm^-1) to derive, e.g. "
                            "--mu-a 0.01 0.02 0.03 (absorption reweighting "
                            "is exact)")
    sweep.add_argument("--alpha-s", type=float, default=1.0, metavar="ALPHA",
                       help="additionally scale the layer's mu_s by ALPHA "
                            "(first-order approximation, flagged in the "
                            "output; default 1 = no scattering change)")
    sweep.add_argument("--save-dir", type=str, default=None, metavar="DIR",
                       help="write each derived tally to "
                            "DIR/mua<layer>_<value>.npz")
    sweep.add_argument("--json", dest="json_path", type=str, default=None,
                       metavar="FILE", help="write the sweep table as JSON")

    return parser


def _checkpoint_from_args(args):
    """Build the CheckpointManager requested by --checkpoint/--resume.

    The rules live in :func:`repro.api.resolve_checkpoint` (which the
    facade re-applies); this wrapper only rephrases failures in terms of
    the flags the user actually typed.
    """
    from .api import resolve_checkpoint

    try:
        return resolve_checkpoint(args.checkpoint or None, args.resume)
    except ValueError:
        if args.resume and not args.checkpoint:
            raise SystemExit("--resume requires --checkpoint DIR") from None
        raise SystemExit(
            f"checkpoint {args.checkpoint} already exists; "
            "pass --resume to continue that run"
        ) from None


def _print_metrics_block(report) -> None:
    """Render RunReport.metrics (counters/gauges) as a final summary table."""
    from .io import format_table

    metrics = report.metrics or {}
    rows = []
    for kind in ("counters", "gauges"):
        for row in metrics.get(kind, ()):
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            rows.append([row["name"], labels, row["value"]])
    for row in metrics.get("histograms", ()):
        if row["count"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            rows.append([f"{row['name']} (mean)", labels, row["mean"]])
    if rows:
        print(format_table(["metric", "labels", "value"], rows, float_format="{:.6g}"))


def _stack_for(model: str):
    from .tissue import adult_head, neonatal_head, white_matter

    return {"white_matter": white_matter, "adult_head": adult_head,
            "neonatal_head": neonatal_head}[model]()


def _cmd_run(args) -> int:
    from .api import RunRequest, run
    from .io import format_table, save_tally

    checkpoint = _checkpoint_from_args(args)
    request = RunRequest(
        model=args.model,
        n_photons=args.photons,
        seed=args.seed,
        kernel=args.kernel,
        task_size=args.task_size,
        workers=args.workers,
        backend=args.backend,
        checkpoint=checkpoint,
        resume=args.resume,
        task_deadline=args.task_deadline,
        compress=args.compress,
        retain_task_tallies=args.retain_task_tallies,
        span_size=args.span_size,
        sub_batch=args.sub_batch,
        detector_spacing=args.detector_spacing,
        gate=tuple(args.gate) if args.gate else None,
        boundary_mode=args.boundary_mode,
        metrics_path=args.metrics,
        progress=args.progress,
        task_range=tuple(args.task_range) if args.task_range else None,
        capture_frontier=args.capture_frontier or bool(args.extend_from),
        capture_paths=args.capture_paths,
    )
    if args.extend_from:
        request = _extend_from(request, args.extend_from)
    report = run(request)
    tally = report.tally

    if args.workers > 1 or args.checkpoint:
        print(f"# distributed over {args.workers} workers, "
              f"{report.n_tasks} tasks, wall {report.wall_seconds:.1f}s, "
              f"{report.retries} retries, "
              f"{report.speculative_duplicates} speculative duplicates")
        if checkpoint is not None:
            print(f"# checkpoint: {checkpoint.directory} "
                  f"({len(checkpoint.completed_indices())} tasks recorded)")

    rows = [[k, v] for k, v in tally.summary().items()]
    print(format_table(["quantity", "value"], rows, float_format="{:.6g}"))
    if report.metrics:
        _print_metrics_block(report)
    if args.metrics:
        print(f"# telemetry events written to {args.metrics}")
    if args.save:
        frontier = report.frontier
        path = save_tally(
            args.save, tally, provenance=request.provenance(), frontier=frontier
        )
        print(f"# tally saved to {path}")
        if frontier is not None and len(frontier):
            print(f"# frontier: {len(frontier)} span(s) covering "
                  f"{frontier.n_covered} task(s) — archive is budget-extendable")
        if tally.paths is not None:
            print(f"# paths: {tally.paths.n_rows} detected-photon record(s) — "
                  "archive can seed 'repro perturb sweep'")
    return 0


def _extend_from(request, archive: str):
    """Prime ``request`` with the frontier saved in a same-physics archive."""
    from dataclasses import replace

    from .io import archive_summary, load_frontier
    from .service import physics_fingerprint

    try:
        summary = archive_summary(archive)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--extend-from {archive}: {exc}") from None
    provenance = summary["provenance"] or {}
    archived_physics = provenance.get("physics_fingerprint")
    expected = physics_fingerprint(request)
    if archived_physics != expected:
        raise SystemExit(
            f"--extend-from {archive}: archive physics fingerprint "
            f"{archived_physics!r} does not match this request ({expected!r}); "
            "an extension must share config, seed, kernel and task size"
        )
    frontier = load_frontier(archive)
    if frontier is None or frontier.prefix_tasks == 0:
        raise SystemExit(
            f"--extend-from {archive}: archive carries no prefix frontier "
            "(re-run the base with --capture-frontier)"
        )
    covered = frontier.prefix_tasks * request.resolved_task_size()
    if covered >= request.n_photons:
        raise SystemExit(
            f"--extend-from {archive}: archive already covers "
            f"{covered:,} photons; request a larger --photons budget"
        )
    print(f"# extending {archive}: {covered:,} photons cached, "
          f"{request.n_photons - covered:,} to simulate")
    return replace(request, frontier=frontier)


def _cmd_banana(args) -> int:
    from .analysis import ascii_heatmap, banana_metrics, save_pgm, xz_slice
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import DiscDetector, GridSpec
    from .sources import PencilBeam
    from .tissue import white_matter

    rho = args.spacing
    spec = GridSpec.banana_box(args.granularity, rho)
    config = SimulationConfig(
        stack=white_matter(),
        source=PencilBeam(),
        detector=DiscDetector(rho, 0.0, radius=0.75),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(path_grid=spec),
    )
    tally = Simulation(config).run(args.photons, seed=args.seed)
    print(f"# detected {tally.detected_count} of {tally.n_launched} photons")
    slab = xz_slice(tally.path_grid, spec)
    print(ascii_heatmap(slab))
    metrics = banana_metrics(tally.path_grid, spec, detector_x=rho)
    print(f"# banana: depth(source)={metrics.depth_at_source:.2f}mm "
          f"depth(mid)={metrics.depth_at_midpoint:.2f}mm "
          f"depth(detector)={metrics.depth_at_detector:.2f}mm "
          f"is_banana={metrics.is_banana}")
    if args.pgm:
        print(f"# wrote {save_pgm(args.pgm, slab)}")
    return 0


def _cmd_head(args) -> int:
    from .analysis import layer_report
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import AnnularDetector
    from .io import format_table
    from .sources import PencilBeam
    from .tissue import adult_head, neonatal_head

    stack = neonatal_head() if args.neonatal else adult_head()
    rho = args.spacing
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        detector=AnnularDetector(rho - 2.0, rho + 2.0),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(penetration_bins=(stack.layer_top(len(stack) - 1) + 20.0, 400)),
    )
    tally = Simulation(config).run(args.photons, seed=args.seed)
    rows = [
        [r.name, r.z_top, r.z_bottom, r.absorbed_fraction, r.reached_fraction, r.stopped_fraction]
        for r in layer_report(tally, stack)
    ]
    print(format_table(
        ["layer", "z_top(mm)", "z_bottom(mm)", "absorbed", "reached", "stopped"], rows
    ))
    print(f"# detected {tally.detected_count} photons at {rho} mm spacing; "
          f"Rd={tally.diffuse_reflectance:.4f}")
    return 0


def _cmd_speedup(args) -> int:
    from .cluster import speedup_curve
    from .io import format_table

    ks = sorted({1, *range(5, args.max_k + 1, 5), args.max_k})
    points = speedup_curve(ks, args.photons, args.task_size)
    rows = [[p.k, p.pk_seconds, p.speedup, p.efficiency] for p in points]
    print(format_table(["k", "Pk (s)", "speedup", "efficiency"], rows))
    return 0


def _cmd_table2(args) -> int:
    from .cluster import (
        Dedicated,
        TABLE2_CLASSES,
        UniformAvailability,
        simulate_run,
        table2_cluster,
        total_mflops,
    )
    from .io import format_table

    rows = [
        [c.count, f"{c.mflops_min:g}-{c.mflops_max:g}", c.ram_mb, c.os, c.processor]
        for c in TABLE2_CLASSES
    ]
    print(format_table(["#", "Mflop/s", "RAM (MB)", "O/S", "Processor"], rows))
    cluster = table2_cluster(np.random.default_rng(args.seed))
    availability = Dedicated() if args.dedicated else UniformAvailability()
    report = simulate_run(
        cluster, args.photons, args.task_size, availability=availability, seed=args.seed
    )
    print(f"# {len(cluster)} machines, {total_mflops(cluster):.0f} Mflop/s total")
    print(f"# {args.photons:.2g} photons -> makespan {report.makespan_seconds/3600:.2f} h, "
          f"utilisation {report.mean_utilisation:.3f}")
    return 0


def _cmd_serve(args) -> int:
    from .api import RunRequest, run
    from .core import SimulationConfig
    from .io import format_table
    from .sources import PencilBeam

    checkpoint = _checkpoint_from_args(args)

    def announce(server) -> None:
        print(f"# DataManager listening on {args.host}:{server.port} "
              f"({args.photons:,} photons in {args.task_size:,}-photon tasks)")
        print(f"# start workers with: tissue-mc client --port {server.port}")

    request = RunRequest(
        config=SimulationConfig(stack=_stack_for(args.model), source=PencilBeam()),
        n_photons=args.photons,
        seed=args.seed,
        task_size=args.task_size,
        mode="serve",
        host=args.host,
        port=args.port,
        serve_timeout=args.timeout,
        heartbeat_timeout=args.heartbeat_timeout or None,
        checkpoint=checkpoint,
        resume=args.resume,
        task_deadline=args.task_deadline,
        compress=args.compress,
        retain_task_tallies=args.retain_task_tallies,
        span_size=args.span_size,
        sub_batch=args.sub_batch,
        metrics_path=args.metrics,
        progress=args.progress,
        on_server_start=announce,
    )
    report = run(request)
    print(f"# complete: {report.n_tasks} tasks in {report.wall_seconds:.1f}s, "
          f"{report.retries} retries, "
          f"{report.speculative_duplicates} speculative duplicates")
    rows = [[k, v] for k, v in report.tally.summary().items()]
    print(format_table(["quantity", "value"], rows, float_format="{:.6g}"))
    if report.metrics:
        _print_metrics_block(report)
    if args.metrics:
        print(f"# telemetry events written to {args.metrics}")
    return 0


def _cmd_serve_http(args) -> int:
    import signal
    import threading

    from .observe import Telemetry
    from .service import AdmissionController, JobManager, ResultStore, ServiceServer

    telemetry = Telemetry.to_jsonl(args.metrics) if args.metrics else Telemetry()
    store = ResultStore(
        args.store,
        max_bytes=int(args.store_max_mb * 2**20),
        telemetry=telemetry,
    )
    manager = JobManager(
        store,
        max_workers=args.job_workers,
        telemetry=telemetry,
        journal=args.journal,
        max_attempts=args.job_attempts,
        job_timeout=args.job_timeout,
    )
    admission = AdmissionController(
        max_queue=args.max_queue or None,
        rate_photons_per_s=args.rate_limit,
        max_inflight_per_client=args.max_inflight,
        telemetry=telemetry,
    )
    server = ServiceServer(
        manager,
        host=args.host,
        port=args.port,
        admission=admission,
        drain_timeout=args.drain_timeout,
    )
    # Handlers go in *before* the listening banner: anything supervising
    # this process (systemd, CI, the chaos tests) may signal the instant
    # the URL appears, and a SIGTERM in that window must drain, not kill.
    stop = threading.Event()
    for signum in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
        if signum is not None:
            signal.signal(signum, lambda *_: stop.set())

    print(f"# simulation service listening on {server.url}", flush=True)
    print(f"# result store: {store.root} "
          f"({len(store)} cached, {store.total_bytes() / 2**20:.1f} MB, "
          f"bound {args.store_max_mb:g} MB)")
    if args.journal:
        recovered = sum(job.recovered for job in manager.jobs())
        print(f"# journal: {args.journal} ({recovered} job(s) replayed)")
    print(f"# submit:  curl -X POST {server.url}/v2/runs "
          "-d '{\"model\": \"adult_head\", \"n_photons\": 100000}'")
    print(f"# metrics: curl {server.url}/v2/metrics", flush=True)
    drained = True
    try:
        server.start()
        stop.wait(args.timeout)  # timeout=None waits for a signal forever
    finally:
        print(f"# draining (up to {args.drain_timeout:g}s) ...", flush=True)
        drained = server.drain(args.drain_timeout)
        if drained:
            print("# drained cleanly, shutting down", flush=True)
        else:
            print("# drain timed out; unfinished jobs stay journaled "
                  "for the next start", flush=True)
        telemetry.finish()
    return 0


def _cmd_client(args) -> int:
    from .distributed import run_network_client

    try:
        completed = run_network_client(
            args.host, args.port, worker_name=args.name, max_tasks=args.max_tasks,
            heartbeat_interval=args.heartbeat_interval or None,
        )
    except OSError as exc:
        # The server vanished (or refused us) — a non-dedicated client
        # reports it and exits; its tasks are reassigned server-side.
        print(f"# lost the server at {args.host}:{args.port}: {exc}")
        return 1
    print(f"# completed {completed} tasks")
    return 0


def _cmd_fit(args) -> int:
    from .core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
    from .detect import radial_reflectance
    from .inverse import fit_optical_properties
    from .io import format_table
    from .sources import PencilBeam
    from .tissue import LayerStack, OpticalProperties

    truth = OpticalProperties.from_reduced(
        mu_a=args.mu_a, mu_s_reduced=args.mu_s_reduced, g=0.9, n=1.0
    )
    config = SimulationConfig(
        stack=LayerStack.homogeneous(truth),
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=1e-3, boost=10),
        records=RecordConfig(reflectance_rho_bins=(12.0, 24)),
    )
    print(f"# simulating R(rho) of the 'unknown' medium with {args.photons:,} photons")
    tally = Simulation(config).run(args.photons, seed=args.seed)
    rho, r_mc = radial_reflectance(tally)
    window = (rho >= 1.5) & (r_mc > 0)
    fit = fit_optical_properties(rho[window], r_mc[window], n=1.0, g=0.9)
    print(format_table(
        ["quantity", "truth", "recovered", "error"],
        [
            ["mu_a (mm^-1)", truth.mu_a, fit.mu_a,
             f"{abs(fit.mu_a / truth.mu_a - 1):.1%}"],
            ["mu_s' (mm^-1)", truth.mu_s_reduced, fit.mu_s_reduced,
             f"{abs(fit.mu_s_reduced / truth.mu_s_reduced - 1):.1%}"],
        ],
        float_format="{:.4f}",
    ))
    return 0


def _cmd_perturb(args) -> int:
    """Derive perturbed tallies from one captured parent archive."""
    import json as _json
    from pathlib import Path

    from .io import format_table, load_paths, load_tally, save_tally
    from .perturb import PerturbationDelta, PerturbationError, derive_tally

    try:
        parent = load_tally(args.archive)
        parent.paths = load_paths(args.archive)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"perturb sweep {args.archive}: {exc}") from None
    if parent.paths is None:
        raise SystemExit(
            f"perturb sweep {args.archive}: archive carries no path records; "
            "re-run the parent with 'run --capture-paths --save'"
        )
    provenance = parent.provenance or {}
    coefficients = provenance.get("coefficients") or {}
    parent_mu_a = coefficients.get("mu_a")
    n_layers = parent.paths.n_layers
    if not 0 <= args.layer < n_layers:
        raise SystemExit(
            f"--layer {args.layer} out of range for the archive's "
            f"{n_layers} layer(s)"
        )
    if parent_mu_a is None:
        raise SystemExit(
            f"perturb sweep {args.archive}: archive provenance carries no "
            "perturbable coefficients (pre-perturbation archive?); re-save "
            "the parent with a current build"
        )
    base_mu_a = float(parent_mu_a[args.layer])
    save_dir = None
    if args.save_dir is not None:
        save_dir = Path(args.save_dir)
        save_dir.mkdir(parents=True, exist_ok=True)

    mode = "exact" if args.alpha_s == 1.0 else "first-order"
    print(f"# deriving {len(args.mu_a)} perturbed point(s) from {args.archive} "
          f"(layer {args.layer}, parent mu_a={base_mu_a:g}/mm, {mode}) — "
          "0 photons simulated")
    rows, points = [], []
    for target in args.mu_a:
        d_mu_a = [0.0] * n_layers
        d_mu_a[args.layer] = float(target) - base_mu_a
        alpha_s = [1.0] * n_layers
        alpha_s[args.layer] = float(args.alpha_s)
        delta = PerturbationDelta(d_mu_a=tuple(d_mu_a), alpha_s=tuple(alpha_s))
        try:
            derived = derive_tally(parent, delta, mu_s=coefficients.get("mu_s"))
        except PerturbationError as exc:
            raise SystemExit(f"perturb sweep {args.archive}: {exc}") from None
        std = derived.derivation["derived_std"]
        rows.append([f"{target:g}", derived.detected_weight, std, mode])
        point = {
            "mu_a": float(target),
            "detected_weight": derived.detected_weight,
            "derived_std": std,
            "exact": delta.is_exact,
        }
        if save_dir is not None:
            out_path = save_dir / f"mua{args.layer}_{target:g}.npz"
            save_tally(
                out_path,
                derived,
                provenance={
                    "derived_from": {
                        "parent_fingerprint": provenance.get("fingerprint"),
                        "perturbation": delta.as_dict(),
                    }
                },
            )
            point["archive"] = str(out_path)
        points.append(point)
    print(format_table(
        ["mu_a (1/mm)", "detected weight", "1 sigma", "reweighting"],
        rows, float_format="{:.6g}",
    ))
    if save_dir is not None:
        print(f"# {len(points)} derived archive(s) written to {save_dir}")
    if args.json_path:
        payload = {
            "archive": args.archive,
            "layer": args.layer,
            "parent_mu_a": base_mu_a,
            "alpha_s": float(args.alpha_s),
            "n_records": parent.paths.n_rows,
            "points": points,
        }
        Path(args.json_path).write_text(_json.dumps(payload, indent=2))
        print(f"# sweep table written to {args.json_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "banana": _cmd_banana,
        "head": _cmd_head,
        "speedup": _cmd_speedup,
        "table2": _cmd_table2,
        "serve": _cmd_serve,
        "serve-http": _cmd_serve_http,
        "client": _cmd_client,
        "fit": _cmd_fit,
        "perturb": _cmd_perturb,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
