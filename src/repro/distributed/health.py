"""Per-worker health tracking for the distributed platform.

The paper's clients were non-dedicated PCs of wildly varying quality: some
crash once and recover, some are flaky forever, some are simply slow.  The
scheduler needs to tell these apart — a task should be retried on a
*different* machine when its worker has failed repeatedly.  ``WorkerHealth``
accumulates per-worker outcomes (successes with their latency, failures of
any kind: crash, hang, corrupt result) and blacklists workers that fail too
many times in a row.  A snapshot of the tracker feeds the
:class:`~repro.distributed.datamanager.RunReport` so operators can see which
machines dragged a run down.

Thread-safe: the ``NetworkServer`` records outcomes from many handler
threads concurrently.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

__all__ = ["WorkerStats", "WorkerHealth"]


@dataclass
class WorkerStats:
    """Accumulated outcomes of one worker.

    Attributes
    ----------
    worker_id:
        The worker's self-reported identity.
    tasks_completed:
        Results from this worker that passed validation and were merged.
    failures:
        Total failed attempts attributed to this worker (crashes, hangs,
        rejected results).
    consecutive_failures:
        Failures since the last success — the blacklist criterion.  A
        success resets it, so a long-lived worker with occasional faults is
        never blacklisted.
    busy_seconds:
        Total task compute time reported by this worker's merged results.
    blacklisted:
        Whether the scheduler has stopped assigning work to this worker.
    """

    worker_id: str
    tasks_completed: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    busy_seconds: float = 0.0
    blacklisted: bool = False

    @property
    def mean_latency(self) -> float:
        """Mean seconds per completed task (NaN before the first success)."""
        if self.tasks_completed == 0:
            return math.nan
        return self.busy_seconds / self.tasks_completed

    def as_dict(self) -> dict[str, float | bool | str]:
        """JSON-serialisable summary (used by report persistence)."""
        return {
            "worker_id": self.worker_id,
            "tasks_completed": self.tasks_completed,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "busy_seconds": self.busy_seconds,
            "blacklisted": self.blacklisted,
            "mean_latency": self.mean_latency,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkerStats":
        return cls(
            worker_id=d["worker_id"],
            tasks_completed=int(d["tasks_completed"]),
            failures=int(d["failures"]),
            consecutive_failures=int(d["consecutive_failures"]),
            busy_seconds=float(d["busy_seconds"]),
            blacklisted=bool(d["blacklisted"]),
        )


class WorkerHealth:
    """Thread-safe per-worker failure/latency tracker with blacklisting.

    Parameters
    ----------
    blacklist_after:
        Consecutive failures after which a worker is blacklisted (the
        scheduler stops handing it tasks).  ``None`` disables blacklisting.
    """

    def __init__(self, blacklist_after: int | None = 3) -> None:
        if blacklist_after is not None and blacklist_after <= 0:
            raise ValueError(
                f"blacklist_after must be > 0 or None, got {blacklist_after}"
            )
        self.blacklist_after = blacklist_after
        self._lock = threading.Lock()
        self._stats: dict[str, WorkerStats] = {}

    def _get(self, worker_id: str) -> WorkerStats:
        stats = self._stats.get(worker_id)
        if stats is None:
            stats = self._stats[worker_id] = WorkerStats(worker_id=worker_id)
        return stats

    def record_success(self, worker_id: str, elapsed_seconds: float) -> None:
        """Record a merged result from ``worker_id``."""
        with self._lock:
            stats = self._get(worker_id)
            stats.tasks_completed += 1
            stats.busy_seconds += elapsed_seconds
            stats.consecutive_failures = 0

    def record_failure(self, worker_id: str) -> bool:
        """Record a failed attempt; returns True if the worker is now blacklisted."""
        with self._lock:
            stats = self._get(worker_id)
            stats.failures += 1
            stats.consecutive_failures += 1
            if (
                self.blacklist_after is not None
                and stats.consecutive_failures >= self.blacklist_after
            ):
                stats.blacklisted = True
            return stats.blacklisted

    def is_blacklisted(self, worker_id: str) -> bool:
        with self._lock:
            stats = self._stats.get(worker_id)
            return stats.blacklisted if stats is not None else False

    def snapshot(self) -> dict[str, WorkerStats]:
        """A consistent copy of every worker's stats, keyed by worker id."""
        with self._lock:
            return {
                wid: WorkerStats(
                    worker_id=s.worker_id,
                    tasks_completed=s.tasks_completed,
                    failures=s.failures,
                    consecutive_failures=s.consecutive_failures,
                    busy_seconds=s.busy_seconds,
                    blacklisted=s.blacklisted,
                )
                for wid, s in self._stats.items()
            }
