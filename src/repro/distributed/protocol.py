"""Task protocol between the DataManager (server) and Algorithm (clients).

The paper's platform "consists of two classes.  The DataManager, which
resides on the server, assigns simulations to client PCs and processes the
returned results.  The Algorithm ... takes in parameters from the
DataManager, performs Monte Carlo simulations and returns the results."

``TaskSpec`` is the parameter bundle shipped to a client; ``TaskResult`` is
what comes back.  Both are plain picklable dataclasses so any transport
(in-process call, multiprocessing pipe, socket) can carry them.  The task's
RNG stream is identified by ``(seed, task_index)`` — never by worker
identity — which is what makes the distributed run reproducible and
schedule-independent (DESIGN.md §4).
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass

import numpy as np

from ..core.config import SimulationConfig
from ..core.simulation import KernelName
from ..core.tally import Tally

__all__ = [
    "TaskSpec",
    "TaskResult",
    "ResultValidationError",
    "validate_result",
    "encode",
    "decode",
]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: trace ``n_photons`` photons on stream ``task_index``.

    Attributes
    ----------
    task_index:
        Global index of this task within the experiment; selects the RNG
        substream.
    n_photons:
        Photons this task must trace.
    seed:
        Experiment seed shared by all tasks.
    kernel:
        Which kernel the client should run ("vector" or "scalar").
    """

    task_index: int
    n_photons: int
    seed: int
    kernel: KernelName = "vector"

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError(f"task_index must be >= 0, got {self.task_index}")
        if self.n_photons <= 0:
            raise ValueError(f"n_photons must be > 0, got {self.n_photons}")


@dataclass
class TaskResult:
    """A completed task: the tally plus execution metadata.

    ``worker_id`` is informational only (it feeds the utilisation report);
    no physics depends on it.  ``tally`` may be ``None`` after
    :meth:`release_tally` — runs with ``retain_task_tallies=False`` detach
    each tally once it has been folded into the incremental reduction,
    keeping only the launched-photon count in ``n_photons``.
    """

    task_index: int
    tally: Tally | None
    worker_id: str
    elapsed_seconds: float
    attempt: int = 1
    n_photons: int | None = None

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError(f"elapsed_seconds must be >= 0, got {self.elapsed_seconds}")
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")

    @property
    def photons(self) -> int:
        """Photons this task launched, available even after release_tally."""
        if self.tally is not None:
            return self.tally.n_launched
        return self.n_photons if self.n_photons is not None else 0

    def release_tally(self) -> None:
        """Drop the tally reference, keeping the photon count as metadata."""
        if self.tally is not None:
            self.n_photons = self.tally.n_launched
            self.tally = None


class ResultValidationError(ValueError):
    """A returned :class:`TaskResult` failed sanity validation at merge time.

    Raised by :func:`validate_result` when a worker returns a result that
    cannot be physical: wrong task identity, photon-count mismatch, NaN or
    infinite weights, or negative extensive quantities.  The scheduler treats
    a validation failure exactly like a worker crash — the result is
    discarded and the task retried — so a corrupted client cannot poison the
    merged tally.
    """


def _check_array(name: str, array: np.ndarray, task_index: int) -> None:
    if not np.all(np.isfinite(array)):
        raise ResultValidationError(
            f"task {task_index}: non-finite values in {name}"
        )
    if np.any(array < 0.0):
        raise ResultValidationError(f"task {task_index}: negative values in {name}")


def validate_result(result: TaskResult, task: TaskSpec) -> None:
    """Reject physically impossible task results before they are merged.

    Checks, in order: the result answers *this* task; the tally launched
    exactly the requested number of photons; every extensive weight is
    finite and non-negative (``roulette_net_weight`` may legitimately be
    negative but must be finite); all recorded arrays are finite and
    non-negative.  Raises :class:`ResultValidationError` on the first
    violation, otherwise returns ``None``.
    """
    idx = task.task_index
    if result.task_index != idx:
        raise ResultValidationError(
            f"result for task {result.task_index} returned against task {idx}"
        )
    t = result.tally
    if t.n_launched != task.n_photons:
        raise ResultValidationError(
            f"task {idx}: photon-count mismatch "
            f"(launched {t.n_launched}, requested {task.n_photons})"
        )
    if t.detected_count < 0:
        raise ResultValidationError(
            f"task {idx}: negative detected_count {t.detected_count}"
        )
    for name in (
        "specular_weight",
        "diffuse_reflectance_weight",
        "transmittance_weight",
        "lost_weight",
        "detected_weight",
    ):
        value = getattr(t, name)
        if not math.isfinite(value) or value < 0.0:
            raise ResultValidationError(f"task {idx}: invalid {name} {value!r}")
    if not math.isfinite(t.roulette_net_weight):
        raise ResultValidationError(
            f"task {idx}: non-finite roulette_net_weight {t.roulette_net_weight!r}"
        )
    _check_array("absorbed_by_layer", t.absorbed_by_layer, idx)
    if t.absorption_grid is not None:
        _check_array("absorption_grid", t.absorption_grid, idx)
    if t.path_grid is not None:
        _check_array("path_grid", t.path_grid, idx)
    for name in ("pathlength_hist", "reflectance_rho_hist", "penetration_hist"):
        hist = getattr(t, name)
        if hist is not None:
            _check_array(f"{name}.counts", hist.counts, idx)


def encode(obj: TaskSpec | TaskResult | SimulationConfig) -> bytes:
    """Serialise a protocol object for a byte transport."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes):
    """Inverse of :func:`encode`.

    Only use on payloads produced by this process tree; pickle is the
    transport of the trusted in-cluster protocol (as Java serialisation was
    in the paper's platform), not a public wire format.
    """
    return pickle.loads(payload)
