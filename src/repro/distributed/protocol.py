"""Task protocol between the DataManager (server) and Algorithm (clients).

The paper's platform "consists of two classes.  The DataManager, which
resides on the server, assigns simulations to client PCs and processes the
returned results.  The Algorithm ... takes in parameters from the
DataManager, performs Monte Carlo simulations and returns the results."

``TaskSpec`` is the parameter bundle shipped to a client; ``TaskResult`` is
what comes back.  Both are plain picklable dataclasses so any transport
(in-process call, multiprocessing pipe, socket) can carry them.  The task's
RNG stream is identified by ``(seed, task_index)`` — never by worker
identity — which is what makes the distributed run reproducible and
schedule-independent (DESIGN.md §4).
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass

import numpy as np

from ..core.config import SimulationConfig
from ..core.reduce import span_level
from ..core.simulation import KernelName
from ..core.tally import Tally

__all__ = [
    "TaskSpec",
    "SpanSpec",
    "TaskResult",
    "ResultValidationError",
    "validate_result",
    "freeze_result",
    "thaw_result",
    "make_units",
    "encode",
    "decode",
]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: trace ``n_photons`` photons on stream ``task_index``.

    Attributes
    ----------
    task_index:
        Global index of this task within the experiment; selects the RNG
        substream.
    n_photons:
        Photons this task must trace.
    seed:
        Experiment seed shared by all tasks.
    kernel:
        Which kernel the client should run ("vector" or "scalar").
    """

    task_index: int
    n_photons: int
    seed: int
    kernel: KernelName = "vector"
    #: Vectorized-kernel sub-batch size (``None`` = the kernel's default).
    #: An execution-only knob: it changes traversal batching, never the
    #: physics the task describes.
    sub_batch: int | None = None
    #: Capture per-detected-photon path records (``Tally.paths``) on the
    #: worker.  Execution-only: capture adds no RNG draws, so every other
    #: tally field is bit-identical with or without it.
    capture_paths: bool = False

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError(f"task_index must be >= 0, got {self.task_index}")
        if self.n_photons <= 0:
            raise ValueError(f"n_photons must be > 0, got {self.n_photons}")
        if self.sub_batch is not None and self.sub_batch <= 0:
            raise ValueError(f"sub_batch must be > 0 or None, got {self.sub_batch}")

    @property
    def span(self) -> None:
        """A plain task covers no span (symmetry with :class:`SpanSpec`)."""
        return None


@dataclass(frozen=True)
class SpanSpec:
    """A tree-aligned contiguous run of tasks dispatched as one unit.

    The scheduling unit of hierarchical reduction: the worker executes
    every contained task, folds the tallies bottom-up into the canonical
    subtree partial (:class:`~repro.core.reduce.SpanFolder`) and returns a
    single :class:`TaskResult` carrying the partial — one payload and one
    coordinator-side merge per span instead of per task.

    ``index`` is the span's position in the unit list (the scheduler keys
    retries, speculation and checkpoints by it, via the ``task_index``
    property every unit exposes); ``n_total_tasks`` is the full run's task
    count, needed to validate tree alignment of the tail span.
    """

    index: int
    n_total_tasks: int
    tasks: tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if not self.tasks:
            raise ValueError("a span must contain at least one task")
        indices = [t.task_index for t in self.tasks]
        if indices != list(range(indices[0], indices[0] + len(indices))):
            raise ValueError(f"span tasks must be contiguous, got indices {indices}")
        # Raises ValueError when the range is not a canonical subtree.
        span_level(self.start, self.stop, self.n_total_tasks)

    @property
    def task_index(self) -> int:
        """Scheduler key of this unit (the span index, *not* a task index)."""
        return self.index

    @property
    def start(self) -> int:
        return self.tasks[0].task_index

    @property
    def stop(self) -> int:
        return self.tasks[-1].task_index + 1

    @property
    def span(self) -> tuple[int, int]:
        return (self.start, self.stop)

    @property
    def n_photons(self) -> int:
        """Total photon budget of the span (what its partial must launch)."""
        return sum(t.n_photons for t in self.tasks)


def make_units(
    tasks: list[TaskSpec], span_size: int | None
) -> list[TaskSpec] | list[SpanSpec]:
    """Group a task list into dispatch units.

    ``span_size=None`` keeps per-task dispatch (the pre-span wire format);
    otherwise tasks are grouped into tree-aligned spans of at most
    ``span_size`` tasks (rounded down to a power of two, see
    :func:`~repro.core.reduce.aligned_spans`) and each span becomes one
    :class:`SpanSpec` unit.
    """
    if span_size is None:
        return tasks
    from ..core.reduce import aligned_spans

    return [
        SpanSpec(index=i, n_total_tasks=len(tasks), tasks=tuple(tasks[s:e]))
        for i, (s, e) in enumerate(aligned_spans(len(tasks), span_size))
    ]


@dataclass
class TaskResult:
    """A completed task: the tally plus execution metadata.

    ``worker_id`` is informational only (it feeds the utilisation report);
    no physics depends on it.  ``tally`` may be ``None`` after
    :meth:`release_tally` — runs with ``retain_task_tallies=False`` detach
    each tally once it has been folded into the incremental reduction,
    keeping only the launched-photon count in ``n_photons``.
    """

    task_index: int
    tally: Tally | None
    worker_id: str
    elapsed_seconds: float
    attempt: int = 1
    n_photons: int | None = None
    #: ``(start, stop)`` task range this result covers when it answers a
    #: :class:`SpanSpec` (its tally is then the folded subtree partial and
    #: ``task_index`` is the span index); ``None`` for a plain task.
    span: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError(f"elapsed_seconds must be >= 0, got {self.elapsed_seconds}")
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")

    @property
    def photons(self) -> int:
        """Photons this task launched, available even after release_tally."""
        if self.tally is not None:
            return self.tally.n_launched
        return self.n_photons if self.n_photons is not None else 0

    def release_tally(self) -> None:
        """Drop the tally reference, keeping the photon count as metadata."""
        if self.tally is not None:
            self.n_photons = self.tally.n_launched
            self.tally = None


class ResultValidationError(ValueError):
    """A returned :class:`TaskResult` failed sanity validation at merge time.

    Raised by :func:`validate_result` when a worker returns a result that
    cannot be physical: wrong task identity, photon-count mismatch, NaN or
    infinite weights, or negative extensive quantities.  The scheduler treats
    a validation failure exactly like a worker crash — the result is
    discarded and the task retried — so a corrupted client cannot poison the
    merged tally.
    """


def _check_array(name: str, array: np.ndarray, task_index: int) -> None:
    if not np.all(np.isfinite(array)):
        raise ResultValidationError(
            f"task {task_index}: non-finite values in {name}"
        )
    if np.any(array < 0.0):
        raise ResultValidationError(f"task {task_index}: negative values in {name}")


def validate_result(result: TaskResult, task: TaskSpec | SpanSpec) -> None:
    """Reject physically impossible task results before they are merged.

    Checks, in order: the result answers *this* unit (index and — for span
    units — the covered task range); the tally launched exactly the
    requested number of photons (a span's folded partial must launch the
    span's whole budget); every extensive weight is finite and non-negative
    (``roulette_net_weight`` may legitimately be negative but must be
    finite); all recorded arrays are finite and non-negative.  Raises
    :class:`ResultValidationError` on the first violation, otherwise
    returns ``None``.
    """
    idx = task.task_index
    if result.task_index != idx:
        raise ResultValidationError(
            f"result for task {result.task_index} returned against task {idx}"
        )
    if result.span != task.span:
        raise ResultValidationError(
            f"unit {idx}: result covers span {result.span}, expected {task.span}"
        )
    t = result.tally
    if t.n_launched != task.n_photons:
        raise ResultValidationError(
            f"task {idx}: photon-count mismatch "
            f"(launched {t.n_launched}, requested {task.n_photons})"
        )
    if t.detected_count < 0:
        raise ResultValidationError(
            f"task {idx}: negative detected_count {t.detected_count}"
        )
    for name in (
        "specular_weight",
        "diffuse_reflectance_weight",
        "transmittance_weight",
        "lost_weight",
        "detected_weight",
    ):
        value = getattr(t, name)
        if not math.isfinite(value) or value < 0.0:
            raise ResultValidationError(f"task {idx}: invalid {name} {value!r}")
    if not math.isfinite(t.roulette_net_weight):
        raise ResultValidationError(
            f"task {idx}: non-finite roulette_net_weight {t.roulette_net_weight!r}"
        )
    _check_array("absorbed_by_layer", t.absorbed_by_layer, idx)
    if t.absorption_grid is not None:
        _check_array("absorption_grid", t.absorption_grid, idx)
    if t.path_grid is not None:
        _check_array("path_grid", t.path_grid, idx)
    for name in ("pathlength_hist", "reflectance_rho_hist", "penetration_hist"):
        hist = getattr(t, name)
        if hist is not None:
            _check_array(f"{name}.counts", hist.counts, idx)
    wants_paths = (
        all(s.capture_paths for s in task.tasks)
        if isinstance(task, SpanSpec)
        else task.capture_paths
    )
    if wants_paths:
        if t.paths is None:
            raise ResultValidationError(
                f"task {idx}: capture_paths requested but no path records returned"
            )
        if not t.paths.is_sealed:
            raise ResultValidationError(f"task {idx}: path records not sealed")
        if t.paths.n_rows != t.detected_count:
            raise ResultValidationError(
                f"task {idx}: {t.paths.n_rows} path records for "
                f"{t.detected_count} detected photons"
            )
        for name in ("layer_paths", "weight", "opl", "max_depth"):
            _check_array(f"paths.{name}", t.paths.column(name), idx)


def freeze_result(result: TaskResult) -> TaskResult:
    """Replace the result's live tally with its zero-copy codec form, in place.

    Applied worker-side before a result crosses a byte transport (the TCP
    wire, a process-pool pipe): the receiving coordinator pays one
    ``np.frombuffer`` per array instead of a full pickle reconstruction.
    No-op when the tally is already encoded or released.  Returns the
    result for chaining.
    """
    # Lazy: repro.io.reports imports this package back (see checkpoint.py).
    from ..io.codec import EncodedTally, encode_tally

    if isinstance(result.tally, Tally):
        result.n_photons = result.tally.n_launched
        result.tally = EncodedTally(encode_tally(result.tally))
    return result


def thaw_result(result: TaskResult, telemetry=None) -> TaskResult:
    """Decode an encoded result tally back into zero-copy ndarray views.

    The inverse of :func:`freeze_result`, called once at the coordinator
    before validation/merge.  ``telemetry``, when given, receives the
    ``codec.bytes`` counter (payload bytes actually deserialised) and the
    ``codec.bytes_saved`` counter (pickle baseline minus payload — what the
    wire *didn't* carry; see
    :func:`repro.io.codec.pickled_baseline_bytes`).  No-op for a plain or
    released tally.  Returns the result for chaining.
    """
    from ..io.codec import EncodedTally, pickled_baseline_bytes

    if isinstance(result.tally, EncodedTally):
        payload_bytes = result.tally.nbytes
        result.tally = result.tally.decode()
        if telemetry is not None:
            telemetry.count("codec.bytes", payload_bytes)
            baseline = pickled_baseline_bytes(result.tally)
            telemetry.count("codec.bytes_saved", max(0, baseline - payload_bytes))
    return result


def encode(obj: TaskSpec | TaskResult | SimulationConfig) -> bytes:
    """Serialise a protocol object for a byte transport."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes):
    """Inverse of :func:`encode`.

    Only use on payloads produced by this process tree; pickle is the
    transport of the trusted in-cluster protocol (as Java serialisation was
    in the paper's platform), not a public wire format.
    """
    return pickle.loads(payload)
