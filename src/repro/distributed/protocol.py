"""Task protocol between the DataManager (server) and Algorithm (clients).

The paper's platform "consists of two classes.  The DataManager, which
resides on the server, assigns simulations to client PCs and processes the
returned results.  The Algorithm ... takes in parameters from the
DataManager, performs Monte Carlo simulations and returns the results."

``TaskSpec`` is the parameter bundle shipped to a client; ``TaskResult`` is
what comes back.  Both are plain picklable dataclasses so any transport
(in-process call, multiprocessing pipe, socket) can carry them.  The task's
RNG stream is identified by ``(seed, task_index)`` — never by worker
identity — which is what makes the distributed run reproducible and
schedule-independent (DESIGN.md §4).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..core.config import SimulationConfig
from ..core.simulation import KernelName
from ..core.tally import Tally

__all__ = ["TaskSpec", "TaskResult", "encode", "decode"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: trace ``n_photons`` photons on stream ``task_index``.

    Attributes
    ----------
    task_index:
        Global index of this task within the experiment; selects the RNG
        substream.
    n_photons:
        Photons this task must trace.
    seed:
        Experiment seed shared by all tasks.
    kernel:
        Which kernel the client should run ("vector" or "scalar").
    """

    task_index: int
    n_photons: int
    seed: int
    kernel: KernelName = "vector"

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError(f"task_index must be >= 0, got {self.task_index}")
        if self.n_photons <= 0:
            raise ValueError(f"n_photons must be > 0, got {self.n_photons}")


@dataclass
class TaskResult:
    """A completed task: the tally plus execution metadata.

    ``worker_id`` is informational only (it feeds the utilisation report);
    no physics depends on it.
    """

    task_index: int
    tally: Tally
    worker_id: str
    elapsed_seconds: float
    attempt: int = 1

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError(f"elapsed_seconds must be >= 0, got {self.elapsed_seconds}")
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")


def encode(obj: TaskSpec | TaskResult | SimulationConfig) -> bytes:
    """Serialise a protocol object for a byte transport."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes):
    """Inverse of :func:`encode`.

    Only use on payloads produced by this process tree; pickle is the
    transport of the trusted in-cluster protocol (as Java serialisation was
    in the paper's platform), not a public wire format.
    """
    return pickle.loads(payload)
