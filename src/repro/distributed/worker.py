"""Client-side task execution — the paper's ``Algorithm`` class.

A worker receives a :class:`~repro.distributed.protocol.TaskSpec` and the
shared :class:`~repro.core.config.SimulationConfig`, materialises the task's
RNG stream locally from ``(seed, task_index)``, runs the Monte Carlo kernel
and returns a :class:`~repro.distributed.protocol.TaskResult`.
"""

from __future__ import annotations

import os
import threading
import time

from ..core.config import SimulationConfig
from ..core.rng import task_rng
from ..core.simulation import run_photons
from .protocol import TaskResult, TaskSpec

__all__ = ["execute_task", "worker_identity"]


def worker_identity() -> str:
    """A human-readable id of the executing worker (process + thread)."""
    return f"pid-{os.getpid()}/{threading.current_thread().name}"


def execute_task(
    config: SimulationConfig, task: TaskSpec, *, attempt: int = 1, telemetry=None
) -> TaskResult:
    """Run one task and return its result.

    This is the function every backend ultimately calls — in-process for
    the serial/thread backends, in a child process for multiprocessing.
    ``telemetry`` (an optional :class:`~repro.observe.Telemetry`) reaches
    the kernel for batch timing spans; it is only ever passed by in-process
    backends — a child process cannot share the server's sink.
    """
    rng = task_rng(task.seed, task.task_index)
    start = time.perf_counter()
    tally = run_photons(config, task.n_photons, rng, task.kernel, telemetry=telemetry)
    elapsed = time.perf_counter() - start
    return TaskResult(
        task_index=task.task_index,
        tally=tally,
        worker_id=worker_identity(),
        elapsed_seconds=elapsed,
        attempt=attempt,
    )
