"""Client-side task execution — the paper's ``Algorithm`` class.

A worker receives a :class:`~repro.distributed.protocol.TaskSpec` (or a
tree-aligned :class:`~repro.distributed.protocol.SpanSpec` of several), and
the shared :class:`~repro.core.config.SimulationConfig`, materialises each
task's RNG stream locally from ``(seed, task_index)``, runs the Monte Carlo
kernel and returns a :class:`~repro.distributed.protocol.TaskResult`.  For a
span, the per-task tallies are folded bottom-up into the canonical subtree
partial before returning — the coordinator receives one payload and performs
one merge where it used to perform ``len(span)``.
"""

from __future__ import annotations

import os
import threading
import time

from ..core.config import SimulationConfig
from ..core.reduce import SpanFolder
from ..core.rng import task_rng
from ..core.simulation import run_photons
from .protocol import SpanSpec, TaskResult, TaskSpec, freeze_result

__all__ = [
    "execute_task",
    "execute_span",
    "execute_unit",
    "execute_unit_ipc",
    "worker_identity",
]


def worker_identity() -> str:
    """A human-readable id of the executing worker (process + thread)."""
    return f"pid-{os.getpid()}/{threading.current_thread().name}"


def execute_task(
    config: SimulationConfig, task: TaskSpec, *, attempt: int = 1, telemetry=None
) -> TaskResult:
    """Run one task and return its result.

    This is the function every backend ultimately calls — in-process for
    the serial/thread backends, in a child process for multiprocessing.
    ``telemetry`` (an optional :class:`~repro.observe.Telemetry`) reaches
    the kernel for batch timing spans; it is only ever passed by in-process
    backends — a child process cannot share the server's sink.
    """
    rng = task_rng(task.seed, task.task_index)
    start = time.perf_counter()
    tally = run_photons(
        config, task.n_photons, rng, task.kernel,
        sub_batch=getattr(task, "sub_batch", None),
        telemetry=telemetry,
        capture_paths=getattr(task, "capture_paths", False),
    )
    if tally.paths is not None:
        # Seal under the task key: the merged record set is then ordered
        # by task index regardless of worker schedule — bit-identical to a
        # serial run with the same task_size.
        tally.paths.seal(task.task_index)
    elapsed = time.perf_counter() - start
    return TaskResult(
        task_index=task.task_index,
        tally=tally,
        worker_id=worker_identity(),
        elapsed_seconds=elapsed,
        attempt=attempt,
    )


def execute_span(
    config: SimulationConfig,
    span: SpanSpec,
    *,
    attempt: int = 1,
    runner=execute_task,
    telemetry=None,
) -> TaskResult:
    """Run every task of a span and fold the tallies into its subtree partial.

    ``runner`` executes each contained task (replaceable for fault
    injection, exactly like ``DataManager.task_runner``); the fold through
    :class:`~repro.core.reduce.SpanFolder` performs precisely the pairwise
    merges the coordinator's canonical tree would have, so re-injecting the
    partial with ``PairwiseReducer.add_span`` is bit-identical to shipping
    each leaf individually.  A failure in any contained task fails the
    whole span attempt — retries and speculation operate on spans.
    """
    start = time.perf_counter()
    folder = SpanFolder(span.n_total_tasks, span.start, span.stop)
    for task in span.tasks:
        if runner is execute_task:
            leaf = runner(config, task, attempt=attempt, telemetry=telemetry)
        else:
            leaf = runner(config, task, attempt=attempt)
        # The leaf tally was produced for this fold alone: let the folder
        # accumulate siblings into it in place.
        folder.add(task.task_index, leaf.tally, owned=True)
    elapsed = time.perf_counter() - start
    return TaskResult(
        task_index=span.index,
        tally=folder.partial(),
        worker_id=worker_identity(),
        elapsed_seconds=elapsed,
        attempt=attempt,
        span=span.span,
    )


def execute_unit(
    config: SimulationConfig,
    unit: TaskSpec | SpanSpec,
    *,
    attempt: int = 1,
    runner=execute_task,
    telemetry=None,
) -> TaskResult:
    """Execute one dispatch unit — a plain task or a span — uniformly."""
    if isinstance(unit, SpanSpec):
        return execute_span(
            config, unit, attempt=attempt, runner=runner, telemetry=telemetry
        )
    if runner is execute_task:
        return runner(config, unit, attempt=attempt, telemetry=telemetry)
    return runner(config, unit, attempt=attempt)


def execute_unit_ipc(
    config: SimulationConfig,
    unit: TaskSpec | SpanSpec,
    *,
    attempt: int = 1,
    runner=execute_task,
) -> TaskResult:
    """:func:`execute_unit`, returning the tally in zero-copy codec form.

    The entry point process-pool backends submit: the child encodes the
    tally into one contiguous buffer
    (:func:`~repro.distributed.protocol.freeze_result`) so the parent's
    round-trip deserialisation is ``np.frombuffer`` views instead of a full
    pickle reconstruction.  Telemetry is never forwarded — a child process
    cannot share the parent's sink.
    """
    return freeze_result(execute_unit(config, unit, attempt=attempt, runner=runner))
