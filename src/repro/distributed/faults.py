"""Fault injection for the distributed platform.

The paper's clients were *non-dedicated* PCs: they could disappear, slow
down or be reclaimed by their owners at any time, so the DataManager must
survive task failures.  ``FaultInjector`` wraps the worker entry point and
makes tasks fail deterministically (by task index) or stochastically (with
a seeded probability), letting the tests exercise the DataManager's retry
and reassignment logic without a flaky real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import SimulationConfig
from .protocol import TaskResult, TaskSpec
from .worker import execute_task

__all__ = ["WorkerCrash", "FaultInjector"]


class WorkerCrash(RuntimeError):
    """Raised by an injected fault, standing in for a vanished client PC."""


@dataclass
class FaultInjector:
    """Callable wrapper around :func:`~repro.distributed.worker.execute_task`.

    Parameters
    ----------
    fail_probability:
        Chance that any given execution attempt crashes.  Drawn from a
        dedicated seeded generator so tests are reproducible.
    fail_tasks_once:
        Task indices whose *first* attempt always crashes (retries then
        succeed) — the deterministic reassignment scenario.
    fail_tasks_always:
        Task indices that crash on every attempt — the permanently lost
        client scenario (the DataManager must eventually give up).
    seed:
        Seed of the fault stream (independent of the physics streams).
    """

    fail_probability: float = 0.0
    fail_tasks_once: frozenset[int] = frozenset()
    fail_tasks_always: frozenset[int] = frozenset()
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _seen: set[int] = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_probability < 1.0:
            raise ValueError(
                f"fail_probability must lie in [0, 1), got {self.fail_probability}"
            )
        self.fail_tasks_once = frozenset(self.fail_tasks_once)
        self.fail_tasks_always = frozenset(self.fail_tasks_always)
        self._rng = np.random.default_rng(self.seed)

    def __call__(
        self, config: SimulationConfig, task: TaskSpec, *, attempt: int = 1
    ) -> TaskResult:
        if task.task_index in self.fail_tasks_always:
            raise WorkerCrash(f"task {task.task_index} permanently failing (injected)")
        if task.task_index in self.fail_tasks_once and task.task_index not in self._seen:
            self._seen.add(task.task_index)
            raise WorkerCrash(f"task {task.task_index} first attempt failed (injected)")
        if self.fail_probability > 0.0 and self._rng.random() < self.fail_probability:
            raise WorkerCrash(
                f"task {task.task_index} attempt {attempt} crashed (injected)"
            )
        return execute_task(config, task, attempt=attempt)
