"""Fault injection for the distributed platform.

The paper's clients were *non-dedicated* PCs: they could disappear, slow
down or be reclaimed by their owners at any time, so the DataManager must
survive task failures.  ``FaultInjector`` wraps the worker entry point and
injects a deterministic taxonomy of the pathologies a heterogeneous,
non-dedicated cluster produces:

* **crash** — the attempt raises :class:`WorkerCrash` (a vanished PC);
* **slowdown** — the attempt completes correctly but only after a delay
  (a straggler; exercises deadline-driven speculative re-dispatch);
* **hang** — the attempt blocks far beyond any deadline before returning
  (a wedged-but-alive client; the speculative duplicate must win and the
  late result be discarded);
* **corrupt result** — the attempt returns a :class:`TaskResult` that fails
  merge-time validation (NaN weights, photon-count mismatch, negative
  tallies; exercises :func:`~repro.distributed.protocol.validate_result`);
* **flaky worker** — every attempt crashes with probability
  ``fail_probability``, drawn from a dedicated seeded stream.

Deterministic variants key off the task index and fire on the *first*
attempt only (retries succeed), so every recovery path is exercised
reproducibly without a flaky real cluster.  The injector is thread-safe:
thread backends call it concurrently.  It is also picklable for process
backends — but note each pickled copy carries its own "first attempt"
bookkeeping, so with a process pool a ``*_once`` fault fires once per
*submission* rather than once globally (each submission ships a fresh
copy).  Results stay correct either way: the scheduler's first-result-wins
rule discards the duplicates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.config import SimulationConfig
from .protocol import TaskResult, TaskSpec
from .worker import execute_task

__all__ = ["WorkerCrash", "FaultInjector", "CORRUPT_KINDS"]


class WorkerCrash(RuntimeError):
    """Raised by an injected fault, standing in for a vanished client PC."""


#: Supported ``corrupt_kind`` values and the validation rule each violates.
CORRUPT_KINDS = ("nan", "photon_count", "negative")


@dataclass
class FaultInjector:
    """Callable wrapper around :func:`~repro.distributed.worker.execute_task`.

    Parameters
    ----------
    fail_probability:
        Chance that any given execution attempt crashes (the flaky-worker
        scenario).  Drawn from a dedicated seeded generator so tests are
        reproducible.
    fail_tasks_once:
        Task indices whose *first* attempt always crashes (retries then
        succeed) — the deterministic reassignment scenario.
    fail_tasks_always:
        Task indices that crash on every attempt — the permanently lost
        client scenario (the DataManager must eventually give up).
    slow_tasks_once:
        ``task_index -> delay_seconds``: the first attempt sleeps for the
        delay, then completes *correctly* — the straggler scenario.  With a
        task deadline shorter than the delay, the scheduler speculatively
        re-dispatches and the first finisher wins.
    hang_tasks_once:
        Task indices whose first attempt hangs for ``hang_seconds`` before
        completing — the hung-but-connected client.  Distinguished from a
        slowdown only by intent: the hang should exceed every deadline in
        the test so the result arrives after the task was already merged.
    hang_seconds:
        How long a hung attempt blocks before (correctly) completing.
    corrupt_tasks_once:
        Task indices whose first attempt returns a corrupt result instead
        of raising; merge-time validation must reject it and retry.
    corrupt_kind:
        Which corruption to inject: ``"nan"`` (non-finite reflectance
        weight), ``"photon_count"`` (tally launched-count mismatch) or
        ``"negative"`` (negative absorbed weight).
    seed:
        Seed of the fault stream (independent of the physics streams).
    """

    fail_probability: float = 0.0
    fail_tasks_once: frozenset[int] = frozenset()
    fail_tasks_always: frozenset[int] = frozenset()
    slow_tasks_once: Mapping[int, float] = field(default_factory=dict)
    hang_tasks_once: frozenset[int] = frozenset()
    hang_seconds: float = 30.0
    corrupt_tasks_once: frozenset[int] = frozenset()
    corrupt_kind: str = "nan"
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False, default_factory=threading.Lock)
    _seen_fail: set[int] = field(init=False, repr=False, default_factory=set)
    _seen_slow: set[int] = field(init=False, repr=False, default_factory=set)
    _seen_hang: set[int] = field(init=False, repr=False, default_factory=set)
    _seen_corrupt: set[int] = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_probability < 1.0:
            raise ValueError(
                f"fail_probability must lie in [0, 1), got {self.fail_probability}"
            )
        if self.corrupt_kind not in CORRUPT_KINDS:
            raise ValueError(
                f"corrupt_kind must be one of {CORRUPT_KINDS}, got {self.corrupt_kind!r}"
            )
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")
        self.fail_tasks_once = frozenset(self.fail_tasks_once)
        self.fail_tasks_always = frozenset(self.fail_tasks_always)
        self.hang_tasks_once = frozenset(self.hang_tasks_once)
        self.corrupt_tasks_once = frozenset(self.corrupt_tasks_once)
        self.slow_tasks_once = dict(self.slow_tasks_once)
        if any(delay < 0 for delay in self.slow_tasks_once.values()):
            raise ValueError("slow_tasks_once delays must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def __getstate__(self) -> dict:
        # threading.Lock is unpicklable; drop it (and recreate on load) so
        # the injector can ship to process-pool workers.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _first_time(self, seen: set[int], index: int) -> bool:
        """True exactly once per (category, task index), thread-safely."""
        with self._lock:
            if index in seen:
                return False
            seen.add(index)
            return True

    def _corrupt(self, result: TaskResult) -> TaskResult:
        if self.corrupt_kind == "nan":
            result.tally.diffuse_reflectance_weight = float("nan")
        elif self.corrupt_kind == "photon_count":
            result.tally.n_launched += 1
        else:  # "negative"
            result.tally.absorbed_by_layer[0] = -1.0
        return result

    def __call__(
        self, config: SimulationConfig, task: TaskSpec, *, attempt: int = 1
    ) -> TaskResult:
        index = task.task_index
        if index in self.fail_tasks_always:
            raise WorkerCrash(f"task {index} permanently failing (injected)")
        if index in self.fail_tasks_once and self._first_time(self._seen_fail, index):
            raise WorkerCrash(f"task {index} first attempt failed (injected)")
        with self._lock:
            flaky = (
                self.fail_probability > 0.0
                and self._rng.random() < self.fail_probability
            )
        if flaky:
            raise WorkerCrash(f"task {index} attempt {attempt} crashed (injected)")
        if index in self.hang_tasks_once and self._first_time(self._seen_hang, index):
            time.sleep(self.hang_seconds)
        elif index in self.slow_tasks_once and self._first_time(self._seen_slow, index):
            time.sleep(self.slow_tasks_once[index])
        result = execute_task(config, task, attempt=attempt)
        if index in self.corrupt_tasks_once and self._first_time(
            self._seen_corrupt, index
        ):
            return self._corrupt(result)
        return result
