"""Checkpoint/resume for distributed runs.

The paper's headline run — 10⁹ photons over ~2 hours on 150 non-dedicated
PCs — is exactly the kind of run that must survive a DataManager crash at
hour 1.9.  A :class:`CheckpointManager` persists every merged task result to
a directory as it arrives (per-task tally archives plus a JSON manifest
listing the completed set), so a killed run can be resumed: completed tasks
are loaded from disk, only the outstanding ones are re-executed, and the
reduction — restored and fresh results alike are fed through the canonical
pairwise tree of :class:`repro.core.reduce.PairwiseReducer`, whose shape
depends only on the task count — is **bit-identical** to the uninterrupted
run.  Bit-identity holds because task RNG streams are keyed by
``(seed, task_index)``, never by schedule, and because checkpoints store
*per-task* tallies rather than a running merged sum (floating-point merges
are not associative, so the reduction tree must be reconstructed from the
leaves, never replayed from a partial sum).

The manifest carries a *run key* (photon budget, seed, task size, kernel);
resuming against a checkpoint whose key differs is refused rather than
silently mixing incompatible runs.  All writes are atomic (temp file +
``os.replace``) so a crash mid-checkpoint never corrupts the manifest, and
a torn per-task tally file is simply dropped and its task re-run.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from .protocol import TaskResult

__all__ = ["CheckpointError", "CheckpointManager", "run_key"]

logger = logging.getLogger(__name__)

_MANIFEST = "checkpoint.json"
_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint directory cannot be used (corrupt or mismatched run)."""


def run_key(
    *,
    n_photons: int,
    seed: int,
    task_size: int,
    kernel: str,
    span_size: int | None = None,
    sub_batch: int | None = None,
    task_range: "tuple[int, int] | None" = None,
    base_spans: "list[tuple[int, int]] | None" = None,
    capture_paths: bool = False,
) -> dict:
    """The identity of a run's task decomposition.

    Two runs with the same key produce the same task list and per-task RNG
    streams, so their checkpoints are interchangeable; anything else must be
    refused at resume time.  ``span_size`` changes the dispatch-unit (and
    therefore checkpoint-entry) granularity, and ``sub_batch`` changes the
    kernel's RNG consumption pattern — both must match for a resume to stay
    bit-identical.  ``task_range`` (a partial-range run) and ``base_spans``
    (the coverage of a primed base frontier in a budget-extension delta run)
    change *which* tasks the run executes, so a delta run's checkpoint can
    only resume the same delta.  ``capture_paths`` changes what each
    checkpoint entry *stores* (per-photon path records): a capture run must
    not resume from paths-less entries — the merged records would silently
    vanish (``Tally.paths`` is all-or-nothing under merge).  All five enter
    the key only when set, so checkpoints written before these knobs
    existed keep resuming.
    """
    key = {
        "n_photons": int(n_photons),
        "seed": int(seed),
        "task_size": int(task_size),
        "kernel": str(kernel),
    }
    if span_size is not None:
        key["span_size"] = int(span_size)
    if sub_batch is not None:
        key["sub_batch"] = int(sub_batch)
    if task_range is not None:
        key["task_range"] = [int(task_range[0]), int(task_range[1])]
    if base_spans is not None:
        key["base_spans"] = [[int(s), int(e)] for s, e in base_spans]
    if capture_paths:
        key["capture_paths"] = True
    return key


@dataclass
class CheckpointManager:
    """Persist completed task results incrementally; reload them on resume.

    Parameters
    ----------
    directory:
        Where the manifest and per-task tally archives live (created on
        :meth:`load`).
    interval:
        Manifest rewrites are batched: the manifest is flushed after every
        ``interval`` recorded results (per-task tallies are always written
        immediately).  ``1`` (the default) flushes after every task.
    """

    directory: str | Path
    interval: int = 1

    _lock: threading.Lock = field(init=False, repr=False, default_factory=threading.Lock)
    _entries: dict[int, dict] = field(init=False, repr=False, default_factory=dict)
    _dirty: int = field(init=False, repr=False, default=0)
    _run: dict | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")

    @property
    def manifest_path(self) -> Path:
        return Path(self.directory) / _MANIFEST

    @property
    def exists(self) -> bool:
        """Whether this directory already holds a checkpoint manifest."""
        return self.manifest_path.exists()

    def load(self, key: dict) -> dict[int, TaskResult]:
        """Open the checkpoint for a run identified by ``key``.

        Returns the completed results found on disk (empty for a fresh
        checkpoint), keyed by task index.  Raises :class:`CheckpointError`
        if the directory holds a checkpoint of a *different* run or an
        unreadable manifest.
        """
        # Imported here, not at module top: repro.io.reports imports the
        # distributed package back, so a top-level import would be circular.
        from ..io.results import load_paths, load_tally

        directory = Path(self.directory)
        directory.mkdir(parents=True, exist_ok=True)
        results: dict[int, TaskResult] = {}
        entries: dict[int, dict] = {}
        if self.exists:
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {self.manifest_path}: {exc}"
                ) from exc
            if manifest.get("format_version") != _FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint format version "
                    f"{manifest.get('format_version')!r}"
                )
            if manifest.get("run") != key:
                raise CheckpointError(
                    f"checkpoint in {directory} belongs to a different run "
                    f"(found {manifest.get('run')!r}, expected {key!r})"
                )
            for entry in manifest.get("tasks", []):
                idx = int(entry["task_index"])
                path = directory / entry["tally"]
                if not path.exists():
                    continue
                try:
                    tally = load_tally(path)
                    # save_tally persists Tally.paths automatically when the
                    # result carried records; reattach so a capture run's
                    # resume keeps them (plain load_tally stays paths-blind).
                    tally.paths = load_paths(path)
                except Exception:  # noqa: BLE001 - torn write: redo the task
                    logger.warning("dropping unreadable checkpoint tally %s", path)
                    continue
                span = entry.get("span")
                results[idx] = TaskResult(
                    task_index=idx,
                    tally=tally,
                    worker_id=entry["worker_id"],
                    elapsed_seconds=entry["elapsed_seconds"],
                    attempt=entry["attempt"],
                    span=tuple(span) if span is not None else None,
                )
                entries[idx] = dict(entry)
        with self._lock:
            self._run = dict(key)
            self._entries = entries
            self._write_manifest()
        return results

    def record(self, result: TaskResult) -> None:
        """Persist one merged task result (tally immediately, manifest batched)."""
        from ..io.results import save_tally  # see load() for why this is lazy

        if self._run is None:
            raise CheckpointError("CheckpointManager.load() must run before record()")
        filename = f"task-{result.task_index:06d}.npz"
        save_tally(Path(self.directory) / filename, result.tally)
        with self._lock:
            entry = {
                "task_index": result.task_index,
                "worker_id": result.worker_id,
                "elapsed_seconds": result.elapsed_seconds,
                "attempt": result.attempt,
                "tally": filename,
            }
            if result.span is not None:
                # Span results index by unit; the covered task range is
                # needed to re-inject the partial at its subtree node.
                entry["span"] = list(result.span)
            self._entries[result.task_index] = entry
            self._dirty += 1
            if self._dirty >= self.interval:
                self._write_manifest()

    def flush(self) -> None:
        """Force any batched manifest entries to disk."""
        with self._lock:
            if self._run is not None and self._dirty:
                self._write_manifest()

    def completed_indices(self) -> set[int]:
        """Task indices recorded so far (including those loaded on resume)."""
        with self._lock:
            return set(self._entries)

    def _write_manifest(self) -> None:
        # Caller holds self._lock.
        manifest = {
            "format_version": _FORMAT_VERSION,
            "run": self._run,
            "tasks": [self._entries[i] for i in sorted(self._entries)],
        }
        tmp = self.manifest_path.with_name(_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, self.manifest_path)
        self._dirty = 0
