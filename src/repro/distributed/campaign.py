"""Multi-experiment campaigns.

The paper highlights that its platform supports "an unlimited number of
simulations": a calibration study runs many related experiments (sweeping
optode spacing, gate windows, source types ...) against the same worker
pool.  ``Campaign`` schedules several named experiments through one backend
and collects a report per experiment.

Experiments are independent: each gets its own seed namespace, so adding
or removing an experiment never perturbs another's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..core.config import SimulationConfig
from ..core.simulation import KernelName
from .backends import Backend
from .checkpoint import CheckpointManager
from .datamanager import DataManager, RunReport
from .worker import execute_task

__all__ = ["Experiment", "Campaign"]


@dataclass(frozen=True)
class Experiment:
    """One named experiment within a campaign."""

    name: str
    config: SimulationConfig
    n_photons: int
    seed: int | None = None  # default: derived from the experiment name

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if self.n_photons < 0:
            raise ValueError(f"n_photons must be >= 0, got {self.n_photons}")

    def effective_seed(self, campaign_seed: int) -> int:
        """Seed for this experiment: explicit, or stable from the name.

        The name-derived seed uses a deterministic (non-salted) hash so
        campaigns reproduce across processes and Python versions.
        """
        if self.seed is not None:
            return self.seed
        import zlib

        return campaign_seed ^ zlib.crc32(self.name.encode("utf-8"))


@dataclass
class Campaign:
    """A batch of experiments executed against one backend.

    Parameters
    ----------
    experiments:
        The experiments, run in order.  Names must be unique.
    seed:
        Campaign-level seed mixed into each experiment's namespace.
    task_size, kernel, max_retries, task_runner:
        Forwarded to each experiment's :class:`DataManager`.
    task_deadline, retry_backoff, blacklist_after:
        Fault-tolerance knobs, forwarded to each experiment's
        :class:`DataManager` (see its docstring for semantics).
    checkpoint_root:
        Directory under which each experiment checkpoints into its own
        subdirectory (named after the experiment), making a killed
        campaign resumable experiment by experiment.  ``None`` disables
        checkpointing.
    """

    experiments: list[Experiment]
    seed: int = 0
    task_size: int = 100_000
    kernel: KernelName = "vector"
    max_retries: int = 2
    task_runner: Callable = execute_task
    progress: Callable[[str, int, int], None] | None = None
    task_deadline: float | None = None
    retry_backoff: float = 0.0
    blacklist_after: int | None = 3
    checkpoint_root: str | Path | None = None
    _reports: dict[str, RunReport] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        names = [e.name for e in self.experiments]
        if len(set(names)) != len(names):
            raise ValueError(f"experiment names must be unique, got {names}")

    def run(self, backend: Backend) -> dict[str, RunReport]:
        """Run every experiment on ``backend``; returns name -> report."""
        self._reports = {}
        for experiment in self.experiments:
            checkpoint: CheckpointManager | None = None
            if self.checkpoint_root is not None:
                checkpoint = CheckpointManager(
                    Path(self.checkpoint_root) / experiment.name
                )
            manager = DataManager(
                config=experiment.config,
                n_photons=experiment.n_photons,
                seed=experiment.effective_seed(self.seed),
                task_size=self.task_size,
                kernel=self.kernel,
                max_retries=self.max_retries,
                task_runner=self.task_runner,
                task_deadline=self.task_deadline,
                retry_backoff=self.retry_backoff,
                blacklist_after=self.blacklist_after,
                checkpoint=checkpoint,
                progress=(
                    None
                    if self.progress is None
                    else lambda done, total, _name=experiment.name: self.progress(
                        _name, done, total
                    )
                ),
            )
            self._reports[experiment.name] = manager.run(backend)
        return dict(self._reports)

    @property
    def reports(self) -> dict[str, RunReport]:
        """Reports of the last :meth:`run` (empty before any run)."""
        return dict(self._reports)

    def summary_rows(self) -> list[list]:
        """One row per experiment for a text-table report."""
        rows = []
        for name, report in self._reports.items():
            t = report.tally
            rows.append([
                name,
                t.n_launched,
                t.diffuse_reflectance,
                t.detected_count,
                report.wall_seconds,
            ])
        return rows
