"""The DataManager — server side of the distributed platform.

Mirrors the paper's architecture: the DataManager "assigns simulations to
client PCs and processes the returned results".  Concretely it

1. splits the photon budget into fixed-size tasks with the canonical
   decomposition (:func:`repro.core.simulation.split_photons`), so the
   distributed result is bit-identical to a serial run of the same
   decomposition;
2. keeps at most ``max_workers`` tasks in flight and hands a new task to
   whichever worker finishes first (pull-based *self-scheduling*, the
   policy that yields the paper's near-linear speedup on heterogeneous,
   non-dedicated machines);
3. retries failed tasks up to ``max_retries`` times (non-dedicated clients
   vanish; see :mod:`repro.distributed.faults`);
4. merges the returned tallies and produces a :class:`RunReport` with
   per-worker utilisation.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Callable

from ..core.config import SimulationConfig
from ..core.simulation import KernelName, split_photons
from ..core.tally import Tally
from .backends import Backend
from .protocol import TaskResult, TaskSpec
from .worker import execute_task

logger = logging.getLogger(__name__)

__all__ = ["DataManager", "RunReport", "TaskFailedError"]


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget."""

    def __init__(self, task: TaskSpec, attempts: int, last_error: BaseException):
        super().__init__(
            f"task {task.task_index} failed after {attempts} attempts: {last_error!r}"
        )
        self.task = task
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RunReport:
    """Outcome of a distributed run.

    Attributes
    ----------
    tally:
        The merged physics result.
    task_results:
        Per-task results in task order.
    wall_seconds:
        End-to-end time observed by the DataManager.
    retries:
        Total failed attempts that were retried.
    """

    tally: Tally
    task_results: list[TaskResult]
    wall_seconds: float
    retries: int = 0

    @property
    def n_tasks(self) -> int:
        return len(self.task_results)

    @property
    def busy_seconds(self) -> float:
        """Total worker compute time across all tasks."""
        return sum(r.elapsed_seconds for r in self.task_results)

    def per_worker(self) -> dict[str, dict[str, float]]:
        """Utilisation summary keyed by worker id."""
        out: dict[str, dict[str, float]] = {}
        for r in self.task_results:
            row = out.setdefault(r.worker_id, {"tasks": 0.0, "busy_seconds": 0.0, "photons": 0.0})
            row["tasks"] += 1.0
            row["busy_seconds"] += r.elapsed_seconds
            row["photons"] += float(r.tally.n_launched)
        return out


@dataclass
class DataManager:
    """Server-side orchestrator of one distributed experiment.

    Parameters
    ----------
    config:
        The experiment every task runs.
    n_photons:
        Total photon budget.
    seed:
        Experiment seed (combined with task indices for RNG streams).
    task_size:
        Photons per task — the self-scheduling chunk size.  Smaller tasks
        balance load better but pay more per-task overhead; the paper's
        97 %-efficiency point is a chunk-size trade-off, explored in
        ``benchmarks/bench_ablation_chunksize.py``.
    kernel:
        Kernel the clients run.
    max_retries:
        Additional attempts allowed per task after a failure.
    task_runner:
        The client entry point; replaceable for fault injection.  Must be
        picklable for the multiprocessing backend.
    progress:
        Optional callback ``(done_tasks, total_tasks) -> None``.
    """

    config: SimulationConfig
    n_photons: int
    seed: int = 0
    task_size: int = 100_000
    kernel: KernelName = "vector"
    max_retries: int = 2
    task_runner: Callable[..., TaskResult] = execute_task
    progress: Callable[[int, int], None] | None = None
    _retries: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError(f"n_photons must be >= 0, got {self.n_photons}")
        if self.task_size <= 0:
            raise ValueError(f"task_size must be > 0, got {self.task_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def tasks(self) -> list[TaskSpec]:
        """The canonical task decomposition of this experiment."""
        return [
            TaskSpec(task_index=i, n_photons=count, seed=self.seed, kernel=self.kernel)
            for i, count in enumerate(split_photons(self.n_photons, self.task_size))
        ]

    def run(self, backend: Backend) -> RunReport:
        """Execute the experiment on ``backend`` and merge the results."""
        start = time.perf_counter()
        tasks = self.tasks()
        self._retries = 0
        if not tasks:
            empty = Tally(n_layers=len(self.config.stack), records=self.config.records)
            return RunReport(tally=empty, task_results=[], wall_seconds=0.0)

        queue: deque[tuple[TaskSpec, int]] = deque((t, 1) for t in tasks)
        in_flight: dict[Future, tuple[TaskSpec, int]] = {}
        results: dict[int, TaskResult] = {}

        def fill() -> None:
            while queue and len(in_flight) < backend.max_workers:
                task, attempt = queue.popleft()
                fut = backend.submit(self.task_runner, self.config, task, attempt=attempt)
                in_flight[fut] = (task, attempt)

        fill()
        while in_flight:
            done, _pending = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for fut in done:
                task, attempt = in_flight.pop(fut)
                error = fut.exception()
                if error is None:
                    results[task.task_index] = fut.result()
                    if self.progress is not None:
                        self.progress(len(results), len(tasks))
                else:
                    if attempt > self.max_retries:
                        for other in in_flight:
                            other.cancel()
                        raise TaskFailedError(task, attempt, error)
                    self._retries += 1
                    logger.info(
                        "task %d failed (%r); retrying (attempt %d)",
                        task.task_index, error, attempt + 1,
                    )
                    queue.append((task, attempt + 1))
            fill()

        ordered = [results[i] for i in range(len(tasks))]
        tally = Tally.merge_all([r.tally for r in ordered])
        return RunReport(
            tally=tally,
            task_results=ordered,
            wall_seconds=time.perf_counter() - start,
            retries=self._retries,
        )
