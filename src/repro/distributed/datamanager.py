"""The DataManager — server side of the distributed platform.

Mirrors the paper's architecture: the DataManager "assigns simulations to
client PCs and processes the returned results".  Concretely it

1. splits the photon budget into fixed-size tasks with the canonical
   decomposition (:func:`repro.core.simulation.split_photons`), so the
   distributed result is bit-identical to a serial run of the same
   decomposition;
2. keeps at most ``max_workers`` tasks in flight and hands a new task to
   whichever worker finishes first (pull-based *self-scheduling*, the
   policy that yields the paper's near-linear speedup on heterogeneous,
   non-dedicated machines);
3. retries failed tasks up to ``max_retries`` times with exponential
   backoff (non-dedicated clients vanish; see
   :mod:`repro.distributed.faults`), validating every returned result
   before merging it (:func:`~repro.distributed.protocol.validate_result`)
   so a corrupted client cannot poison the tally;
4. enforces an optional per-task **deadline**: a straggling attempt is
   speculatively re-dispatched, the first result wins, and late duplicates
   are discarded by task index — correctness is unaffected because task
   RNG streams are keyed by ``(seed, task_index)``, never by schedule;
5. optionally **checkpoints** completed results to disk
   (:mod:`repro.distributed.checkpoint`) so a killed run can resume
   bit-identically;
6. merges the returned tallies and produces a :class:`RunReport` with
   per-worker utilisation and health
   (:class:`~repro.distributed.health.WorkerHealth`).
"""

from __future__ import annotations

import logging
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable

from ..core.config import SimulationConfig
from ..core.reduce import PairwiseReducer, TallyFrontier, prefix_spans
from ..core.simulation import KernelName, split_photons
from ..core.tally import Tally
from .backends import Backend
from .checkpoint import CheckpointManager, run_key
from .health import WorkerHealth, WorkerStats
from .protocol import (
    ResultValidationError,
    SpanSpec,
    TaskResult,
    TaskSpec,
    make_units,
    thaw_result,
    validate_result,
)
from .worker import execute_task, execute_unit, execute_unit_ipc

logger = logging.getLogger(__name__)

__all__ = ["DataManager", "RunReport", "TaskFailedError"]

#: How long to wait for in-flight attempts to settle when a run is aborted.
_DRAIN_TIMEOUT = 30.0


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget."""

    def __init__(self, task: TaskSpec, attempts: int, last_error: BaseException):
        super().__init__(
            f"task {task.task_index} failed after {attempts} attempts: {last_error!r}"
        )
        self.task = task
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RunReport:
    """Outcome of a distributed run.

    Attributes
    ----------
    tally:
        The merged physics result.
    task_results:
        Per-task results in task order.  When the run was executed with
        ``retain_task_tallies=False`` each entry keeps its metadata
        (worker, timing, photon count) but its ``tally`` is ``None`` —
        the weight data lives only in the merged ``tally`` above.
    wall_seconds:
        End-to-end time observed by the DataManager.
    retries:
        Total failed attempts that were retried.
    speculative_duplicates:
        Speculative attempts dispatched for straggling tasks (the losing
        copies are discarded at merge time).
    worker_health:
        Per-worker failure/latency/blacklist stats, keyed by worker id.
    metrics:
        Final metrics block (the :meth:`repro.observe.Telemetry.snapshot`
        of the run's registry) when the run was telemetered; ``None``
        otherwise.
    frontier:
        The run's re-injectable reduction frontier
        (:class:`~repro.core.reduce.TallyFrontier`) when the run was
        executed with ``capture_frontier=True``; ``None`` otherwise.  For a
        complete run this is the canonical prefix-span decomposition of the
        full-size tasks (the budget-extension base); for a partial
        ``task_range`` run it is the pending-node export (resumable into a
        same-decomposition reducer).
    """

    tally: Tally
    task_results: list[TaskResult]
    wall_seconds: float
    retries: int = 0
    speculative_duplicates: int = 0
    worker_health: dict[str, WorkerStats] = field(default_factory=dict)
    metrics: dict | None = None
    frontier: TallyFrontier | None = None

    @property
    def n_tasks(self) -> int:
        return len(self.task_results)

    @property
    def busy_seconds(self) -> float:
        """Total worker compute time across all tasks."""
        return sum(r.elapsed_seconds for r in self.task_results)

    def per_worker(self) -> dict[str, dict[str, float]]:
        """Utilisation and health summary keyed by worker id.

        Each row carries the utilisation counters (``tasks``,
        ``busy_seconds``, ``photons``) plus the health fields
        (``failures``, ``blacklisted``, ``mean_latency_seconds``).  Workers
        that only ever failed appear with zero completed tasks.
        """
        out: dict[str, dict[str, float]] = {}

        def row_for(worker_id: str) -> dict[str, float]:
            return out.setdefault(
                worker_id, {"tasks": 0.0, "busy_seconds": 0.0, "photons": 0.0}
            )

        for r in self.task_results:
            row = row_for(r.worker_id)
            row["tasks"] += 1.0
            row["busy_seconds"] += r.elapsed_seconds
            row["photons"] += float(r.photons)
        for worker_id, stats in self.worker_health.items():
            row = row_for(worker_id)
            row["failures"] = float(stats.failures)
            row["blacklisted"] = stats.blacklisted
            row["mean_latency_seconds"] = stats.mean_latency
        for row in out.values():
            row.setdefault("failures", 0.0)
            row.setdefault("blacklisted", False)
            row.setdefault(
                "mean_latency_seconds",
                row["busy_seconds"] / row["tasks"] if row["tasks"] else float("nan"),
            )
        return out


@dataclass
class DataManager:
    """Server-side orchestrator of one distributed experiment.

    Parameters
    ----------
    config:
        The experiment every task runs.
    n_photons:
        Total photon budget.
    seed:
        Experiment seed (combined with task indices for RNG streams).
    task_size:
        Photons per task — the self-scheduling chunk size.  Smaller tasks
        balance load better but pay more per-task overhead; the paper's
        97 %-efficiency point is a chunk-size trade-off, explored in
        ``benchmarks/bench_ablation_chunksize.py``.
    kernel:
        Kernel the clients run.
    max_retries:
        Additional attempts allowed per task after a failure.
    task_runner:
        The client entry point; replaceable for fault injection.  Must be
        picklable for the multiprocessing backend.
    progress:
        Optional callback ``(done_tasks, total_tasks) -> None``.
    task_deadline:
        Seconds an attempt may run before a speculative duplicate is
        dispatched (``None`` disables speculation).  First result wins;
        the loser is discarded, so the merged tally is unaffected.
    max_speculative:
        Speculative duplicates allowed per task.
    retry_backoff:
        Base delay before re-dispatching a failed task; doubles with each
        failure of that task, capped at ``retry_backoff_cap``.  ``0``
        (the default) retries immediately.
    retry_backoff_cap:
        Upper bound on the exponential backoff delay.
    blacklist_after:
        Consecutive failures after which a worker is marked blacklisted in
        the :class:`~repro.distributed.health.WorkerHealth` report
        (``None`` disables).  In-process backends cannot refuse work to a
        thread, so here the flag is diagnostic; the
        :class:`~repro.distributed.net.NetworkServer` enforces it.
    span_size:
        Tasks per dispatch unit for hierarchical worker-local reduction
        (``None``, the default, keeps per-task dispatch).  Tasks are
        grouped into tree-aligned spans (the size is rounded down to a
        power of two); the worker folds each span's tallies bottom-up into
        the canonical subtree partial and ships that single payload, so
        IPC payload count and parent merge CPU drop by the span factor
        while the merged tally stays bit-identical to serial.  Retries,
        speculation and checkpoints operate on whole spans.
    sub_batch:
        Vectorized-kernel sub-batch override shipped with every task
        (``None`` keeps the kernel default).  Execution-only: results are
        statistically equivalent across sub-batch sizes but not
        bit-identical, so the value participates in the checkpoint run key.
    capture_paths:
        Ship ``capture_paths=True`` with every task: workers record
        per-detected-photon path records (``Tally.paths``, the raw
        material for :mod:`repro.perturb` reweighting), sealed under the
        task index so the merged record set is bit-identical across
        backends and schedules.  No other tally field changes.
    checkpoint:
        A :class:`~repro.distributed.checkpoint.CheckpointManager`, or a
        directory path for one.  Completed task results are persisted as
        they arrive and reloaded on the next :meth:`run` with the same
        run key, making a killed run resumable bit-identically.
    base_frontier:
        A :class:`~repro.core.reduce.TallyFrontier` from a previous run of
        the same physics and task size (smaller budget, or a disjoint
        ``task_range``).  Its span partials are primed into the reducer
        before any task is dispatched and the covered task indices are
        **not** re-simulated — the run executes only the missing tasks and
        the merged tally is bit-identical to a from-scratch run of the full
        decomposition (task RNG streams are keyed by ``(seed, task_index)``,
        and the frontier spans are canonical subtree folds).  The frontier's
        tallies are not mutated.  ``span_size`` is ignored (delta tasks are
        dispatched per-task: spans could straddle the coverage boundary).
    capture_frontier:
        Snapshot the run's reduction frontier and attach it to
        :attr:`RunReport.frontier`, making the result budget-extendable.
        Costs one deep tally copy per frontier span (≤ ⌈log₂ n⌉ + 1 spans).
    task_range:
        Run only tasks ``[start, stop)`` of the canonical decomposition.
        The tally is the deterministic partial fold of those tasks; the
        report's frontier (with ``capture_frontier=True``) can seed a later
        run that completes the remainder.  ``span_size`` is ignored.
    retain_task_tallies:
        Keep each task's tally on its :class:`TaskResult` (default, needed
        by :mod:`repro.analysis` and :mod:`repro.io.reports`).  Set
        ``False`` for large runs: tallies are released the moment they are
        folded into the incremental pairwise reduction, bounding live
        tallies at ~⌈log₂ n_tasks⌉ + tasks in flight instead of n_tasks,
        while ``task_results`` keeps all scheduling metadata.
    telemetry:
        Optional :class:`~repro.observe.Telemetry`.  When given, the run
        emits dispatch/merge spans and scheduling counters
        (``tasks.dispatched`` / ``tasks.retried`` / ``tasks.speculative``),
        observes per-task latency histograms and per-worker throughput,
        drives the progress reporter, and attaches the final metrics
        snapshot to :attr:`RunReport.metrics`.  The caller owns the
        telemetry lifecycle (call :meth:`repro.observe.Telemetry.finish`
        when the last run on it is over).
    """

    config: SimulationConfig
    n_photons: int
    seed: int = 0
    task_size: int = 100_000
    kernel: KernelName = "vector"
    max_retries: int = 2
    task_runner: Callable[..., TaskResult] = execute_task
    progress: Callable[[int, int], None] | None = None
    task_deadline: float | None = None
    max_speculative: int = 1
    retry_backoff: float = 0.0
    retry_backoff_cap: float = 30.0
    blacklist_after: int | None = 3
    checkpoint: CheckpointManager | str | Path | None = None
    telemetry: object | None = None
    retain_task_tallies: bool = True
    span_size: int | None = None
    sub_batch: int | None = None
    capture_paths: bool = False
    base_frontier: TallyFrontier | None = None
    capture_frontier: bool = False
    task_range: tuple[int, int] | None = None
    _retries: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError(f"n_photons must be >= 0, got {self.n_photons}")
        if self.task_size <= 0:
            raise ValueError(f"task_size must be > 0, got {self.task_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError(
                f"task_deadline must be > 0 or None, got {self.task_deadline}"
            )
        if self.max_speculative < 0:
            raise ValueError(
                f"max_speculative must be >= 0, got {self.max_speculative}"
            )
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.span_size is not None and self.span_size < 1:
            raise ValueError(
                f"span_size must be >= 1 or None, got {self.span_size}"
            )
        if self.sub_batch is not None and self.sub_batch <= 0:
            raise ValueError(f"sub_batch must be > 0 or None, got {self.sub_batch}")
        n_tasks = len(split_photons(self.n_photons, self.task_size))
        if self.task_range is not None:
            lo, hi = self.task_range
            if not 0 <= lo < hi <= n_tasks:
                raise ValueError(
                    f"task_range [{lo}, {hi}) out of range for the "
                    f"{n_tasks}-task decomposition of {self.n_photons} photons"
                )
        if self.base_frontier is not None:
            for start, stop, _tally in self.base_frontier:
                if not 0 <= start < stop <= n_tasks:
                    raise ValueError(
                        f"base_frontier span [{start}, {stop}) out of range "
                        f"for the {n_tasks}-task decomposition"
                    )

    def tasks(self) -> list[TaskSpec]:
        """The canonical task decomposition of this experiment."""
        return [
            TaskSpec(
                task_index=i, n_photons=count, seed=self.seed, kernel=self.kernel,
                sub_batch=self.sub_batch, capture_paths=self.capture_paths,
            )
            for i, count in enumerate(split_photons(self.n_photons, self.task_size))
        ]

    def units(self) -> list[TaskSpec] | list[SpanSpec]:
        """The dispatch units: per-task, or tree-aligned spans of tasks."""
        return make_units(self.tasks(), self.span_size)

    def run_key(self) -> dict:
        """Identity of this run's decomposition (for checkpoint matching)."""
        return run_key(
            n_photons=self.n_photons,
            seed=self.seed,
            task_size=self.task_size,
            kernel=self.kernel,
            span_size=self.span_size,
            sub_batch=self.sub_batch,
            capture_paths=self.capture_paths,
            task_range=self.task_range,
            base_spans=(
                [(s, e) for s, e, _t in self.base_frontier]
                if self.base_frontier is not None
                else None
            ),
        )

    def _checkpoint_manager(self) -> CheckpointManager | None:
        if self.checkpoint is None:
            return None
        if isinstance(self.checkpoint, CheckpointManager):
            return self.checkpoint
        return CheckpointManager(self.checkpoint)

    def _backoff(self, n_failures: int) -> float:
        if self.retry_backoff <= 0:
            return 0.0
        return min(self.retry_backoff * (2 ** (n_failures - 1)), self.retry_backoff_cap)

    @staticmethod
    def _drain(in_flight: dict[Future, tuple]) -> None:
        """Settle in-flight attempts before aborting the run.

        ``Future.cancel()`` is a no-op for already-running attempts, so we
        must *wait* for them — otherwise the raise races with workers still
        mutating backend state.
        """
        for fut in in_flight:
            fut.cancel()
        still_running = {f for f in in_flight if not f.cancelled()}
        if still_running:
            wait(still_running, timeout=_DRAIN_TIMEOUT)

    def run(self, backend: Backend) -> RunReport:
        """Execute the experiment on ``backend`` and merge the results."""
        start = time.perf_counter()
        tel = self.telemetry
        tasks = self.tasks()
        base = self.base_frontier
        covered: set[int] = set()
        if base is not None:
            for span_start, span_stop, _t in base:
                covered.update(range(span_start, span_stop))
        if base is None and self.task_range is None:
            units = make_units(tasks, self.span_size)
        else:
            # Delta / partial-range runs dispatch per-task: worker-fold
            # spans could straddle the base-coverage or range boundary.
            lo, hi = self.task_range if self.task_range is not None else (0, len(tasks))
            units = [t for t in tasks[lo:hi] if t.task_index not in covered]
        self._retries = 0
        health = WorkerHealth(blacklist_after=self.blacklist_after)
        ckpt = self._checkpoint_manager()
        restored: dict[int, TaskResult] = {}
        if ckpt is not None:
            restored = ckpt.load(self.run_key())
            if restored:
                logger.info(
                    "resumed %d completed units from checkpoint %s",
                    len(restored), ckpt.directory,
                )

        if not tasks:
            empty = Tally(n_layers=len(self.config.stack), records=self.config.records)
            return RunReport(
                tally=empty,
                task_results=[],
                wall_seconds=time.perf_counter() - start,
                worker_health=health.snapshot(),
                metrics=tel.snapshot() if tel is not None else None,
                frontier=TallyFrontier([]) if self.capture_frontier else None,
            )

        n_tasks = len(tasks)
        n_units = len(units)
        if tel is not None:
            tel.emit(
                "run_start",
                n_tasks=n_tasks,
                n_units=n_units,
                n_photons=self.n_photons,
                restored=len(restored),
                workers=backend.max_workers,
                kernel=self.kernel,
            )
        by_index = {u.task_index: u for u in units}
        results = {i: r for i, r in restored.items() if i in by_index}
        # Incremental deterministic reduction: results are folded into a
        # canonical binary tree keyed by task index as they arrive, so the
        # merged tally is bit-identical to serial no matter the completion
        # order, there is no end-of-run merge stall, and (with
        # retain_task_tallies=False) at most ~log2(n_tasks) + in-flight
        # tallies are ever held in memory.  Checkpointed results re-enter
        # through the same reducer, keeping resumed runs on the same tree.
        # A span result enters at its subtree node (add_span) — the worker
        # already performed that subtree's merges, bit-identically.
        retain = self.retain_task_tallies
        # ``complete`` — this run (base coverage + its own tasks) reduces the
        # whole decomposition, so result() applies and the prefix frontier
        # can be captured; otherwise the run yields a deterministic partial.
        # (Plain runs dispatch spans, so count per-task only on delta paths.)
        if base is None and self.task_range is None:
            complete = True
        else:
            complete = len(covered) + len(units) == n_tasks
        capture_spans = None
        if self.capture_frontier and complete:
            k_full = self.n_photons // self.task_size
            if k_full:
                capture_spans = prefix_spans(k_full)
        reducer = PairwiseReducer(n_tasks, telemetry=tel, capture_spans=capture_spans)
        if base is not None:
            reducer.prime(base)

        def fold(idx: int, result: TaskResult) -> None:
            # Release before feeding the reducer: with an owned leaf the
            # reducer merges siblings into it in place, which would corrupt
            # the per-unit photon count release_tally() snapshots.
            leaf = result.tally
            span = result.span
            if not retain:
                result.release_tally()
            # Codec-decoded tallies may be zero-copy views into a read-only
            # buffer; the reducer may only accumulate into writable arrays.
            owned = (not retain) and leaf.absorbed_by_layer.flags.writeable
            if span is not None:
                reducer.add_span(span[0], span[1], leaf, owned=owned)
                if tel is not None and span[1] - span[0] > 1:
                    tel.count("reduce.worker_folds", span[1] - span[0] - 1)
            else:
                reducer.add(idx, leaf, owned=owned)

        for i in sorted(results):
            fold(i, results[i])
        # (not_before, unit, attempt): retries carry a backoff release time.
        pending: list[tuple[float, TaskSpec | SpanSpec, int]] = [
            (0.0, u, 1) for u in units if u.task_index not in results
        ]
        in_flight: dict[Future, tuple[TaskSpec, int, float]] = {}
        inflight_count: dict[int, int] = {}
        last_dispatch: dict[int, float] = {}
        failures: dict[int, int] = {}
        spec_count: dict[int, int] = {}
        speculative = 0

        attempt_spans: dict[Future, tuple[int, float]] = {}
        # Every attempt routes through the unit entry points: execute_unit
        # runs tasks or folds spans in place; execute_unit_ipc additionally
        # returns the tally in zero-copy codec form, stripping the pickle
        # reconstruction cost off a process pool's parent-side hot path.
        # Kernel batch spans can only be shared by in-process workers; the
        # stock runner grows a telemetry kwarg, custom runners are left
        # alone (execute_unit forwards telemetry only to execute_task).
        in_process = getattr(backend, "in_process", False)
        unit_entry = execute_unit if in_process else execute_unit_ipc
        runner_kwargs = {"runner": self.task_runner}
        if tel is not None and in_process and self.task_runner is execute_task:
            runner_kwargs["telemetry"] = tel

        def dispatch(task: TaskSpec | SpanSpec, attempt: int) -> None:
            now = time.perf_counter()
            if tel is not None:
                handle = tel.span_begin(
                    "task.attempt", task=task.task_index, attempt=attempt,
                    photons=task.n_photons,
                )
            fut = backend.submit(
                unit_entry, self.config, task, attempt=attempt,
                **runner_kwargs,
            )
            in_flight[fut] = (task, attempt, now)
            inflight_count[task.task_index] = inflight_count.get(task.task_index, 0) + 1
            last_dispatch[task.task_index] = now
            if tel is not None:
                attempt_spans[fut] = handle
                tel.count("tasks.dispatched")
                tel.gauge("tasks.in_flight", len(in_flight))

        def fill() -> None:
            now = time.perf_counter()
            pending[:] = [
                (nb, t, a) for nb, t, a in pending if t.task_index not in results
            ]
            i = 0
            while i < len(pending) and len(in_flight) < backend.max_workers:
                not_before, task, attempt = pending[i]
                if not_before <= now:
                    pending.pop(i)
                    dispatch(task, attempt)
                else:
                    i += 1

        fill()
        while len(results) < n_units:
            if not in_flight:
                if not pending:
                    raise RuntimeError(
                        "scheduler stalled: tasks outstanding but nothing queued"
                    )
                # Everything is backoff-delayed; sleep to the earliest release.
                delay = min(nb for nb, _, _ in pending) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                fill()
                continue

            # Wake early enough to notice deadline crossings and backoff releases.
            now = time.perf_counter()
            wakeups = []
            if self.task_deadline is not None:
                wakeups.extend(
                    last_dispatch[idx] + self.task_deadline
                    for idx, count in inflight_count.items()
                    if count > 0 and idx not in results
                )
            wakeups.extend(nb for nb, _, _ in pending if nb > now)
            timeout = max(0.01, min(wakeups) - now) if wakeups else None

            done, _pending_futs = wait(
                set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = time.perf_counter()
            for fut in done:
                task, attempt, _started = in_flight.pop(fut)
                idx = task.task_index
                inflight_count[idx] -= 1
                span = attempt_spans.pop(fut, None)
                if tel is not None:
                    tel.gauge("tasks.in_flight", len(in_flight))
                if idx in results:
                    # Late outcome of a task already merged via speculation.
                    logger.info("discarding duplicate outcome of task %d", idx)
                    if span is not None:
                        tel.span_finish("task.attempt", span, outcome="duplicate")
                    continue
                error = fut.exception()
                result: TaskResult | None = None
                if error is None:
                    candidate: TaskResult = fut.result()
                    try:
                        # A process-pool result arrives codec-encoded; thaw
                        # it into zero-copy views before validation.
                        thaw_result(candidate, telemetry=tel)
                        validate_result(candidate, task)
                        result = candidate
                    except ValueError as exc:
                        # ResultValidationError, or a CodecError from a
                        # corrupt encoded payload — either way the result
                        # is unusable and the unit is retried.
                        error = exc
                        health.record_failure(candidate.worker_id)
                        logger.warning("task %d result rejected: %s", idx, exc)
                if result is not None:
                    results[idx] = result
                    health.record_success(result.worker_id, result.elapsed_seconds)
                    if ckpt is not None:
                        ckpt.record(result)
                    n_launched = result.tally.n_launched
                    fold(idx, result)
                    if self.progress is not None:
                        self.progress(len(results), n_units)
                    if tel is not None:
                        tel.span_finish(
                            "task.attempt", span,
                            outcome="merged", worker=result.worker_id,
                        )
                        tel.count("tasks.completed")
                        tel.count("photons.traced", n_launched)
                        tel.count(
                            "worker.photons", n_launched,
                            worker=result.worker_id,
                        )
                        tel.count("worker.tasks", 1, worker=result.worker_id)
                        tel.observe("task.seconds", result.elapsed_seconds)
                        elapsed = time.perf_counter() - start
                        done_photons = tel.registry.counter("photons.traced").value
                        tel.progress_update(
                            len(results), n_units,
                            photons_per_s=done_photons / elapsed if elapsed else 0.0,
                        )
                    continue
                if tel is not None and span is not None:
                    tel.span_finish("task.attempt", span, outcome="failed")
                failures[idx] = failures.get(idx, 0) + 1
                if failures[idx] > self.max_retries:
                    if inflight_count.get(idx, 0) > 0:
                        # A speculative sibling is still running; let it decide.
                        continue
                    self._drain(in_flight)
                    if ckpt is not None:
                        ckpt.flush()
                    raise TaskFailedError(task, failures[idx], error)
                self._retries += 1
                if tel is not None:
                    tel.count("tasks.retried")
                delay = self._backoff(failures[idx])
                logger.info(
                    "task %d failed (%r); retrying in %.2fs (attempt %d)",
                    idx, error, delay, attempt + 1,
                )
                pending.append((now + delay, task, attempt + 1))

            if self.task_deadline is not None:
                queued = {t.task_index for _, t, _ in pending}
                for idx, count in inflight_count.items():
                    if count <= 0 or idx in results or idx in queued:
                        continue
                    if now - last_dispatch[idx] <= self.task_deadline:
                        continue
                    if spec_count.get(idx, 0) >= self.max_speculative:
                        continue
                    spec_count[idx] = spec_count.get(idx, 0) + 1
                    speculative += 1
                    if tel is not None:
                        tel.count("tasks.speculative")
                    attempt_no = failures.get(idx, 0) + spec_count[idx] + 1
                    logger.info(
                        "task %d exceeded the %.2fs deadline; "
                        "dispatching speculative duplicate",
                        idx, self.task_deadline,
                    )
                    pending.append((now, by_index[idx], attempt_no))
            fill()

        # Hung or superseded attempts may still be running; they are
        # harmless (their results would be discarded) and the backend joins
        # them at shutdown.  Cancel whatever has not started.
        for fut in in_flight:
            fut.cancel()

        ordered = [results[u.task_index] for u in units]
        # Every result was already folded in on arrival — no end-of-run
        # merge pass (and no "merge" span) remains.
        tally = reducer.result() if complete else reducer.partial_result()
        frontier = None
        if self.capture_frontier:
            frontier = (
                reducer.captured_frontier() if complete else reducer.export_pending()
            )
        if ckpt is not None:
            ckpt.flush()
        wall = time.perf_counter() - start
        metrics = None
        if tel is not None:
            tel.gauge("run.photons_per_s", tally.n_launched / wall if wall else 0.0)
            tel.emit("run_end", n_tasks=n_tasks, wall_seconds=wall,
                     retries=self._retries, speculative=speculative)
            metrics = tel.snapshot()
        return RunReport(
            tally=tally,
            task_results=ordered,
            wall_seconds=wall,
            retries=self._retries,
            speculative_duplicates=speculative,
            worker_health=health.snapshot(),
            metrics=metrics,
            frontier=frontier,
        )


# --------------------------------------------------------------------------
# Positional construction beyond (config, n_photons) is deprecated: the
# field list has grown PR over PR (deadlines, checkpoints, telemetry...) and
# positional call sites silently re-bind when a field is inserted.  The shim
# keeps old code running — it maps the extra positionals onto the field
# order and warns — while `repro.api.run` / keyword construction is the
# supported path.
_POSITIONAL_TAIL = [f.name for f in fields(DataManager) if f.init][2:]
_DATACLASS_INIT = DataManager.__init__


def _deprecating_init(self, config, n_photons, *args, **kwargs):
    if args:
        warnings.warn(
            "constructing DataManager with positional arguments beyond "
            "(config, n_photons) is deprecated; pass the remaining "
            "parameters as keywords (or use repro.api.run)",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > len(_POSITIONAL_TAIL):
            raise TypeError(
                f"DataManager takes at most {2 + len(_POSITIONAL_TAIL)} "
                f"positional arguments ({2 + len(args)} given)"
            )
        for name, value in zip(_POSITIONAL_TAIL, args):
            if name in kwargs:
                raise TypeError(f"DataManager got multiple values for {name!r}")
            kwargs[name] = value
    _DATACLASS_INIT(self, config, n_photons, **kwargs)


_deprecating_init.__wrapped__ = _DATACLASS_INIT
DataManager.__init__ = _deprecating_init
