"""TCP network mode: DataManager as a real server, Algorithm as a client.

The paper's platform ran the DataManager "on the server" with client PCs
connecting over the campus network ("All the clients connected to a
dedicated server running Linux...").  The in-process backends of
:mod:`repro.distributed.backends` prove the scheduling logic; this module
provides the actual wire deployment: a threaded TCP server that hands
photon-batch tasks to any number of connecting clients, merges their
results, survives client disconnects by reassigning the lost tasks, and
reports the same :class:`~repro.distributed.datamanager.RunReport`.

Wire protocol (length-prefixed pickles, trusted-network only — exactly the
trust model of the paper's Java serialisation):

    client -> server   {"type": "hello", "worker": str}
    server -> client   {"type": "session", "config": ..., "kernel": ...}
    client -> server   {"type": "next"}                           ┐
    server -> client   {"type": "task", "task": TaskSpec,         │ repeats
                        "attempt": int} | {"type": "done"}        │
    client -> server   {"type": "result", "result": TaskResult}   ┘

The pull ("next") step makes departures unambiguous: a client that closes
instead of pulling owes the server nothing; only a connection lost between
task dispatch and result delivery triggers reassignment.
"""

from __future__ import annotations

import logging
import pickle
import queue
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from ..core.config import SimulationConfig
from ..core.simulation import KernelName, split_photons
from ..core.tally import Tally
from .datamanager import RunReport
from .protocol import TaskResult, TaskSpec
from .worker import execute_task

__all__ = ["send_message", "recv_message", "NetworkServer", "run_network_client"]

logger = logging.getLogger(__name__)

_LENGTH = struct.Struct(">Q")

#: Refuse messages above this size (corrupt length prefix guard).
_MAX_MESSAGE = 1 << 30


def send_message(sock: socket.socket, obj) -> None:
    """Send one length-prefixed pickled message."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket):
    """Receive one length-prefixed pickled message."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > _MAX_MESSAGE:
        raise ValueError(f"message of {length} bytes exceeds the {_MAX_MESSAGE} cap")
    return pickle.loads(_recv_exact(sock, length))


@dataclass
class NetworkServer:
    """The DataManager as a TCP server.

    Parameters mirror :class:`~repro.distributed.datamanager.DataManager`;
    ``host``/``port`` choose the listening endpoint (port 0 picks a free
    port, exposed as :attr:`port` after :meth:`start`).

    Usage::

        server = NetworkServer(config, n_photons=10**6, task_size=10**4)
        server.start()
        ... point clients at server.port ...
        report = server.wait(timeout=3600)
    """

    config: SimulationConfig
    n_photons: int
    seed: int = 0
    task_size: int = 100_000
    kernel: KernelName = "vector"
    max_retries: int = 2
    host: str = "127.0.0.1"
    port: int = 0

    _listener: socket.socket | None = field(init=False, default=None)
    _threads: list[threading.Thread] = field(init=False, default_factory=list)
    _queue: "queue.Queue[tuple[TaskSpec, int]]" = field(init=False, default=None)
    _lock: threading.Lock = field(init=False, default_factory=threading.Lock)
    _results: dict[int, TaskResult] = field(init=False, default_factory=dict)
    _retries: int = field(init=False, default=0)
    _failure: BaseException | None = field(init=False, default=None)
    _complete: threading.Event = field(init=False, default_factory=threading.Event)
    _started_at: float = field(init=False, default=0.0)
    _n_tasks: int = field(init=False, default=0)

    def start(self) -> "NetworkServer":
        """Bind, listen and start accepting clients (returns self)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        tasks = [
            TaskSpec(task_index=i, n_photons=count, seed=self.seed, kernel=self.kernel)
            for i, count in enumerate(split_photons(self.n_photons, self.task_size))
        ]
        self._n_tasks = len(tasks)
        self._queue = queue.Queue()
        for task in tasks:
            self._queue.put((task, 1))
        if not tasks:
            self._complete.set()

        self._listener = socket.create_server((self.host, self.port))
        self.port = self._listener.getsockname()[1]
        self._started_at = time.perf_counter()
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._complete.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            )
            handler.start()
            self._threads.append(handler)

    def _serve_client(self, conn: socket.socket) -> None:
        in_flight: tuple[TaskSpec, int] | None = None
        try:
            with conn:
                hello = recv_message(conn)
                if hello.get("type") != "hello":
                    raise ValueError(f"expected hello, got {hello!r}")
                send_message(
                    conn,
                    {"type": "session", "config": self.config, "kernel": self.kernel},
                )

                while True:
                    pull = recv_message(conn)
                    if pull.get("type") != "next":
                        raise ValueError(f"expected next, got {pull!r}")
                    task = None
                    while task is None:
                        try:
                            task, attempt = self._queue.get_nowait()
                        except queue.Empty:
                            if self._complete.is_set() or self._all_merged():
                                send_message(conn, {"type": "done"})
                                return
                            time.sleep(0.01)  # tasks may be re-queued by failures
                    in_flight = (task, attempt)
                    send_message(conn, {"type": "task", "task": task, "attempt": attempt})
                    reply = recv_message(conn)
                    if reply.get("type") != "result":
                        raise ValueError(f"expected result, got {reply!r}")
                    result: TaskResult = reply["result"]
                    in_flight = None
                    with self._lock:
                        self._results[result.task_index] = result
                        if len(self._results) == self._n_tasks:
                            self._complete.set()
        except BaseException as error:  # noqa: BLE001 - client vanished
            logger.warning("client connection ended: %r", error)
            if in_flight is not None:
                task, attempt = in_flight
                with self._lock:
                    if attempt > self.max_retries:
                        self._failure = error
                        self._complete.set()
                    else:
                        self._retries += 1
                        logger.info(
                            "reassigning task %d (attempt %d)",
                            task.task_index, attempt + 1,
                        )
                        self._queue.put((task, attempt + 1))

    def _all_merged(self) -> bool:
        with self._lock:
            return len(self._results) == self._n_tasks

    def wait(self, timeout: float | None = None) -> RunReport:
        """Block until every task is merged; return the report."""
        if not self._complete.wait(timeout):
            raise TimeoutError(f"distributed run incomplete after {timeout}s")
        self.close()
        if self._failure is not None:
            raise RuntimeError(
                "a task exhausted its retry budget"
            ) from self._failure
        ordered = [self._results[i] for i in range(self._n_tasks)]
        if ordered:
            tally = Tally.merge_all([r.tally for r in ordered])
        else:
            tally = Tally(n_layers=len(self.config.stack), records=self.config.records)
        return RunReport(
            tally=tally,
            task_results=ordered,
            wall_seconds=time.perf_counter() - self._started_at,
            retries=self._retries,
        )

    def close(self) -> None:
        """Stop accepting clients and release the port."""
        self._complete.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass


def run_network_client(
    host: str,
    port: int,
    *,
    worker_name: str | None = None,
    max_tasks: int | None = None,
    crash_after: int | None = None,
) -> int:
    """Connect to a :class:`NetworkServer` and execute tasks until done.

    Returns the number of tasks completed.  ``max_tasks`` makes the client
    leave politely after that many tasks (a non-dedicated PC being
    reclaimed); ``crash_after`` makes it drop the connection *mid-task*
    after completing that many tasks (a vanished PC — used by the fault
    tests; the abandoned task is reassigned by the server).
    """
    import os

    name = worker_name or f"net-{os.getpid()}"
    completed = 0
    with socket.create_connection((host, port)) as sock:
        send_message(sock, {"type": "hello", "worker": name})
        session = recv_message(sock)
        if session.get("type") != "session":
            raise ValueError(f"expected session, got {session!r}")
        config = session["config"]

        while True:
            if max_tasks is not None and completed >= max_tasks:
                return completed  # leave politely: just stop pulling
            send_message(sock, {"type": "next"})
            message = recv_message(sock)
            if message.get("type") == "done":
                return completed
            if message.get("type") != "task":
                raise ValueError(f"unexpected message {message!r}")
            if crash_after is not None and completed >= crash_after:
                # Simulate a powered-off PC: vanish mid-task without a word.
                sock.shutdown(socket.SHUT_RDWR)
                return completed
            task: TaskSpec = message["task"]
            result = execute_task(config, task, attempt=message["attempt"])
            result.worker_id = name
            send_message(sock, {"type": "result", "result": result})
            completed += 1
