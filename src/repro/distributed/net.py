"""TCP network mode: DataManager as a real server, Algorithm as a client.

The paper's platform ran the DataManager "on the server" with client PCs
connecting over the campus network ("All the clients connected to a
dedicated server running Linux...").  The in-process backends of
:mod:`repro.distributed.backends` prove the scheduling logic; this module
provides the actual wire deployment: a threaded TCP server that hands
photon-batch tasks to any number of connecting clients, merges their
results, and survives the full fault taxonomy of non-dedicated machines —
clients that vanish (reassignment), clients that hang while still connected
(heartbeat timeout), stragglers (deadline-driven speculative re-dispatch)
and clients that return garbage (merge-time validation).  It reports the
same :class:`~repro.distributed.datamanager.RunReport`, including per-worker
health, and can checkpoint/resume through a
:class:`~repro.distributed.checkpoint.CheckpointManager`.

Wire protocol (length-prefixed pickles, trusted-network only — exactly the
trust model of the paper's Java serialisation):

    client -> server   {"type": "hello", "worker": str, "compress": bool,
                        "codec": bool}
    server -> client   {"type": "session", "config": ..., "kernel": ...,
                        "compress": bool, "codec": bool}
    client -> server   {"type": "next"}                           ┐
    server -> client   {"type": "task", "task": TaskSpec|SpanSpec,│ repeats
                        "attempt": int} | {"type": "done"}        │
    client -> server   {"type": "heartbeat"}   (0+ while working) │
    client -> server   {"type": "result", "result": TaskResult}   ┘

The pull ("next") step makes departures unambiguous: a client that closes
instead of pulling owes the server nothing; only a connection lost between
task dispatch and result delivery triggers reassignment.  Heartbeats flow
while a client computes, so a hung-but-connected client is detected when
``heartbeat_timeout`` elapses without any message, and its task reassigned.

Frame compression: tally payloads dominate the traffic (per-task grids and
histograms), so frames may optionally be zlib-compressed.  The feature is
negotiated per connection — a client advertises ``"compress": True`` in its
hello, and the server enables it only when constructed with
``compress=True`` (off by default) — and is carried in-band: the top bit of
the 8-byte length prefix marks a compressed frame, so small frames
(heartbeats, pulls) skip compression with zero overhead.

Two further coordinator-throughput features are negotiated the same way:

* **Zero-copy tally transport** (``"codec"``): a client that advertises
  support ships each result's tally as one contiguous
  :class:`~repro.io.codec.EncodedTally` buffer instead of a pickled
  :class:`~repro.core.tally.Tally`; the server reconstructs it as
  ``np.frombuffer`` views into the received frame (the frame itself is
  read with ``recv_into`` into a preallocated ``bytearray``, so the bytes
  are copied exactly once off the socket).  On by default on both sides;
  a legacy peer simply keeps the pickled form.
* **Span dispatch** (``span_size``): tasks are grouped into tree-aligned
  :class:`~repro.distributed.protocol.SpanSpec` units; the client folds
  each span worker-side (``reduce.worker_folds`` counts the merges the
  server no longer performs) and returns one partial per span, dropping
  result payload count from n_tasks to n_spans bit-identically.
"""

from __future__ import annotations

import logging
import pickle
import queue
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import SimulationConfig
from ..core.reduce import PairwiseReducer
from ..core.simulation import KernelName, split_photons
from ..core.tally import Tally
from .checkpoint import CheckpointManager, run_key
from .datamanager import RunReport
from .health import WorkerHealth
from .protocol import (
    ResultValidationError,
    SpanSpec,
    TaskResult,
    TaskSpec,
    freeze_result,
    make_units,
    thaw_result,
    validate_result,
)
from .worker import execute_unit

__all__ = [
    "ProtocolError",
    "send_message",
    "recv_message",
    "NetworkServer",
    "run_network_client",
]

logger = logging.getLogger(__name__)

_LENGTH = struct.Struct(">Q")

#: Top bit of the length prefix marks a zlib-compressed frame; the low 63
#: bits remain the (compressed) payload length.
_COMPRESS_FLAG = 1 << 63
_LENGTH_MASK = _COMPRESS_FLAG - 1

#: Frames below this size are never compressed (control messages,
#: heartbeats — the zlib header would cost more than it saves).
_COMPRESS_MIN = 1 << 10

#: Refuse messages above this size (corrupt length prefix guard).
_MAX_MESSAGE = 1 << 30

#: How often an idle handler re-checks the task queue / scans for stragglers.
_DISPATCH_POLL = 0.05


class ProtocolError(ConnectionError):
    """The peer sent bytes that cannot be a protocol message.

    Covers corrupt or hostile length prefixes (value above the message-size
    cap) and payloads that do not decode — both mean the stream is
    unrecoverable, so this is a :class:`ConnectionError`: the connection
    must be dropped, and any task it carried reassigned.
    """


def send_message(sock: socket.socket, obj, *, compress: bool = False, saved_cb=None) -> int:
    """Send one length-prefixed pickled message; returns bytes put on the wire.

    With ``compress=True`` payloads of at least ``_COMPRESS_MIN`` bytes are
    zlib-compressed when that actually shrinks them, flagged by the top bit
    of the length prefix.  ``saved_cb``, when given, receives the bytes
    saved by compression (the ``net.bytes_saved`` hook).  Only enable
    compression towards a peer that negotiated it — a pre-compression peer
    would misread the flagged prefix as an oversized frame.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = len(payload)
    if compress and len(payload) >= _COMPRESS_MIN:
        squeezed = zlib.compress(payload)
        if len(squeezed) < len(payload):
            if saved_cb is not None:
                saved_cb(len(payload) - len(squeezed))
            payload = squeezed
            header = len(payload) | _COMPRESS_FLAG
    sock.sendall(_LENGTH.pack(header) + payload)
    return _LENGTH.size + len(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes into one preallocated buffer.

    ``recv_into`` a single ``bytearray`` instead of the old
    chunk-list-then-join: the bytes are copied exactly once off the socket,
    and the returned buffer is *writable* — so a zero-copy decoded tally
    (``np.frombuffer`` views into this very buffer) can be merged into in
    place by the reducer.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:], n - got)
        if not read:
            raise ConnectionError("peer closed the connection mid-message")
        got += read
    return buf


def recv_message(sock: socket.socket, *, max_size: int = _MAX_MESSAGE, size_cb=None):
    """Receive one length-prefixed pickled message.

    ``size_cb``, when given, is called with the total bytes read off the
    wire for this message (prefix included) — the hook the telemetered
    server uses to count traffic without a second protocol layer.

    Raises :class:`ConnectionError` on a truncated stream and
    :class:`ProtocolError` (a ``ConnectionError`` subclass) on a length
    prefix above ``max_size`` or an undecodable payload — a garbage prefix
    must never make the receiver allocate gigabytes or interpret noise.
    """
    (header,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    compressed = bool(header & _COMPRESS_FLAG)
    length = header & _LENGTH_MASK
    if length > max_size:
        raise ProtocolError(
            f"message of {length} bytes exceeds the {max_size} cap "
            "(corrupt length prefix?)"
        )
    payload = _recv_exact(sock, length)
    if size_cb is not None:
        size_cb(_LENGTH.size + length)
    if compressed:
        # Bounded decompression: a hostile/corrupt frame must not expand
        # past the same cap the prefix is held to (zlib-bomb guard).
        decomp = zlib.decompressobj()
        try:
            payload = decomp.decompress(payload, max_size)
        except zlib.error as exc:
            raise ProtocolError(f"corrupt compressed payload: {exc!r}") from exc
        if decomp.unconsumed_tail or not decomp.eof:
            raise ProtocolError(
                "compressed payload is truncated or decompresses past the "
                f"{max_size} cap"
            )
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is fatal
        raise ProtocolError(f"undecodable message payload: {exc!r}") from exc


class _WorkerHung(ConnectionError):
    """A connected client stopped sending heartbeats mid-task."""


@dataclass
class NetworkServer:
    """The DataManager as a TCP server.

    Parameters mirror :class:`~repro.distributed.datamanager.DataManager`;
    ``host``/``port`` choose the listening endpoint (port 0 picks a free
    port, exposed as :attr:`port` after :meth:`start`).

    Fault-tolerance knobs:

    ``heartbeat_timeout``
        Seconds without any message from a client that is holding a task
        before it is declared hung, its connection dropped and its task
        reassigned.  ``None`` (default) disables hang detection.
    ``task_deadline`` / ``max_speculative``
        A task dispatched longer than ``task_deadline`` seconds ago is
        speculatively re-dispatched to the next idle client (at most
        ``max_speculative`` duplicates per task); the first result wins and
        late duplicates are discarded by task index.
    ``blacklist_after``
        A client whose connection fails this many consecutive times stops
        receiving tasks (it is sent ``done`` on its next pull).
    ``checkpoint``
        A :class:`~repro.distributed.checkpoint.CheckpointManager` or
        directory path; completed tasks are persisted as they merge and
        reloaded by a future server with the same run key.
    ``compress``
        Offer zlib frame compression to clients (negotiated per
        connection; a client that does not advertise support keeps an
        uncompressed stream).  Off by default.
    ``codec``
        Offer zero-copy tally transport (negotiated per connection like
        compression; on by default).  A client that advertises support
        returns each tally as one :class:`~repro.io.codec.EncodedTally`
        buffer, decoded server-side into ``np.frombuffer`` views; the
        ``codec.bytes`` / ``codec.bytes_saved`` counters quantify it.
    ``span_size``
        Tasks per dispatch unit (``None`` keeps per-task dispatch): tasks
        are grouped into tree-aligned spans, each client folds its span
        into the canonical subtree partial and the server performs one
        merge per span instead of per task — bit-identically (the
        ``reduce.worker_folds`` counter reports the merges delegated).
    ``sub_batch``
        Vectorized-kernel sub-batch override shipped with every task
        (execution-only; participates in the checkpoint run key).
    ``capture_paths``
        Ship ``capture_paths=True`` with every task: clients record
        per-detected-photon path records, sealed under the task index, so
        the merged ``Tally.paths`` is bit-identical to a serial capture
        run of the same ``task_size`` (raw material for
        :mod:`repro.perturb`).
    ``retain_task_tallies``
        As on :class:`~repro.distributed.datamanager.DataManager`:
        ``False`` releases each task tally once it is folded into the
        incremental pairwise reduction, bounding resident tallies at
        ~⌈log₂ n_tasks⌉ + tasks in flight.
    ``telemetry``
        Optional :class:`~repro.observe.Telemetry`.  The server then emits
        per-task wire round-trip spans (``net.task``) and counts traffic
        (``net.bytes_sent`` / ``net.bytes_recv``, plus ``net.bytes_saved``
        when compression is active), round-trips, heartbeats (with a
        ``net.heartbeat_gap_s`` histogram of inter-message gaps while a
        client computes) and connected clients, and attaches the final
        metrics snapshot to the :class:`RunReport`.

    Usage::

        server = NetworkServer(config, n_photons=10**6, task_size=10**4)
        server.start()
        ... point clients at server.port ...
        report = server.wait(timeout=3600)
    """

    config: SimulationConfig
    n_photons: int
    seed: int = 0
    task_size: int = 100_000
    kernel: KernelName = "vector"
    max_retries: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_timeout: float | None = None
    task_deadline: float | None = None
    max_speculative: int = 1
    blacklist_after: int | None = 3
    checkpoint: CheckpointManager | str | Path | None = None
    compress: bool = False
    codec: bool = True
    retain_task_tallies: bool = True
    telemetry: object | None = None
    span_size: int | None = None
    sub_batch: int | None = None
    capture_paths: bool = False

    _listener: socket.socket | None = field(init=False, default=None)
    _threads: list[threading.Thread] = field(init=False, default_factory=list)
    _queue: "queue.Queue[tuple[TaskSpec, int]]" = field(init=False, default=None)
    _n_units: int = field(init=False, default=0)
    _lock: threading.Lock = field(init=False, default_factory=threading.Lock)
    _results: dict[int, TaskResult] = field(init=False, default_factory=dict)
    _retries: int = field(init=False, default=0)
    _failures: dict[int, int] = field(init=False, default_factory=dict)
    _spec_count: dict[int, int] = field(init=False, default_factory=dict)
    _speculative: int = field(init=False, default=0)
    _inflight_count: dict[int, int] = field(init=False, default_factory=dict)
    _inflight_task: dict[int, TaskSpec] = field(init=False, default_factory=dict)
    _dispatch_times: dict[int, float] = field(init=False, default_factory=dict)
    _failure: BaseException | None = field(init=False, default=None)
    _complete: threading.Event = field(init=False, default_factory=threading.Event)
    _started_at: float = field(init=False, default=0.0)
    _n_tasks: int = field(init=False, default=0)
    _health: WorkerHealth = field(init=False, default=None)
    _reducer: PairwiseReducer | None = field(init=False, default=None)
    _ckpt: CheckpointManager | None = field(init=False, default=None)
    _conns: set = field(init=False, default_factory=set)
    _closed: bool = field(init=False, default=False)
    _close_lock: threading.Lock = field(init=False, default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError(f"n_photons must be >= 0, got {self.n_photons}")
        if self.task_size <= 0:
            raise ValueError(f"task_size must be > 0, got {self.task_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0 or None, got {self.heartbeat_timeout}"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError(
                f"task_deadline must be > 0 or None, got {self.task_deadline}"
            )
        if self.max_speculative < 0:
            raise ValueError(
                f"max_speculative must be >= 0, got {self.max_speculative}"
            )
        if self.span_size is not None and self.span_size < 1:
            raise ValueError(
                f"span_size must be >= 1 or None, got {self.span_size}"
            )
        if self.sub_batch is not None and self.sub_batch <= 0:
            raise ValueError(f"sub_batch must be > 0 or None, got {self.sub_batch}")

    def run_key(self) -> dict:
        """Identity of this run's decomposition (for checkpoint matching)."""
        return run_key(
            n_photons=self.n_photons,
            seed=self.seed,
            task_size=self.task_size,
            kernel=self.kernel,
            span_size=self.span_size,
            sub_batch=self.sub_batch,
            capture_paths=self.capture_paths,
        )

    def _fold(self, idx: int, result: TaskResult) -> None:
        """Feed a merged unit's tally into the reduction tree (lock held)."""
        leaf = result.tally
        span = result.span
        if not self.retain_task_tallies:
            result.release_tally()
        # Codec-decoded tallies may be zero-copy views into a read-only
        # buffer; the reducer may only accumulate into writable arrays.
        owned = (
            not self.retain_task_tallies
        ) and leaf.absorbed_by_layer.flags.writeable
        if span is not None:
            self._reducer.add_span(span[0], span[1], leaf, owned=owned)
            if self.telemetry is not None and span[1] - span[0] > 1:
                self.telemetry.count("reduce.worker_folds", span[1] - span[0] - 1)
        else:
            self._reducer.add(idx, leaf, owned=owned)

    def start(self) -> "NetworkServer":
        """Bind, listen and start accepting clients (returns self)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._health = WorkerHealth(blacklist_after=self.blacklist_after)
        tasks = [
            TaskSpec(
                task_index=i, n_photons=count, seed=self.seed, kernel=self.kernel,
                sub_batch=self.sub_batch, capture_paths=self.capture_paths,
            )
            for i, count in enumerate(split_photons(self.n_photons, self.task_size))
        ]
        units = make_units(tasks, self.span_size)
        self._n_tasks = len(tasks)
        self._n_units = len(units)
        if self.checkpoint is not None:
            self._ckpt = (
                self.checkpoint
                if isinstance(self.checkpoint, CheckpointManager)
                else CheckpointManager(self.checkpoint)
            )
            restored = self._ckpt.load(self.run_key())
            self._results.update(
                (i, r) for i, r in restored.items() if i < self._n_units
            )
            if self._results:
                logger.info(
                    "resumed %d completed units from checkpoint %s",
                    len(self._results), self._ckpt.directory,
                )
        # Results fold into the canonical pairwise tree as they arrive;
        # checkpointed results re-enter through the same reducer, so a
        # resumed run stays bit-identical to an uninterrupted one.  Span
        # partials enter at their subtree node (add_span).
        if self._n_tasks:
            self._reducer = PairwiseReducer(self._n_tasks, telemetry=self.telemetry)
            for i in sorted(self._results):
                self._fold(i, self._results[i])
        self._queue = queue.Queue()
        for unit in units:
            if unit.task_index not in self._results:
                self._queue.put((unit, 1))
        if len(self._results) == self._n_units:
            self._complete.set()

        self._listener = socket.create_server((self.host, self.port))
        self.port = self._listener.getsockname()[1]
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.emit(
                "run_start",
                n_tasks=self._n_tasks,
                n_photons=self.n_photons,
                restored=len(self._results),
                kernel=self.kernel,
                port=self.port,
            )
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._complete.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            )
            handler.start()
            self._threads.append(handler)

    def _all_merged(self) -> bool:
        with self._lock:
            return len(self._results) == self._n_units

    def _next_task(self) -> tuple[TaskSpec, int] | None:
        """Pull the next live task, blocking; None means the run is over.

        Replaces the old busy-wait (``get_nowait`` + ``sleep``) with a
        blocking ``get``; the timeout exists only so an idle handler can
        notice completion and scan for stragglers to speculate on.
        """
        while True:
            try:
                task, attempt = self._queue.get(timeout=_DISPATCH_POLL)
            except queue.Empty:
                if self._complete.is_set() or self._all_merged():
                    return None
                self._maybe_speculate()
                continue
            with self._lock:
                if task.task_index in self._results:
                    continue  # stale retry/speculative entry; drop it
            return task, attempt

    def _maybe_speculate(self) -> None:
        """Re-dispatch straggling tasks past their deadline to idle clients."""
        if self.task_deadline is None:
            return
        now = time.perf_counter()
        with self._lock:
            for idx, count in self._inflight_count.items():
                if count <= 0 or idx in self._results:
                    continue
                if now - self._dispatch_times[idx] <= self.task_deadline:
                    continue
                if self._spec_count.get(idx, 0) >= self.max_speculative:
                    continue
                self._spec_count[idx] = self._spec_count.get(idx, 0) + 1
                self._speculative += 1
                task = self._inflight_task[idx]
                attempt = self._failures.get(idx, 0) + self._spec_count[idx] + 1
                logger.info(
                    "task %d exceeded the %.2fs deadline; "
                    "queueing speculative duplicate",
                    idx, self.task_deadline,
                )
                self._queue.put((task, attempt))

    def _record_dispatch(self, task: TaskSpec, attempt: int) -> None:
        with self._lock:
            idx = task.task_index
            self._inflight_count[idx] = self._inflight_count.get(idx, 0) + 1
            self._inflight_task[idx] = task
            self._dispatch_times[idx] = time.perf_counter()

    def _record_settled(self, task: TaskSpec) -> None:
        with self._lock:
            idx = task.task_index
            self._inflight_count[idx] = max(0, self._inflight_count.get(idx, 0) - 1)

    def _handle_failure(
        self, task: TaskSpec, attempt: int, error: BaseException
    ) -> None:
        """A dispatched attempt was lost or rejected: requeue or give up."""
        with self._lock:
            idx = task.task_index
            if idx in self._results or self._closed:
                return  # a duplicate already delivered, or the run is over
            self._failures[idx] = self._failures.get(idx, 0) + 1
            if self._failures[idx] > self.max_retries:
                if self._inflight_count.get(idx, 0) > 0:
                    return  # a speculative sibling is still out there
                self._failure = error
                self._complete.set()
                return
            self._retries += 1
            logger.info(
                "reassigning task %d (attempt %d)", idx, attempt + 1
            )
            self._queue.put((task, attempt + 1))

    def _merge_result(self, worker: str, task: TaskSpec, result: TaskResult) -> None:
        with self._lock:
            idx = result.task_index
            if idx in self._results:
                # Speculative duplicate: discarded *before* reduction, so it
                # can never be double-counted in the merged tally.
                logger.info("discarding duplicate result of task %d", idx)
                return
            self._results[idx] = result
            if self._ckpt is not None:
                self._ckpt.record(result)
            self._fold(idx, result)
            if len(self._results) == self._n_units:
                self._complete.set()
        self._health.record_success(worker, result.elapsed_seconds)

    def _send(self, conn: socket.socket, obj, *, compress: bool = False) -> None:
        tel = self.telemetry
        saved_cb = (
            tel.registry.counter("net.bytes_saved").add if tel is not None else None
        )
        n = send_message(conn, obj, compress=compress, saved_cb=saved_cb)
        if tel is not None:
            tel.registry.counter("net.bytes_sent").add(n)

    def _recv(self, conn: socket.socket):
        tel = self.telemetry
        if tel is None:
            return recv_message(conn)
        return recv_message(
            conn, size_cb=tel.registry.counter("net.bytes_recv").add
        )

    def _client_gauge(self, delta: int) -> None:
        tel = self.telemetry
        if tel is not None:
            with self._lock:
                tel.gauge("net.clients", len(self._conns))

    def _serve_client(self, conn: socket.socket) -> None:
        in_flight: tuple[TaskSpec, int] | None = None
        task_span = None
        worker = "?"
        tel = self.telemetry
        with self._lock:
            self._conns.add(conn)
        self._client_gauge(+1)
        try:
            with conn:
                hello = self._recv(conn)
                if hello.get("type") != "hello":
                    raise ProtocolError(f"expected hello, got {hello!r}")
                worker = str(hello.get("worker", "?"))
                # Compression and zero-copy tally transport are negotiated
                # per connection: on only when the server offers the feature
                # AND this client advertised support.
                wire_compress = bool(self.compress and hello.get("compress"))
                wire_codec = bool(self.codec and hello.get("codec"))
                self._send(
                    conn,
                    {
                        "type": "session",
                        "config": self.config,
                        "kernel": self.kernel,
                        "compress": wire_compress,
                        "codec": wire_codec,
                    },
                    compress=wire_compress,
                )

                while True:
                    pull = self._recv(conn)
                    if pull.get("type") == "heartbeat":
                        continue  # idle heartbeats are harmless noise
                    if pull.get("type") != "next":
                        raise ProtocolError(f"expected next, got {pull!r}")
                    if self._health.is_blacklisted(worker):
                        logger.warning(
                            "worker %s is blacklisted; refusing work", worker
                        )
                        self._send(conn, {"type": "done"})
                        return
                    handout = self._next_task()
                    if handout is None:
                        self._send(conn, {"type": "done"})
                        return
                    task, attempt = handout
                    self._record_dispatch(task, attempt)
                    in_flight = (task, attempt)
                    if tel is not None:
                        task_span = tel.span_begin(
                            "net.task", task=task.task_index, attempt=attempt,
                            worker=worker, photons=task.n_photons,
                        )
                    self._send(
                        conn,
                        {"type": "task", "task": task, "attempt": attempt},
                        compress=wire_compress,
                    )

                    # Await the result; heartbeats keep the window open, and
                    # a silent-but-connected client trips the timeout.
                    if self.heartbeat_timeout is not None:
                        conn.settimeout(self.heartbeat_timeout)
                    last_message = time.perf_counter()
                    try:
                        while True:
                            try:
                                reply = self._recv(conn)
                            except (socket.timeout, TimeoutError):
                                raise _WorkerHung(
                                    f"no heartbeat from {worker} within "
                                    f"{self.heartbeat_timeout}s"
                                ) from None
                            if tel is not None:
                                now = time.perf_counter()
                                tel.observe(
                                    "net.heartbeat_gap_s", now - last_message
                                )
                                last_message = now
                            if reply.get("type") == "heartbeat":
                                if tel is not None:
                                    tel.registry.counter("net.heartbeats").inc()
                                continue
                            if reply.get("type") != "result":
                                raise ProtocolError(f"expected result, got {reply!r}")
                            break
                    finally:
                        conn.settimeout(None)
                    result: TaskResult = reply["result"]
                    self._record_settled(task)
                    in_flight = None
                    if tel is not None:
                        tel.count("net.round_trips", worker=worker)
                    try:
                        # Decode a codec-encoded tally before validation;
                        # CodecError is a ValueError, so a corrupt encoded
                        # payload is rejected and retried like any other
                        # bad result rather than crashing the handler.
                        thaw_result(result, telemetry=tel)
                        validate_result(result, task)
                    except ValueError as error:
                        logger.warning(
                            "rejecting result of task %d from %s: %s",
                            task.task_index, worker, error,
                        )
                        if tel is not None and task_span is not None:
                            tel.span_finish(
                                "net.task", task_span, outcome="rejected"
                            )
                            task_span = None
                        self._health.record_failure(worker)
                        self._handle_failure(task, attempt, error)
                        continue
                    n_launched = result.tally.n_launched
                    self._merge_result(worker, task, result)
                    if tel is not None:
                        if task_span is not None:
                            tel.span_finish("net.task", task_span, outcome="merged")
                            task_span = None
                        tel.count("worker.photons", n_launched, worker=worker)
                        tel.observe("task.seconds", result.elapsed_seconds)
                        with self._lock:
                            done, total = len(self._results), self._n_units
                        tel.progress_update(done, total)
        except BaseException as error:  # noqa: BLE001 - client vanished/hung
            logger.warning("client connection ended: %r", error)
            if in_flight is not None:
                task, attempt = in_flight
                self._record_settled(task)
                if tel is not None and task_span is not None:
                    tel.span_finish("net.task", task_span, outcome="lost")
                self._health.record_failure(worker)
                self._handle_failure(task, attempt, error)
        finally:
            with self._lock:
                self._conns.discard(conn)
            self._client_gauge(-1)

    def wait(self, timeout: float | None = None) -> RunReport:
        """Block until every task is merged; return the report."""
        if not self._complete.wait(timeout):
            raise TimeoutError(f"distributed run incomplete after {timeout}s")
        self.close()
        if self._failure is not None:
            raise RuntimeError(
                "a task exhausted its retry budget"
            ) from self._failure
        ordered = [self._results[i] for i in range(self._n_units)]
        tel = self.telemetry
        if self._reducer is not None:
            # Every result was folded in as it arrived — no end-of-run
            # merge pass (and no "merge" span) remains.
            tally = self._reducer.result()
        else:
            tally = Tally(n_layers=len(self.config.stack), records=self.config.records)
        health = self._health.snapshot() if self._health is not None else {}
        wall = time.perf_counter() - self._started_at
        metrics = None
        if tel is not None:
            tel.gauge("run.photons_per_s", tally.n_launched / wall if wall else 0.0)
            tel.emit("run_end", n_tasks=self._n_tasks, wall_seconds=wall,
                     retries=self._retries, speculative=self._speculative)
            metrics = tel.snapshot()
        return RunReport(
            tally=tally,
            task_results=ordered,
            wall_seconds=wall,
            retries=self._retries,
            speculative_duplicates=self._speculative,
            worker_health=health,
            metrics=metrics,
        )

    def close(self) -> None:
        """Stop accepting clients, release the port and join handler threads.

        Idempotent: safe to call repeatedly (``wait`` calls it on success,
        error paths call it again).  Joining the handler threads means a
        timed-out ``wait`` does not leak daemon threads blocked on reads.
        """
        with self._close_lock:
            first = not self._closed
            self._closed = True
        self._complete.set()
        if first and self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        # Grace period: handlers answer their client's final pull with
        # "done" and exit on their own — force-closing immediately would
        # sever clients mid-farewell.
        current = threading.current_thread()
        deadline = time.monotonic() + 2.0
        for thread in list(self._threads):
            if thread is not current:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        # Anything still alive is stuck on a silent peer: sever it.
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in list(self._threads):
            if thread is not current:
                thread.join(timeout=5.0)
        if self._ckpt is not None:
            self._ckpt.flush()


def run_network_client(
    host: str,
    port: int,
    *,
    worker_name: str | None = None,
    max_tasks: int | None = None,
    crash_after: int | None = None,
    hang_after: int | None = None,
    slow_down: float | None = None,
    corrupt_first: bool = False,
    heartbeat_interval: float | None = 2.0,
) -> int:
    """Connect to a :class:`NetworkServer` and execute tasks until done.

    Returns the number of tasks completed.  While a task is computing, a
    background thread sends a heartbeat every ``heartbeat_interval`` seconds
    (``None`` disables them) so the server can tell "working" from "hung".

    The remaining knobs simulate non-dedicated-PC behaviour for the fault
    tests: ``max_tasks`` makes the client leave politely after that many
    tasks (a PC being reclaimed); ``crash_after`` makes it drop the
    connection *mid-task* (a powered-off PC; the abandoned task is
    reassigned); ``hang_after`` makes it accept a task and then go silent —
    no heartbeats, connection open — until the server cuts it off (a wedged
    process; the server's heartbeat timeout reclaims the task);
    ``slow_down`` adds that many seconds to every task while still
    heartbeating (a straggler; the server's ``task_deadline`` speculation
    should outrun it); ``corrupt_first`` poisons the first returned tally
    with a NaN (a broken client; merge-time validation must reject it).
    """
    import os

    name = worker_name or f"net-{os.getpid()}"
    completed = 0
    send_lock = threading.Lock()
    with socket.create_connection((host, port)) as sock:
        # Always advertise compression and codec support; the server
        # decides whether this connection actually uses them.
        send_message(
            sock, {"type": "hello", "worker": name, "compress": True, "codec": True}
        )
        session = recv_message(sock)
        if session.get("type") != "session":
            raise ValueError(f"expected session, got {session!r}")
        config = session["config"]
        wire_compress = bool(session.get("compress"))
        wire_codec = bool(session.get("codec"))

        while True:
            if max_tasks is not None and completed >= max_tasks:
                return completed  # leave politely: just stop pulling
            with send_lock:
                send_message(sock, {"type": "next"})
            message = recv_message(sock)
            if message.get("type") == "done":
                return completed
            if message.get("type") != "task":
                raise ValueError(f"unexpected message {message!r}")
            if crash_after is not None and completed >= crash_after:
                # Simulate a powered-off PC: vanish mid-task without a word.
                sock.shutdown(socket.SHUT_RDWR)
                return completed
            if hang_after is not None and completed >= hang_after:
                # Simulate a wedged process: hold the task, send nothing,
                # and sit on the open connection until the server drops us.
                try:
                    sock.settimeout(60.0)
                    recv_message(sock)
                except (OSError, ConnectionError):
                    pass
                return completed
            task: TaskSpec | SpanSpec = message["task"]

            stop_beats = threading.Event()

            def _beat() -> None:
                while not stop_beats.wait(heartbeat_interval):
                    try:
                        with send_lock:
                            send_message(sock, {"type": "heartbeat"})
                    except OSError:
                        return

            beater = None
            if heartbeat_interval is not None:
                beater = threading.Thread(target=_beat, daemon=True)
                beater.start()
            try:
                result = execute_unit(config, task, attempt=message["attempt"])
                if slow_down is not None:
                    time.sleep(slow_down)
            finally:
                stop_beats.set()
            if beater is not None:
                beater.join(timeout=5.0)
            result.worker_id = name
            if corrupt_first and completed == 0:
                # Poison *before* freezing so the corruption travels through
                # the codec exactly like a genuinely broken client's would.
                result.tally.diffuse_reflectance_weight = float("nan")
            if wire_codec:
                freeze_result(result)
            with send_lock:
                send_message(
                    sock,
                    {"type": "result", "result": result},
                    compress=wire_compress,
                )
            completed += 1
