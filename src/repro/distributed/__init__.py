"""Master-worker distributed platform (the paper's DataManager/Algorithm)."""

from .backends import (
    BACKEND_NAMES,
    Backend,
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .campaign import Campaign, Experiment
from .checkpoint import CheckpointError, CheckpointManager, run_key
from .datamanager import DataManager, RunReport, TaskFailedError
from .faults import FaultInjector, WorkerCrash
from .health import WorkerHealth, WorkerStats
from .net import (
    NetworkServer,
    ProtocolError,
    recv_message,
    run_network_client,
    send_message,
)
from .protocol import (
    ResultValidationError,
    SpanSpec,
    TaskResult,
    TaskSpec,
    decode,
    encode,
    freeze_result,
    make_units,
    thaw_result,
    validate_result,
)
from .worker import execute_span, execute_task, execute_unit, worker_identity

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "Campaign",
    "CheckpointError",
    "CheckpointManager",
    "DataManager",
    "Experiment",
    "FaultInjector",
    "MultiprocessingBackend",
    "NetworkServer",
    "ProtocolError",
    "ResultValidationError",
    "RunReport",
    "SerialBackend",
    "SpanSpec",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "ThreadBackend",
    "WorkerCrash",
    "WorkerHealth",
    "WorkerStats",
    "decode",
    "encode",
    "execute_span",
    "execute_task",
    "execute_unit",
    "freeze_result",
    "make_backend",
    "make_units",
    "recv_message",
    "run_key",
    "run_network_client",
    "send_message",
    "thaw_result",
    "validate_result",
    "worker_identity",
]
