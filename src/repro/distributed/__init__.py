"""Master-worker distributed platform (the paper's DataManager/Algorithm)."""

from .backends import Backend, MultiprocessingBackend, SerialBackend, ThreadBackend
from .campaign import Campaign, Experiment
from .datamanager import DataManager, RunReport, TaskFailedError
from .faults import FaultInjector, WorkerCrash
from .net import NetworkServer, recv_message, run_network_client, send_message
from .protocol import TaskResult, TaskSpec, decode, encode
from .worker import execute_task, worker_identity

__all__ = [
    "Backend",
    "Campaign",
    "DataManager",
    "Experiment",
    "FaultInjector",
    "MultiprocessingBackend",
    "NetworkServer",
    "RunReport",
    "SerialBackend",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "ThreadBackend",
    "WorkerCrash",
    "decode",
    "encode",
    "recv_message",
    "run_network_client",
    "send_message",
    "execute_task",
    "worker_identity",
]
