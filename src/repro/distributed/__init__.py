"""Master-worker distributed platform (the paper's DataManager/Algorithm)."""

from .backends import (
    BACKEND_NAMES,
    Backend,
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .campaign import Campaign, Experiment
from .checkpoint import CheckpointError, CheckpointManager, run_key
from .datamanager import DataManager, RunReport, TaskFailedError
from .faults import FaultInjector, WorkerCrash
from .health import WorkerHealth, WorkerStats
from .net import (
    NetworkServer,
    ProtocolError,
    recv_message,
    run_network_client,
    send_message,
)
from .protocol import (
    ResultValidationError,
    TaskResult,
    TaskSpec,
    decode,
    encode,
    validate_result,
)
from .worker import execute_task, worker_identity

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "Campaign",
    "CheckpointError",
    "CheckpointManager",
    "DataManager",
    "Experiment",
    "FaultInjector",
    "MultiprocessingBackend",
    "NetworkServer",
    "ProtocolError",
    "ResultValidationError",
    "RunReport",
    "SerialBackend",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "ThreadBackend",
    "WorkerCrash",
    "WorkerHealth",
    "WorkerStats",
    "decode",
    "encode",
    "make_backend",
    "recv_message",
    "run_key",
    "run_network_client",
    "send_message",
    "execute_task",
    "validate_result",
    "worker_identity",
]
