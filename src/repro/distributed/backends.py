"""Execution backends for the distributed platform.

The paper ran its clients as Java processes on non-dedicated PCs.  Here a
*backend* is anything that can execute ``fn(*args)`` calls concurrently and
hand back futures:

* :class:`SerialBackend` — same thread, for tests and as the ground truth
  the distributed results must equal bit-for-bit;
* :class:`ThreadBackend` — a thread pool; concurrency without process
  startup cost (the GIL serialises NumPy dispatch but C inner loops
  release it);
* :class:`MultiprocessingBackend` — a process pool; true parallelism on
  multi-core hosts, the closest local analogue of the paper's cluster.

Backends deliberately expose only ``submit`` / ``shutdown`` /
``max_workers`` — the :class:`~repro.distributed.datamanager.DataManager`
implements scheduling, retries and merging on top, so scheduling policy is
identical across backends.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

__all__ = ["Backend", "SerialBackend", "ThreadBackend", "MultiprocessingBackend"]


class Backend(abc.ABC):
    """Minimal executor interface used by the DataManager."""

    @property
    @abc.abstractmethod
    def max_workers(self) -> int:
        """Number of concurrent workers the backend can run."""

    @abc.abstractmethod
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; return a future of its result."""

    def shutdown(self) -> None:
        """Release resources; the backend must not be used afterwards."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialBackend(Backend):
    """Run every task inline on the calling thread.

    The single-processor baseline P1 of the paper's speedup definition, and
    the reference a distributed run must reproduce exactly.
    """

    @property
    def max_workers(self) -> int:
        return 1

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future


class ThreadBackend(Backend):
    """Thread-pool backend."""

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self._n = n_workers
        self._pool = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="mc-worker"
        )

    @property
    def max_workers(self) -> int:
        return self._n

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class MultiprocessingBackend(Backend):
    """Process-pool backend (true parallelism across cores)."""

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self._n = n_workers
        self._pool = ProcessPoolExecutor(max_workers=n_workers)

    @property
    def max_workers(self) -> int:
        return self._n

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
