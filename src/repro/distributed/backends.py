"""Execution backends for the distributed platform.

The paper ran its clients as Java processes on non-dedicated PCs.  Here a
*backend* is anything that can execute ``fn(*args)`` calls concurrently and
hand back futures:

* :class:`SerialBackend` — same thread, for tests and as the ground truth
  the distributed results must equal bit-for-bit;
* :class:`ThreadBackend` — a thread pool; concurrency without process
  startup cost (the GIL serialises NumPy dispatch but C inner loops
  release it);
* :class:`MultiprocessingBackend` — a process pool; true parallelism on
  multi-core hosts, the closest local analogue of the paper's cluster.

Backends deliberately expose only ``submit`` / ``shutdown`` /
``max_workers`` — the :class:`~repro.distributed.datamanager.DataManager`
implements scheduling, retries and merging on top, so scheduling policy is
identical across backends.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "MultiprocessingBackend",
    "BACKEND_NAMES",
    "make_backend",
]


class Backend(abc.ABC):
    """Minimal executor interface used by the DataManager."""

    #: Whether submitted callables run in this process (and can therefore
    #: share in-process objects like a live Telemetry handle).
    in_process: bool = True

    @property
    @abc.abstractmethod
    def max_workers(self) -> int:
        """Number of concurrent workers the backend can run."""

    @abc.abstractmethod
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; return a future of its result."""

    def shutdown(self) -> None:
        """Release resources; the backend must not be used afterwards."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialBackend(Backend):
    """Run every task inline on the calling thread.

    The single-processor baseline P1 of the paper's speedup definition, and
    the reference a distributed run must reproduce exactly.
    """

    @property
    def max_workers(self) -> int:
        return 1

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future


class ThreadBackend(Backend):
    """Thread-pool backend."""

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self._n = n_workers
        self._pool = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="mc-worker"
        )

    @property
    def max_workers(self) -> int:
        return self._n

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        # Queued-but-unstarted attempts are superseded duplicates by the
        # time the DataManager shuts a backend down; cancel instead of
        # running them to completion.
        self._pool.shutdown(wait=True, cancel_futures=True)


class MultiprocessingBackend(Backend):
    """Process-pool backend (true parallelism across cores)."""

    in_process = False

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self._n = n_workers
        self._pool = ProcessPoolExecutor(max_workers=n_workers)

    @property
    def max_workers(self) -> int:
        return self._n

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


#: Canonical backend names accepted by :func:`make_backend` (and the CLI's
#: ``--backend`` flag).
BACKEND_NAMES = ("serial", "thread", "process")

_ALIASES = {
    "serial": "serial",
    "sync": "serial",
    "thread": "thread",
    "threads": "thread",
    "threading": "thread",
    "process": "process",
    "processes": "process",
    "mp": "process",
    "multiprocessing": "process",
}


def make_backend(name: str = "serial", n_workers: int = 1) -> Backend:
    """Construct a backend by name — the one blessed construction path.

    ``name`` is one of :data:`BACKEND_NAMES` (a few obvious aliases such as
    ``"multiprocessing"`` are accepted); ``n_workers`` sizes the pool and is
    ignored by the serial backend (which is always one worker).  Use as a
    context manager so the pool is shut down::

        with make_backend("process", 4) as backend:
            report = manager.run(backend)
    """
    try:
        canonical = _ALIASES[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
        ) from None
    if n_workers <= 0:
        raise ValueError(f"n_workers must be > 0, got {n_workers}")
    if canonical == "serial":
        return SerialBackend()
    if canonical == "thread":
        return ThreadBackend(n_workers)
    return MultiprocessingBackend(n_workers)
