"""Optical properties of turbid media.

Units follow the repository convention (DESIGN.md §6): all lengths in
millimetres, so absorption and scattering coefficients are in mm⁻¹ — the
units of Table 1 of the paper.

The paper's Table 1 lists the *transport* (reduced) scattering coefficient
µs′ = µs·(1−g).  A Monte Carlo simulation needs the raw µs and the anisotropy
factor g separately; following the paper's sources (Fukui/Okada adult-head
models) we adopt g = 0.9 for soft tissue and recover µs = µs′/(1−g).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = [
    "OpticalProperties",
    "DEFAULT_ANISOTROPY",
    "DEFAULT_REFRACTIVE_INDEX",
    "AMBIENT_REFRACTIVE_INDEX",
    "SPEED_OF_LIGHT_MM_PER_NS",
]

#: Anisotropy factor used when a model is specified via µs′ only.
DEFAULT_ANISOTROPY = 0.9

#: Refractive index of soft tissue in the NIR range.
DEFAULT_REFRACTIVE_INDEX = 1.4

#: Refractive index of the ambient medium (air) above and below the slab.
AMBIENT_REFRACTIVE_INDEX = 1.0

#: Vacuum speed of light in repository units (mm per ns).
SPEED_OF_LIGHT_MM_PER_NS = 299.792458


@dataclass(frozen=True)
class OpticalProperties:
    """Optical properties of a homogeneous turbid medium.

    Attributes
    ----------
    mu_a:
        Absorption coefficient µa in mm⁻¹.
    mu_s:
        Scattering coefficient µs in mm⁻¹ (*not* the reduced coefficient).
    g:
        Henyey–Greenstein anisotropy factor, the mean cosine of the
        scattering angle.  ``g = -1`` is total back-scattering, ``0`` is
        isotropic, ``1`` complete forward scattering (paper, Table 1 footnote).
    n:
        Refractive index.
    """

    mu_a: float
    mu_s: float
    g: float = DEFAULT_ANISOTROPY
    n: float = DEFAULT_REFRACTIVE_INDEX

    def __post_init__(self) -> None:
        if self.mu_a < 0:
            raise ValueError(f"mu_a must be >= 0, got {self.mu_a}")
        if self.mu_s < 0:
            raise ValueError(f"mu_s must be >= 0, got {self.mu_s}")
        if not -1.0 <= self.g <= 1.0:
            raise ValueError(f"g must lie in [-1, 1], got {self.g}")
        if self.n <= 0:
            raise ValueError(f"n must be > 0, got {self.n}")

    # -- derived quantities -------------------------------------------------

    @property
    def mu_t(self) -> float:
        """Total interaction coefficient µt = µa + µs (mm⁻¹)."""
        return self.mu_a + self.mu_s

    @property
    def mu_s_reduced(self) -> float:
        """Reduced (transport) scattering coefficient µs′ = µs(1−g) (mm⁻¹)."""
        return self.mu_s * (1.0 - self.g)

    @property
    def mu_tr(self) -> float:
        """Transport attenuation coefficient µtr = µa + µs′ (mm⁻¹)."""
        return self.mu_a + self.mu_s_reduced

    @property
    def albedo(self) -> float:
        """Single-scattering albedo µs/µt; 0 for a purely absorbing medium."""
        mu_t = self.mu_t
        return self.mu_s / mu_t if mu_t > 0 else 0.0

    @property
    def mean_free_path(self) -> float:
        """Mean free path 1/µt in mm (``inf`` for a transparent medium)."""
        mu_t = self.mu_t
        return 1.0 / mu_t if mu_t > 0 else math.inf

    @property
    def transport_mean_free_path(self) -> float:
        """Transport mean free path 1/µtr in mm (diffusion length scale)."""
        mu_tr = self.mu_tr
        return 1.0 / mu_tr if mu_tr > 0 else math.inf

    @property
    def diffusion_coefficient(self) -> float:
        """Diffusion coefficient D = 1/(3(µa + µs′)) in mm."""
        denom = 3.0 * self.mu_tr
        return 1.0 / denom if denom > 0 else math.inf

    @property
    def effective_attenuation(self) -> float:
        """Effective attenuation µeff = sqrt(µa/D) = sqrt(3 µa (µa+µs′)) in mm⁻¹."""
        return math.sqrt(3.0 * self.mu_a * self.mu_tr)

    @property
    def phase_velocity(self) -> float:
        """Speed of light in the medium, mm/ns."""
        return SPEED_OF_LIGHT_MM_PER_NS / self.n

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_reduced(
        cls,
        mu_a: float,
        mu_s_reduced: float,
        g: float = DEFAULT_ANISOTROPY,
        n: float = DEFAULT_REFRACTIVE_INDEX,
    ) -> "OpticalProperties":
        """Build properties from the *reduced* scattering coefficient µs′.

        This is the constructor used for Table 1 of the paper, which lists
        µs′ rather than µs.  For ``g = 1`` the conversion µs = µs′/(1−g) is
        singular; such media are rejected.
        """
        if not -1.0 <= g < 1.0:
            raise ValueError(f"g must lie in [-1, 1) for reduced-form input, got {g}")
        if mu_s_reduced < 0:
            raise ValueError(f"mu_s_reduced must be >= 0, got {mu_s_reduced}")
        return cls(mu_a=mu_a, mu_s=mu_s_reduced / (1.0 - g), g=g, n=n)

    def with_anisotropy(self, g: float) -> "OpticalProperties":
        """Same medium re-expressed with a different g at constant µs′.

        Useful for similarity-relation ablations: keeps µs′ = µs(1−g) fixed,
        so diffusion-regime observables are (approximately) unchanged.
        """
        if not -1.0 <= g < 1.0:
            raise ValueError(f"g must lie in [-1, 1), got {g}")
        return replace(self, mu_s=self.mu_s_reduced / (1.0 - g), g=g)
