"""Reference tissue models from the paper.

``adult_head`` encodes Table 1 of the paper (thickness and NIR optical
properties of the adult head), ``white_matter`` the homogeneous medium of the
Fig. 3 banana experiment, and ``neonatal_head`` the thinner-superficial-layer
variant the paper discusses via its refs [1, 3] (Fukui/Okada).

Thickness interpretation
------------------------
Table 1 labels its thickness column "(cm)" and lists ranges for scalp
(0.3–1) and skull (0.5–1) but single values 2 and 4 for CSF and grey matter.
Read literally those would be a 20 mm CSF layer and 40 mm of grey matter,
which contradicts both anatomy and the paper's own sources: the Okada/Fukui
adult-head models the paper builds on use ~2 mm CSF and ~4 mm grey matter.
We therefore default to the anatomically consistent reading (CSF 2 mm, grey
4 mm) and expose ``literal_units=True`` for the face-value variant.  The
optical coefficients are in mm⁻¹ exactly as printed.
"""

from __future__ import annotations

from .layer import Layer, LayerStack
from .optical import DEFAULT_ANISOTROPY, DEFAULT_REFRACTIVE_INDEX, OpticalProperties

__all__ = [
    "TABLE1_PROPERTIES",
    "adult_head",
    "white_matter",
    "white_matter_slab",
    "neonatal_head",
    "two_layer_phantom",
]

#: Table 1 of the paper: tissue -> (µs′ mm⁻¹, µa mm⁻¹, default thickness mm).
#: Thickness defaults pick the midpoint of the printed scalp/skull ranges and
#: the anatomically consistent CSF/grey values (see module docstring).
TABLE1_PROPERTIES: dict[str, tuple[float, float, float | None]] = {
    "scalp": (1.9, 0.018, 6.5),
    "skull": (1.6, 0.016, 7.5),
    "csf": (0.25, 0.004, 2.0),
    "grey_matter": (2.2, 0.036, 4.0),
    "white_matter": (9.1, 0.014, None),
}


def _props(mu_s_reduced: float, mu_a: float, g: float, n: float) -> OpticalProperties:
    return OpticalProperties.from_reduced(mu_a=mu_a, mu_s_reduced=mu_s_reduced, g=g, n=n)


def adult_head(
    *,
    scalp_thickness: float | None = None,
    skull_thickness: float | None = None,
    csf_thickness: float | None = None,
    grey_thickness: float | None = None,
    g: float = DEFAULT_ANISOTROPY,
    n: float = DEFAULT_REFRACTIVE_INDEX,
    literal_units: bool = False,
) -> LayerStack:
    """The five-layer adult-head model of Table 1.

    Parameters
    ----------
    scalp_thickness, skull_thickness, csf_thickness, grey_thickness:
        Layer thicknesses in mm; defaults are the Table 1 values as described
        in the module docstring.  White matter is always semi-infinite
        (Table 1 lists no thickness for it).
    g, n:
        Anisotropy and refractive index applied to every layer (Table 1 gives
        only µs′ and µa; see DESIGN.md substitution table).
    literal_units:
        Take the thickness column of Table 1 at face value in cm
        (scalp 6.5 mm, skull 7.5 mm, CSF 20 mm, grey 40 mm).
    """
    defaults = {
        "scalp": 6.5,
        "skull": 7.5,
        "csf": 20.0 if literal_units else 2.0,
        "grey_matter": 40.0 if literal_units else 4.0,
    }
    thickness = {
        "scalp": scalp_thickness if scalp_thickness is not None else defaults["scalp"],
        "skull": skull_thickness if skull_thickness is not None else defaults["skull"],
        "csf": csf_thickness if csf_thickness is not None else defaults["csf"],
        "grey_matter": grey_thickness if grey_thickness is not None else defaults["grey_matter"],
    }
    layers = []
    for name, (mu_s_red, mu_a, _default) in TABLE1_PROPERTIES.items():
        t = thickness.get(name)  # white_matter -> None (semi-infinite)
        layers.append(Layer(name, _props(mu_s_red, mu_a, g, n), t))
    return LayerStack(layers)


def white_matter(
    *, g: float = DEFAULT_ANISOTROPY, n: float = DEFAULT_REFRACTIVE_INDEX
) -> LayerStack:
    """Semi-infinite homogeneous white matter (the Fig. 3 medium)."""
    mu_s_red, mu_a, _ = TABLE1_PROPERTIES["white_matter"]
    return LayerStack.homogeneous(_props(mu_s_red, mu_a, g, n), name="white_matter")


def white_matter_slab(
    thickness: float,
    *,
    g: float = DEFAULT_ANISOTROPY,
    n: float = DEFAULT_REFRACTIVE_INDEX,
) -> LayerStack:
    """A finite slab of white matter (for transmission experiments/tests)."""
    mu_s_red, mu_a, _ = TABLE1_PROPERTIES["white_matter"]
    return LayerStack.homogeneous(_props(mu_s_red, mu_a, g, n), thickness, name="white_matter")


def neonatal_head(
    *, g: float = DEFAULT_ANISOTROPY, n: float = DEFAULT_REFRACTIVE_INDEX
) -> LayerStack:
    """Neonatal-head variant with thinner superficial layers.

    The paper (§2) cites Monte Carlo studies of "the effect of the
    superficial tissue thickness, which differs between adult and neonates"
    [Fukui/Okada].  Following those sources the neonate has roughly
    scalp 2 mm, skull 2 mm, CSF 1.5 mm, grey 4 mm over semi-infinite white
    matter, with the same optical coefficients as Table 1.
    """
    thickness = {"scalp": 2.0, "skull": 2.0, "csf": 1.5, "grey_matter": 4.0}
    layers = []
    for name, (mu_s_red, mu_a, _default) in TABLE1_PROPERTIES.items():
        layers.append(Layer(name, _props(mu_s_red, mu_a, g, n), thickness.get(name)))
    return LayerStack(layers)


def two_layer_phantom(
    top: OpticalProperties,
    bottom: OpticalProperties,
    top_thickness: float,
    *,
    bottom_thickness: float | None = None,
) -> LayerStack:
    """A simple two-layer phantom, handy for boundary-physics tests."""
    return LayerStack(
        [
            Layer("top", top, top_thickness),
            Layer("bottom", bottom, bottom_thickness),
        ]
    )
