"""Tissue geometry and optical properties (Table 1 models)."""

from .layer import Layer, LayerStack
from .models import (
    TABLE1_PROPERTIES,
    adult_head,
    neonatal_head,
    two_layer_phantom,
    white_matter,
    white_matter_slab,
)
from .optical import (
    AMBIENT_REFRACTIVE_INDEX,
    DEFAULT_ANISOTROPY,
    DEFAULT_REFRACTIVE_INDEX,
    SPEED_OF_LIGHT_MM_PER_NS,
    OpticalProperties,
)

__all__ = [
    "Layer",
    "LayerStack",
    "OpticalProperties",
    "TABLE1_PROPERTIES",
    "adult_head",
    "neonatal_head",
    "two_layer_phantom",
    "white_matter",
    "white_matter_slab",
    "AMBIENT_REFRACTIVE_INDEX",
    "DEFAULT_ANISOTROPY",
    "DEFAULT_REFRACTIVE_INDEX",
    "SPEED_OF_LIGHT_MM_PER_NS",
]
