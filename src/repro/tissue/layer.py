"""Layered slab tissue geometry.

The paper's models (homogeneous white matter; the five-layer adult head of
Table 1) are stacks of plane-parallel slabs, infinite in x and y, stacked
along +z with the illuminated surface at z = 0.  ``LayerStack`` is the
geometry object consumed by both the scalar and vectorised transport kernels.

An ambient medium (air, n = 1) sits above z = 0 and below the bottom of the
stack.  The deepest layer may be semi-infinite (``thickness=None``), as the
white-matter layer in Table 1 is ("Thickness: –").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .optical import AMBIENT_REFRACTIVE_INDEX, OpticalProperties

__all__ = ["Layer", "LayerStack"]


@dataclass(frozen=True)
class Layer:
    """One tissue layer: a name, optical properties and a thickness in mm.

    ``thickness=None`` denotes a semi-infinite layer and is only legal for
    the deepest layer of a stack.
    """

    name: str
    properties: OpticalProperties
    thickness: float | None

    def __post_init__(self) -> None:
        if self.thickness is not None and self.thickness <= 0:
            raise ValueError(
                f"layer {self.name!r}: thickness must be > 0 or None, got {self.thickness}"
            )

    @property
    def is_semi_infinite(self) -> bool:
        return self.thickness is None


class LayerStack:
    """An ordered stack of :class:`Layer` objects along +z.

    Parameters
    ----------
    layers:
        Layers from the surface downwards.  Only the last may be
        semi-infinite.
    n_above, n_below:
        Refractive indices of the ambient media above z = 0 and below the
        stack (both default to air).

    Notes
    -----
    The stack exposes per-layer property arrays (``mu_a``, ``mu_s``, ``mu_t``,
    ``g``, ``n``) as NumPy vectors so the vectorised kernel can gather
    per-photon coefficients with a single fancy-index.
    """

    def __init__(
        self,
        layers: Sequence[Layer] | Iterable[Layer],
        *,
        n_above: float = AMBIENT_REFRACTIVE_INDEX,
        n_below: float = AMBIENT_REFRACTIVE_INDEX,
    ) -> None:
        layers = list(layers)
        if not layers:
            raise ValueError("a LayerStack needs at least one layer")
        for layer in layers[:-1]:
            if layer.is_semi_infinite:
                raise ValueError(
                    f"only the deepest layer may be semi-infinite; {layer.name!r} is not last"
                )
        if n_above <= 0 or n_below <= 0:
            raise ValueError("ambient refractive indices must be > 0")

        self._layers: tuple[Layer, ...] = tuple(layers)
        self.n_above = float(n_above)
        self.n_below = float(n_below)

        # Boundary positions: boundaries[i] is the top of layer i;
        # boundaries[len(layers)] is the bottom of the stack (inf when the
        # deepest layer is semi-infinite).
        tops = [0.0]
        for layer in self._layers:
            prev = tops[-1]
            tops.append(prev + (layer.thickness if layer.thickness is not None else math.inf))
        self._boundaries = np.asarray(tops, dtype=np.float64)

        # Per-layer coefficient vectors for the vectorised kernel.
        self.mu_a = np.asarray([l.properties.mu_a for l in self._layers])
        self.mu_s = np.asarray([l.properties.mu_s for l in self._layers])
        self.mu_t = self.mu_a + self.mu_s
        self.g = np.asarray([l.properties.g for l in self._layers])
        self.n = np.asarray([l.properties.n for l in self._layers])

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __getitem__(self, index: int) -> Layer:
        return self._layers[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(l.name for l in self._layers)
        return f"LayerStack([{inner}])"

    # -- geometry ------------------------------------------------------------

    @property
    def layers(self) -> tuple[Layer, ...]:
        return self._layers

    @property
    def boundaries(self) -> np.ndarray:
        """Boundary depths: ``boundaries[i]`` is the top of layer ``i`` (mm)."""
        return self._boundaries

    @property
    def total_thickness(self) -> float:
        """Total stack thickness in mm (``inf`` for a semi-infinite stack)."""
        return float(self._boundaries[-1])

    @property
    def is_semi_infinite(self) -> bool:
        return self._layers[-1].is_semi_infinite

    def layer_top(self, index: int) -> float:
        """Depth of the top boundary of layer ``index`` (mm)."""
        return float(self._boundaries[index])

    def layer_bottom(self, index: int) -> float:
        """Depth of the bottom boundary of layer ``index`` (mm; may be inf)."""
        return float(self._boundaries[index + 1])

    def layer_index_at(self, z: float) -> int:
        """Index of the layer containing depth ``z``.

        Points exactly on an interior boundary belong to the layer *below*
        (the convention the kernels use when a photon crosses downwards).
        Raises ``ValueError`` for z outside the stack.
        """
        if z < 0 or z >= self._boundaries[-1] and not math.isinf(self._boundaries[-1]):
            raise ValueError(f"depth {z} is outside the stack [0, {self._boundaries[-1]})")
        if z < 0:  # pragma: no cover - guarded above
            raise ValueError(f"depth {z} is above the surface")
        idx = int(np.searchsorted(self._boundaries, z, side="right")) - 1
        return min(idx, len(self._layers) - 1)

    def refractive_index_outside(self, *, going_up: bool) -> float:
        """Ambient index a photon sees when leaving the stack."""
        return self.n_above if going_up else self.n_below

    def layer_name_at(self, z: float) -> str:
        """Name of the layer containing depth ``z`` (convenience for reports)."""
        return self._layers[self.layer_index_at(z)].name

    # -- constructors ----------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        properties: OpticalProperties,
        thickness: float | None = None,
        *,
        name: str = "medium",
        n_above: float = AMBIENT_REFRACTIVE_INDEX,
        n_below: float = AMBIENT_REFRACTIVE_INDEX,
    ) -> "LayerStack":
        """A single-layer stack (semi-infinite by default)."""
        return cls(
            [Layer(name, properties, thickness)], n_above=n_above, n_below=n_below
        )
