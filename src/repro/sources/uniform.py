"""Uniform-disc source.

The paper's "uniform" source: a collimated beam with constant intensity over
a circular footprint (a top-hat profile), e.g. an LED or an expanded,
homogenised laser spot.
"""

from __future__ import annotations

import numpy as np

from .base import Source

__all__ = ["UniformDisc"]


class UniformDisc(Source):
    """Collimated top-hat beam of radius ``radius`` centred at ``(x0, y0, 0)``.

    Points are drawn uniformly over the disc via the standard
    ``r = R * sqrt(u)`` inversion, which makes the areal density constant.
    """

    def __init__(self, radius: float, x0: float = 0.0, y0: float = 0.0) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be > 0, got {radius}")
        self.radius = float(radius)
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.origin = np.array([self.x0, self.y0, 0.0])

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        self._validate_count(n)
        r = self.radius * np.sqrt(rng.random(n))
        phi = rng.uniform(0.0, 2.0 * np.pi, n)
        pos = np.zeros((n, 3))
        pos[:, 0] = self.x0 + r * np.cos(phi)
        pos[:, 1] = self.y0 + r * np.sin(phi)
        return pos, self._downward(n)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformDisc(radius={self.radius}, x0={self.x0}, y0={self.y0})"
