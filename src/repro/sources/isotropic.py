"""Isotropic point source buried in the medium.

Not one of the paper's three surface sources, but the standard verification
source for Monte Carlo transport codes: an isotropic emitter at depth ``z0``
has simple diffusion-theory solutions, which our integration tests compare
against (see ``repro.diffusion``).  Emission is restricted to the downward
hemisphere when ``hemisphere="down"`` to model a source just below the
surface without immediate escape.
"""

from __future__ import annotations

import numpy as np

from .base import Source

__all__ = ["IsotropicPoint"]


class IsotropicPoint(Source):
    """Isotropic point emitter at ``(x0, y0, z0)``.

    Parameters
    ----------
    z0:
        Source depth in mm; must be >= 0 (inside the tissue).
    hemisphere:
        ``"full"`` for 4π emission, ``"down"``/``"up"`` for one hemisphere.
    """

    def __init__(
        self,
        z0: float,
        x0: float = 0.0,
        y0: float = 0.0,
        *,
        hemisphere: str = "full",
    ) -> None:
        if z0 < 0:
            raise ValueError(f"z0 must be >= 0, got {z0}")
        if hemisphere not in ("full", "down", "up"):
            raise ValueError(f"hemisphere must be 'full', 'down' or 'up', got {hemisphere!r}")
        self.z0 = float(z0)
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.hemisphere = hemisphere
        self.origin = np.array([self.x0, self.y0, self.z0])

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        self._validate_count(n)
        pos = np.tile(self.origin, (n, 1))
        # Uniform directions on the sphere: cos(theta) ~ U(-1, 1).
        mu = rng.uniform(-1.0, 1.0, n)
        if self.hemisphere == "down":
            mu = np.abs(mu)
        elif self.hemisphere == "up":
            mu = -np.abs(mu)
        phi = rng.uniform(0.0, 2.0 * np.pi, n)
        sin_t = np.sqrt(np.maximum(0.0, 1.0 - mu * mu))
        dirs = np.column_stack([sin_t * np.cos(phi), sin_t * np.sin(phi), mu])
        return pos, dirs

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IsotropicPoint(z0={self.z0}, x0={self.x0}, y0={self.y0}, "
            f"hemisphere={self.hemisphere!r})"
        )
