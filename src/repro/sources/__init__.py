"""Photon sources: delta (laser), Gaussian and uniform footprints.

These are the three source types the paper's application supports, plus an
isotropic point source used for diffusion-theory validation.
"""

from .base import Source
from .gaussian import GaussianBeam
from .isotropic import IsotropicPoint
from .pencil import PencilBeam
from .uniform import UniformDisc

__all__ = ["Source", "PencilBeam", "GaussianBeam", "UniformDisc", "IsotropicPoint"]
