"""Delta (laser pencil-beam) source.

The paper's "delta" source: an infinitesimally narrow collimated beam
entering the tissue at a single point, normal to the surface.  This is the
source of the Fig. 3 experiment ("a laser source ... in homogeneous white
matter"), where the paper observes that "lasers do produce a small beam in a
highly scattering medium".
"""

from __future__ import annotations

import numpy as np

from .base import Source

__all__ = ["PencilBeam"]


class PencilBeam(Source):
    """Collimated delta-function beam at ``(x0, y0, 0)`` pointing along +z.

    Parameters
    ----------
    x0, y0:
        Entry point on the surface in mm.
    tilt:
        Optional polar tilt angle in radians away from the surface normal,
        tilting in the +x direction.  Must satisfy ``0 <= tilt < pi/2``.
    """

    def __init__(self, x0: float = 0.0, y0: float = 0.0, *, tilt: float = 0.0) -> None:
        if not 0.0 <= tilt < np.pi / 2:
            raise ValueError(f"tilt must be in [0, pi/2), got {tilt}")
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.tilt = float(tilt)
        self.origin = np.array([self.x0, self.y0, 0.0])

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        self._validate_count(n)
        pos = np.tile(self.origin, (n, 1))
        if self.tilt == 0.0:
            dirs = self._downward(n)
        else:
            dirs = np.zeros((n, 3))
            dirs[:, 0] = np.sin(self.tilt)
            dirs[:, 2] = np.cos(self.tilt)
        return pos, dirs

    def __repr__(self) -> str:  # pragma: no cover
        return f"PencilBeam(x0={self.x0}, y0={self.y0}, tilt={self.tilt})"
