"""Gaussian-footprint source.

The paper's "Gaussian" source: a collimated beam whose radial intensity
profile on the surface is a 2-D Gaussian — the realistic model of a laser
spot or fibre output.  Comparing this against :class:`~repro.sources.pencil.
PencilBeam` and :class:`~repro.sources.uniform.UniformDisc` reproduces the
paper's observation that "the source illumination footprint has an effect on
the distribution of photons in the head".
"""

from __future__ import annotations

import numpy as np

from .base import Source

__all__ = ["GaussianBeam"]


class GaussianBeam(Source):
    """Collimated beam with Gaussian radial profile centred at ``(x0, y0, 0)``.

    Parameters
    ----------
    sigma:
        Standard deviation of the Gaussian footprint in mm (per axis).
        The 1/e² intensity radius of the equivalent laser beam is
        ``2 * sigma``.
    x0, y0:
        Beam centre on the surface in mm.
    truncate:
        Optional hard radius (mm) beyond which samples are re-drawn,
        modelling an aperture.  ``None`` (default) leaves the Gaussian
        untruncated.
    """

    def __init__(
        self,
        sigma: float,
        x0: float = 0.0,
        y0: float = 0.0,
        *,
        truncate: float | None = None,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        if truncate is not None and truncate <= 0:
            raise ValueError(f"truncate must be > 0 or None, got {truncate}")
        self.sigma = float(sigma)
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.truncate = None if truncate is None else float(truncate)
        self.origin = np.array([self.x0, self.y0, 0.0])

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        self._validate_count(n)
        xy = rng.normal(0.0, self.sigma, size=(n, 2))
        if self.truncate is not None:
            # Rejection-resample points outside the aperture.  The expected
            # number of rounds is tiny unless truncate << sigma.
            r2max = self.truncate * self.truncate
            bad = np.einsum("ij,ij->i", xy, xy) > r2max
            while np.any(bad):
                xy[bad] = rng.normal(0.0, self.sigma, size=(int(bad.sum()), 2))
                bad = np.einsum("ij,ij->i", xy, xy) > r2max
        pos = np.zeros((n, 3))
        pos[:, 0] = self.x0 + xy[:, 0]
        pos[:, 1] = self.y0 + xy[:, 1]
        return pos, self._downward(n)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GaussianBeam(sigma={self.sigma}, x0={self.x0}, y0={self.y0}, "
            f"truncate={self.truncate})"
        )
