"""Source (optode) models.

The paper's application "allows for different sources (delta, Gaussian,
uniform)" — i.e. different illumination footprints on the tissue surface.
A source samples initial photon positions and directions; the kernels then
apply the specular-reflection weight loss at the air–tissue interface.

All sources launch into the +z half-space from the z = 0 surface unless
documented otherwise.  Positions are returned in mm as ``(n, 3)`` arrays,
directions as unit ``(n, 3)`` arrays.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Source"]


class Source(abc.ABC):
    """Abstract photon source.

    Subclasses implement :meth:`sample`, drawing launch positions and
    directions for a batch of photons.  Sources must be picklable (they are
    shipped to workers inside task descriptions) and must draw randomness
    exclusively from the generator they are handed, so that a task's photons
    are a pure function of its RNG stream.
    """

    #: Centre of the source footprint on the surface, set by subclasses.
    origin: np.ndarray

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` launch positions and unit directions.

        Returns
        -------
        positions:
            ``(n, 3)`` float64 array of launch points (mm), on the surface.
        directions:
            ``(n, 3)`` float64 array of unit direction vectors with
            non-negative z-component (into the tissue).
        """

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def _validate_count(n: int) -> None:
        if n < 0:
            raise ValueError(f"photon count must be >= 0, got {n}")

    @staticmethod
    def _downward(n: int) -> np.ndarray:
        """(n, 3) array of +z unit vectors."""
        d = np.zeros((n, 3))
        d[:, 2] = 1.0
        return d
