"""repro.api — one facade over every way to run a simulation.

The platform grew four entry points — serial :class:`~repro.core.Simulation`,
backend-pooled :class:`~repro.distributed.DataManager`, the TCP
:class:`~repro.distributed.NetworkServer`, and checkpointed resume — each
with its own construction ritual.  :func:`run` folds them behind a single
declarative :class:`RunRequest`, so flags such as workers, checkpointing,
deadlines and pathlength gating behave identically everywhere, and the
telemetry hooks (:mod:`repro.observe`) attach in exactly one place.

The decomposition contract still holds: a request's tally depends only on
``(config, n_photons, seed, task_size, kernel)`` — never on the backend,
worker count or schedule — so the same request run serially, on a process
pool, or over TCP produces bit-identical physics.

Examples
--------
>>> from repro.api import RunRequest, run
>>> report = run(RunRequest(model="white_matter", n_photons=2000))
>>> 0.0 < report.tally.diffuse_reflectance < 1.0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from . import __version__
from .core import RecordConfig, SimulationConfig
from .core.simulation import KernelName
from .distributed import (
    CheckpointManager,
    DataManager,
    NetworkServer,
    RunReport,
    make_backend,
)
from .observe import ProgressReporter, Telemetry, TTYProgress

__all__ = ["RunRequest", "run", "build_config", "resolve_checkpoint", "DEFAULT_TASK_SIZE"]

#: Default self-scheduling chunk size.  Deliberately independent of the
#: worker count: the decomposition — and therefore the tally — must be a
#: function of the request, not of the execution substrate.
DEFAULT_TASK_SIZE = 10_000

_MODELS = ("white_matter", "adult_head", "neonatal_head")


@dataclass
class RunRequest:
    """Declarative description of one simulation run.

    Exactly one of ``config`` (a full
    :class:`~repro.core.config.SimulationConfig`) or ``model`` (a named
    tissue model: ``white_matter`` / ``adult_head`` / ``neonatal_head``,
    given a pencil-beam source and the detector/gate fields below) must be
    set.

    Execution fields
    ----------------
    workers / backend:
        ``backend`` is one of ``"serial" | "thread" | "process"`` (see
        :func:`repro.distributed.make_backend`) or ``"auto"`` — serial for
        one worker, a process pool otherwise.
    mode:
        ``"local"`` executes on an in-host backend; ``"serve"`` starts a
        :class:`~repro.distributed.NetworkServer` on ``host:port`` and
        blocks (up to ``serve_timeout``) until connecting clients finish
        the photon budget.
    checkpoint / resume / task_deadline:
        The fault-tolerance knobs, identical in every mode: completed tasks
        persist under the ``checkpoint`` directory, ``resume`` continues an
        existing one (required — a stale directory is never extended
        silently), ``task_deadline`` enables speculative re-dispatch.
    compress:
        In ``"serve"`` mode, offer zlib frame compression to connecting
        clients (negotiated per connection; off by default).  Ignored in
        ``"local"`` mode, which has no wire.
    span_size / sub_batch:
        Coordinator-throughput and kernel-tuning knobs.  ``span_size``
        groups tasks into tree-aligned spans folded worker-side (one
        payload and one coordinator merge per span; bit-identical to
        per-task dispatch).  ``sub_batch`` overrides the vectorized
        kernel's internal batch size; results are statistically equivalent
        but not bit-identical across different values.  Both are
        execution-only: neither enters the request fingerprint
        (:mod:`repro.service.fingerprint`), and ``span_size`` never
        changes the merged tally at all.
    retain_task_tallies:
        ``False`` drops each per-task tally once it is folded into the
        incremental reduction, bounding memory on very large runs; the
        merged tally is unaffected, but ``RunReport.task_results`` then
        carry metadata only (see :mod:`repro.analysis` before disabling).

    Observability fields
    --------------------
    telemetry:
        A caller-owned :class:`~repro.observe.Telemetry`; or
    metrics_path / progress:
        Convenience constructors — a JSONL event-sink path and/or a
        progress reporter (``True`` for a TTY bar, or any
        :class:`~repro.observe.ProgressReporter`).  The facade then owns
        the telemetry lifecycle and attaches the final metrics snapshot to
        :attr:`~repro.distributed.RunReport.metrics`.
    """

    config: SimulationConfig | None = None
    model: str | None = None
    n_photons: int = 20_000
    seed: int = 0
    kernel: KernelName = "vector"
    task_size: int | None = None

    # execution
    workers: int = 1
    backend: str = "auto"
    mode: str = "local"
    host: str = "127.0.0.1"
    port: int = 0
    serve_timeout: float = 3600.0
    heartbeat_timeout: float | None = 30.0

    # fault tolerance
    checkpoint: str | Path | CheckpointManager | None = None
    resume: bool = False
    task_deadline: float | None = None
    max_retries: int = 2
    compress: bool = False
    retain_task_tallies: bool = True

    # coordinator-throughput / kernel tuning (execution-only knobs)
    span_size: int | None = None
    sub_batch: int | None = None
    #: Record per-detected-photon path records onto ``tally.paths`` — the
    #: raw material for :mod:`repro.perturb` reweighting.  Execution-only:
    #: capture adds no RNG draws, every other tally field is bit-identical
    #: with or without it, so it does NOT enter the request fingerprint.
    #: Works in both modes (the flag ships with every ``TaskSpec``).
    capture_paths: bool = False

    # prefix extension / partial-range runs
    #: Run only tasks ``[start, stop)`` of the canonical decomposition.  The
    #: tally is the deterministic partial fold of that range; *physics-
    #: bearing* (a partial tally is a different result), so it participates
    #: in the request fingerprint.  ``mode="local"`` only.
    task_range: tuple[int, int] | None = None
    #: A :class:`~repro.core.reduce.TallyFrontier` from a cached smaller-
    #: budget run of the same physics; its covered tasks are primed into the
    #: reducer and not re-simulated (the delta run).  Execution-only: the
    #: final tally is bit-identical with or without it, so it does NOT enter
    #: the fingerprint.  ``mode="local"`` only.
    frontier: "TallyFrontier | None" = None
    #: Capture the run's reduction frontier onto ``RunReport.frontier`` so
    #: the result can later be budget-extended.  Execution-only.
    capture_frontier: bool = False

    # model-building conveniences (ignored when ``config`` is given)
    detector_spacing: float | None = None
    gate: tuple[float, float] | None = None
    boundary_mode: str = "probabilistic"
    records: RecordConfig | None = None

    # observability
    telemetry: Telemetry | None = None
    metrics_path: str | Path | None = None
    progress: bool | ProgressReporter = False

    #: Called with the live :class:`NetworkServer` right after it binds in
    #: ``mode="serve"`` (e.g. to announce the chosen port); ignored otherwise.
    on_server_start: Callable[[NetworkServer], None] | None = None

    def __post_init__(self) -> None:
        if (self.config is None) == (self.model is None):
            raise ValueError("set exactly one of RunRequest.config or RunRequest.model")
        if self.model is not None and self.model not in _MODELS:
            raise ValueError(f"unknown model {self.model!r}; choose from {_MODELS}")
        if self.mode not in ("local", "serve"):
            raise ValueError(f"mode must be 'local' or 'serve', got {self.mode!r}")
        if self.workers <= 0:
            raise ValueError(f"workers must be > 0, got {self.workers}")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume=True requires a checkpoint directory")
        if self.span_size is not None and self.span_size < 1:
            raise ValueError(f"span_size must be >= 1 or None, got {self.span_size}")
        if self.sub_batch is not None and self.sub_batch <= 0:
            raise ValueError(f"sub_batch must be > 0 or None, got {self.sub_batch}")
        if self.task_range is not None:
            lo, hi = self.task_range
            n_tasks = -(-self.n_photons // self.resolved_task_size())
            if not 0 <= lo < hi <= n_tasks:
                raise ValueError(
                    f"task_range [{lo}, {hi}) out of range for the "
                    f"{n_tasks}-task decomposition of {self.n_photons} photons"
                )
        if self.mode == "serve" and (
            self.task_range is not None
            or self.frontier is not None
            or self.capture_frontier
        ):
            raise ValueError(
                "task_range / frontier / capture_frontier require mode='local'"
            )

    def resolved_task_size(self) -> int:
        return self.task_size if self.task_size is not None else DEFAULT_TASK_SIZE

    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        return "serial" if self.workers == 1 else "process"

    def provenance(self) -> dict:
        """Self-description embedded in saved tallies (``save_tally``).

        Includes the canonical request ``fingerprint``
        (:func:`repro.service.request_fingerprint`), so any archive can be
        verified against the request that claims it
        (``load_tally(expected_fingerprint=...)``).
        """
        from .service.fingerprint import (
            derivation_basis,
            perturbable_coefficients,
            physics_fingerprint,
            request_fingerprint,
        )

        out = {
            "package": "repro",
            "version": __version__,
            "model": self.model or "custom",
            "n_photons": self.n_photons,
            "seed": self.seed,
            "kernel": self.kernel,
            "task_size": self.resolved_task_size(),
            "sub_batch": self.sub_batch,
            "boundary_mode": self.boundary_mode,
            "fingerprint": request_fingerprint(self),
            "physics_fingerprint": physics_fingerprint(self),
            "derivation_basis": derivation_basis(self),
            "coefficients": perturbable_coefficients(self),
            "created_unix": time.time(),
        }
        if self.task_range is not None:
            out["task_range"] = [int(self.task_range[0]), int(self.task_range[1])]
        return out


def build_config(request: RunRequest) -> SimulationConfig:
    """The :class:`SimulationConfig` a request describes.

    Returns ``request.config`` unchanged when one was given; otherwise
    assembles the named tissue model with a pencil beam and the requested
    detector/gate/boundary options (the construction the CLI has always
    performed, now shared by every entry point).
    """
    if request.config is not None:
        return request.config
    from .detect import AnnularDetector, PathlengthGate
    from .sources import PencilBeam
    from .tissue import adult_head, neonatal_head, white_matter

    stack = {
        "white_matter": white_matter,
        "adult_head": adult_head,
        "neonatal_head": neonatal_head,
    }[request.model]()
    kwargs: dict = dict(
        stack=stack,
        source=PencilBeam(),
        gate=PathlengthGate(*request.gate) if request.gate else None,
        boundary_mode=request.boundary_mode,
        records=(
            request.records
            if request.records is not None
            else RecordConfig(penetration_bins=(50.0, 200))
        ),
    )
    if request.detector_spacing is not None:
        rho = request.detector_spacing
        kwargs["detector"] = AnnularDetector(max(0.0, rho - 1.0), rho + 1.0)
    return SimulationConfig(**kwargs)


def resolve_checkpoint(
    directory: str | Path | CheckpointManager | None, resume: bool
) -> CheckpointManager | None:
    """Build (or validate) the checkpoint manager a request asks for.

    Without ``resume`` an *existing* checkpoint is refused rather than
    silently extended, so two unrelated runs can never be mixed by a stale
    directory (the semantics the CLI has always enforced).  A ready-made
    :class:`CheckpointManager` is subject to the same check.
    """
    if resume and directory is None:
        raise ValueError("resume requires a checkpoint directory")
    if directory is None:
        return None
    manager = (
        directory
        if isinstance(directory, CheckpointManager)
        else CheckpointManager(directory)
    )
    if manager.exists and not resume:
        raise ValueError(
            f"checkpoint {manager.directory} already exists; "
            "pass resume=True to continue"
        )
    return manager


def _resolve_telemetry(request: RunRequest) -> tuple[Telemetry | None, bool]:
    """The run's telemetry and whether the facade owns its lifecycle."""
    if request.telemetry is not None:
        return request.telemetry, False
    reporter: ProgressReporter | None = None
    if isinstance(request.progress, ProgressReporter):
        reporter = request.progress
    elif request.progress:
        reporter = TTYProgress()
    if request.metrics_path is None and reporter is None:
        return None, False
    if request.metrics_path is not None:
        return Telemetry.to_jsonl(str(request.metrics_path), progress=reporter), True
    return Telemetry(progress=reporter), True


def run(request: RunRequest) -> RunReport:
    """Execute ``request`` and return its :class:`~repro.distributed.RunReport`.

    The one entry point: serial, pooled, served-over-TCP and resumed runs
    all route through here, with identical decomposition, fault-tolerance
    and telemetry semantics.
    """
    config = build_config(request)
    checkpoint = resolve_checkpoint(request.checkpoint, request.resume)
    telemetry, owns_telemetry = _resolve_telemetry(request)
    try:
        if request.mode == "serve":
            server = NetworkServer(
                config,
                n_photons=request.n_photons,
                seed=request.seed,
                task_size=request.resolved_task_size(),
                kernel=request.kernel,
                max_retries=request.max_retries,
                host=request.host,
                port=request.port,
                heartbeat_timeout=request.heartbeat_timeout,
                task_deadline=request.task_deadline,
                checkpoint=checkpoint,
                compress=request.compress,
                retain_task_tallies=request.retain_task_tallies,
                span_size=request.span_size,
                sub_batch=request.sub_batch,
                capture_paths=request.capture_paths,
                telemetry=telemetry,
            ).start()
            if request.on_server_start is not None:
                request.on_server_start(server)
            report = server.wait(timeout=request.serve_timeout)
        else:
            manager = DataManager(
                config,
                request.n_photons,
                seed=request.seed,
                task_size=request.resolved_task_size(),
                kernel=request.kernel,
                max_retries=request.max_retries,
                task_deadline=request.task_deadline,
                checkpoint=checkpoint,
                retain_task_tallies=request.retain_task_tallies,
                span_size=request.span_size,
                sub_batch=request.sub_batch,
                capture_paths=request.capture_paths,
                base_frontier=request.frontier,
                capture_frontier=request.capture_frontier,
                task_range=request.task_range,
                telemetry=telemetry,
            )
            with make_backend(request.resolved_backend(), request.workers) as backend:
                report = manager.run(backend)
    finally:
        if owns_telemetry:
            final = telemetry.finish()
    if owns_telemetry:
        report.metrics = final
    return report
