"""Result persistence.

Tallies are saved as ``.npz`` archives (arrays + a JSON-encoded scalar
header).  The format is explicitly versioned, self-describing and
round-trips everything a :class:`~repro.core.tally.Tally` holds, so long
simulations can be resumed by merging saved partial tallies — the on-disk
analogue of what the paper's DataManager does with client results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..core.config import RecordConfig
from ..core.tally import Tally
from ..detect.records import GridSpec, Histogram, RunningStat

__all__ = ["save_tally", "load_tally"]

_FORMAT_VERSION = 1


def _grid_spec_to_dict(spec: GridSpec | None) -> dict | None:
    if spec is None:
        return None
    return {"shape": list(spec.shape), "lo": list(spec.lo), "hi": list(spec.hi)}


def _grid_spec_from_dict(d: dict | None) -> GridSpec | None:
    if d is None:
        return None
    return GridSpec(shape=tuple(d["shape"]), lo=tuple(d["lo"]), hi=tuple(d["hi"]))


def _stat_to_list(s: RunningStat) -> list[float]:
    return [s.count, s.weight, s.weighted_sum, s.weighted_sumsq, s.minimum, s.maximum]


def _stat_from_list(v: list[float]) -> RunningStat:
    return RunningStat(*v)


def save_tally(path: str | Path, tally: Tally, provenance: dict | None = None) -> Path:
    """Serialise a tally to ``path`` (``.npz``); returns the path written.

    ``provenance`` is an optional JSON-serialisable dict describing how the
    tally was produced (model name, seed, photon budget, package version,
    boundary mode, …); it is embedded in the archive header and restored by
    :func:`load_tally` as the ``provenance`` attribute, so an archive found
    months later still says what run created it.

    The write is atomic (temp file + ``os.replace``): readers — including a
    resuming :class:`~repro.distributed.checkpoint.CheckpointManager` —
    never observe a torn archive at ``path``, even if the writer is killed
    mid-save.
    """
    path = Path(path)
    r = tally.records
    header = {
        "format_version": _FORMAT_VERSION,
        "provenance": provenance,
        "n_layers": tally.n_layers,
        "n_launched": tally.n_launched,
        "specular_weight": tally.specular_weight,
        "diffuse_reflectance_weight": tally.diffuse_reflectance_weight,
        "transmittance_weight": tally.transmittance_weight,
        "lost_weight": tally.lost_weight,
        "roulette_net_weight": tally.roulette_net_weight,
        "detected_count": tally.detected_count,
        "detected_weight": tally.detected_weight,
        "pathlength": _stat_to_list(tally.pathlength),
        "penetration_depth": _stat_to_list(tally.penetration_depth),
        "records": {
            "absorption_grid": _grid_spec_to_dict(r.absorption_grid),
            "path_grid": _grid_spec_to_dict(r.path_grid),
            "pathlength_bins": list(r.pathlength_bins) if r.pathlength_bins else None,
            "reflectance_rho_bins": (
                list(r.reflectance_rho_bins) if r.reflectance_rho_bins else None
            ),
            "penetration_bins": list(r.penetration_bins) if r.penetration_bins else None,
        },
    }
    arrays: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "absorbed_by_layer": tally.absorbed_by_layer,
    }
    if tally.absorption_grid is not None:
        arrays["absorption_grid"] = tally.absorption_grid
    if tally.path_grid is not None:
        arrays["path_grid"] = tally.path_grid
    for name, hist in (
        ("pathlength_hist", tally.pathlength_hist),
        ("reflectance_rho_hist", tally.reflectance_rho_hist),
        ("penetration_hist", tally.penetration_hist),
    ):
        if hist is not None:
            arrays[f"{name}_edges"] = hist.edges
            arrays[f"{name}_counts"] = hist.counts
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_tally(path: str | Path, *, expected_fingerprint: str | None = None) -> Tally:
    """Load a tally written by :func:`save_tally`.

    If the archive carries run provenance it is attached to the returned
    tally as a ``provenance`` dict attribute (``None`` otherwise).

    ``expected_fingerprint`` makes the load *self-verifying*: the archive
    must carry that request fingerprint in its provenance (see
    :func:`repro.service.request_fingerprint`) or a ``ValueError`` is
    raised.  The content-addressed result store uses this to detect stale
    or foreign artifacts instead of serving them as answers.
    """
    path = Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported tally format version {header.get('format_version')!r}"
            )
        if expected_fingerprint is not None:
            found = (header.get("provenance") or {}).get("fingerprint")
            if found != expected_fingerprint:
                raise ValueError(
                    f"tally at {path} belongs to a different request: "
                    f"provenance fingerprint {found!r} != expected "
                    f"{expected_fingerprint!r}"
                )
        rd = header["records"]
        records = RecordConfig(
            absorption_grid=_grid_spec_from_dict(rd["absorption_grid"]),
            path_grid=_grid_spec_from_dict(rd["path_grid"]),
            pathlength_bins=tuple(rd["pathlength_bins"]) if rd["pathlength_bins"] else None,
            reflectance_rho_bins=(
                tuple(rd["reflectance_rho_bins"]) if rd["reflectance_rho_bins"] else None
            ),
            penetration_bins=(
                tuple(rd["penetration_bins"]) if rd["penetration_bins"] else None
            ),
        )
        tally = Tally(
            n_layers=header["n_layers"],
            records=records,
            n_launched=header["n_launched"],
            specular_weight=header["specular_weight"],
            diffuse_reflectance_weight=header["diffuse_reflectance_weight"],
            transmittance_weight=header["transmittance_weight"],
            lost_weight=header["lost_weight"],
            roulette_net_weight=header["roulette_net_weight"],
            detected_count=header["detected_count"],
            detected_weight=header["detected_weight"],
            absorbed_by_layer=data["absorbed_by_layer"],
            pathlength=_stat_from_list(header["pathlength"]),
            penetration_depth=_stat_from_list(header["penetration_depth"]),
        )
        if "absorption_grid" in data:
            tally.absorption_grid = data["absorption_grid"]
        if "path_grid" in data:
            tally.path_grid = data["path_grid"]
        for name in ("pathlength_hist", "reflectance_rho_hist", "penetration_hist"):
            if f"{name}_edges" in data:
                setattr(
                    tally,
                    name,
                    Histogram(edges=data[f"{name}_edges"], counts=data[f"{name}_counts"]),
                )
        tally.provenance = header.get("provenance")
    return tally
