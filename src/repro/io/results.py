"""Result persistence.

Tallies are saved as ``.npz`` archives (arrays + a JSON-encoded scalar
header).  The format is explicitly versioned, self-describing and
round-trips everything a :class:`~repro.core.tally.Tally` holds, so long
simulations can be resumed by merging saved partial tallies — the on-disk
analogue of what the paper's DataManager does with client results.

Since format version 2 an archive can also carry the run's **reduction
frontier** (:class:`~repro.core.reduce.TallyFrontier`): the canonical
span partials of the reducer tree, stored alongside the final tally.  A
frontier-bearing archive is *budget-extendable* — a later run with the
same physics and a larger photon budget can prime the frontier back into
its reducer and simulate only the missing tasks, producing a tally
bit-identical to a from-scratch run (see ``repro.service.store``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..core.config import RecordConfig
from ..core.reduce import TallyFrontier
from ..core.tally import Tally
from ..detect.records import GridSpec, Histogram, PathRecords, RunningStat

__all__ = [
    "save_tally",
    "load_tally",
    "load_frontier",
    "load_paths",
    "archive_summary",
]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _grid_spec_to_dict(spec: GridSpec | None) -> dict | None:
    if spec is None:
        return None
    return {"shape": list(spec.shape), "lo": list(spec.lo), "hi": list(spec.hi)}


def _grid_spec_from_dict(d: dict | None) -> GridSpec | None:
    if d is None:
        return None
    return GridSpec(shape=tuple(d["shape"]), lo=tuple(d["lo"]), hi=tuple(d["hi"]))


def _stat_to_list(s: RunningStat) -> list[float]:
    return [s.count, s.weight, s.weighted_sum, s.weighted_sumsq, s.minimum, s.maximum]


def _stat_from_list(v: list[float]) -> RunningStat:
    return RunningStat(*v)


def _pack_tally(tally: Tally, arrays: dict, prefix: str = "") -> dict:
    """Serialise one tally: scalars into the returned header dict, arrays
    into ``arrays`` under ``prefix``-ed keys."""
    r = tally.records
    header = {
        "n_layers": tally.n_layers,
        "n_launched": tally.n_launched,
        "specular_weight": tally.specular_weight,
        "diffuse_reflectance_weight": tally.diffuse_reflectance_weight,
        "transmittance_weight": tally.transmittance_weight,
        "lost_weight": tally.lost_weight,
        "roulette_net_weight": tally.roulette_net_weight,
        "detected_count": tally.detected_count,
        "detected_weight": tally.detected_weight,
        "pathlength": _stat_to_list(tally.pathlength),
        "penetration_depth": _stat_to_list(tally.penetration_depth),
        "records": {
            "absorption_grid": _grid_spec_to_dict(r.absorption_grid),
            "path_grid": _grid_spec_to_dict(r.path_grid),
            "pathlength_bins": list(r.pathlength_bins) if r.pathlength_bins else None,
            "reflectance_rho_bins": (
                list(r.reflectance_rho_bins) if r.reflectance_rho_bins else None
            ),
            "penetration_bins": list(r.penetration_bins) if r.penetration_bins else None,
        },
    }
    arrays[f"{prefix}absorbed_by_layer"] = tally.absorbed_by_layer
    if tally.absorption_grid is not None:
        arrays[f"{prefix}absorption_grid"] = tally.absorption_grid
    if tally.path_grid is not None:
        arrays[f"{prefix}path_grid"] = tally.path_grid
    for name, hist in (
        ("pathlength_hist", tally.pathlength_hist),
        ("reflectance_rho_hist", tally.reflectance_rho_hist),
        ("penetration_hist", tally.penetration_hist),
    ):
        if hist is not None:
            arrays[f"{prefix}{name}_edges"] = hist.edges
            arrays[f"{prefix}{name}_counts"] = hist.counts
    return header


def _unpack_tally(header: dict, data, prefix: str = "") -> Tally:
    """Rebuild one tally from a header dict + the ``prefix``-ed arrays."""
    rd = header["records"]
    records = RecordConfig(
        absorption_grid=_grid_spec_from_dict(rd["absorption_grid"]),
        path_grid=_grid_spec_from_dict(rd["path_grid"]),
        pathlength_bins=tuple(rd["pathlength_bins"]) if rd["pathlength_bins"] else None,
        reflectance_rho_bins=(
            tuple(rd["reflectance_rho_bins"]) if rd["reflectance_rho_bins"] else None
        ),
        penetration_bins=(
            tuple(rd["penetration_bins"]) if rd["penetration_bins"] else None
        ),
    )
    tally = Tally(
        n_layers=header["n_layers"],
        records=records,
        n_launched=header["n_launched"],
        specular_weight=header["specular_weight"],
        diffuse_reflectance_weight=header["diffuse_reflectance_weight"],
        transmittance_weight=header["transmittance_weight"],
        lost_weight=header["lost_weight"],
        roulette_net_weight=header["roulette_net_weight"],
        detected_count=header["detected_count"],
        detected_weight=header["detected_weight"],
        absorbed_by_layer=data[f"{prefix}absorbed_by_layer"],
        pathlength=_stat_from_list(header["pathlength"]),
        penetration_depth=_stat_from_list(header["penetration_depth"]),
    )
    if f"{prefix}absorption_grid" in data:
        tally.absorption_grid = data[f"{prefix}absorption_grid"]
    if f"{prefix}path_grid" in data:
        tally.path_grid = data[f"{prefix}path_grid"]
    for name in ("pathlength_hist", "reflectance_rho_hist", "penetration_hist"):
        if f"{prefix}{name}_edges" in data:
            setattr(
                tally,
                name,
                Histogram(
                    edges=data[f"{prefix}{name}_edges"],
                    counts=data[f"{prefix}{name}_counts"],
                ),
            )
    return tally


def save_tally(
    path: str | Path,
    tally: Tally,
    provenance: dict | None = None,
    *,
    frontier: TallyFrontier | None = None,
) -> Path:
    """Serialise a tally to ``path`` (``.npz``); returns the path written.

    ``provenance`` is an optional JSON-serialisable dict describing how the
    tally was produced (model name, seed, photon budget, package version,
    boundary mode, …); it is embedded in the archive header and restored by
    :func:`load_tally` as the ``provenance`` attribute, so an archive found
    months later still says what run created it.

    ``frontier`` optionally stores the run's reducer span partials next to
    the final tally, making the archive budget-extendable (restored by
    :func:`load_frontier`; invisible to :func:`load_tally`).

    When the tally carries per-detected-photon path records
    (``tally.paths``, from a ``capture_paths`` run) they are persisted
    automatically under ``p_``-prefixed arrays — the raw material for
    :mod:`repro.perturb` derivation.  Like the frontier they are restored
    by a dedicated reader (:func:`load_paths`) and invisible to plain
    :func:`load_tally`.

    The write is atomic (temp file + ``os.replace``): readers — including a
    resuming :class:`~repro.distributed.checkpoint.CheckpointManager` —
    never observe a torn archive at ``path``, even if the writer is killed
    mid-save.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    header = _pack_tally(tally, arrays)
    header["format_version"] = _FORMAT_VERSION
    header["provenance"] = provenance
    if frontier is not None and len(frontier):
        span_headers = []
        for i, (start, stop, partial) in enumerate(frontier):
            sub = _pack_tally(partial, arrays, prefix=f"f{i}_")
            sub["start"] = int(start)
            sub["stop"] = int(stop)
            span_headers.append(sub)
        header["frontier"] = span_headers
    if tally.paths is not None:
        for name, array in tally.paths.to_arrays().items():
            arrays[f"p_{name}"] = array
        header["paths"] = {"n_layers": tally.paths.n_layers}
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def _read_header(data, path: Path) -> dict:
    header = json.loads(bytes(data["header"]).decode("utf-8"))
    if header.get("format_version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported tally format version {header.get('format_version')!r}"
        )
    return header


def _check_fingerprint(header: dict, path: Path, expected: str | None) -> None:
    if expected is None:
        return
    found = (header.get("provenance") or {}).get("fingerprint")
    if found != expected:
        raise ValueError(
            f"tally at {path} belongs to a different request: "
            f"provenance fingerprint {found!r} != expected {expected!r}"
        )


def load_tally(path: str | Path, *, expected_fingerprint: str | None = None) -> Tally:
    """Load a tally written by :func:`save_tally`.

    If the archive carries run provenance it is attached to the returned
    tally as a ``provenance`` dict attribute (``None`` otherwise).

    ``expected_fingerprint`` makes the load *self-verifying*: the archive
    must carry that request fingerprint in its provenance (see
    :func:`repro.service.request_fingerprint`) or a ``ValueError`` is
    raised.  The content-addressed result store uses this to detect stale
    or foreign artifacts instead of serving them as answers.
    """
    path = Path(path)
    with np.load(path) as data:
        header = _read_header(data, path)
        _check_fingerprint(header, path, expected_fingerprint)
        tally = _unpack_tally(header, data)
        tally.provenance = header.get("provenance")
    return tally


def archive_summary(path: str | Path) -> dict:
    """Cheap metadata peek: provenance + optional-section layout, no tallies.

    Reads only the JSON header member of the archive.  Returns::

        {
            "provenance": dict | None,
            "frontier_spans": [(start, stop), ...],   # [] without a frontier
            "sections": ["frontier", "paths", ...],    # optional sections present
        }

    ``sections`` names the optional payloads the archive carries beyond the
    plain tally: ``"frontier"`` (budget-extension span partials, see
    :func:`load_frontier`) and ``"paths"`` (per-detected-photon path
    records, see :func:`load_paths`).  Used by the result store to rebuild
    its index from artifacts on disk without deserialising any arrays.
    """
    path = Path(path)
    with np.load(path) as data:
        header = _read_header(data, path)
    spans = [
        (int(sub["start"]), int(sub["stop"]))
        for sub in header.get("frontier") or []
    ]
    sections = []
    if spans:
        sections.append("frontier")
    if header.get("paths") is not None:
        sections.append("paths")
    return {
        "provenance": header.get("provenance"),
        "frontier_spans": spans,
        "sections": sections,
    }


def load_paths(
    path: str | Path, *, expected_fingerprint: str | None = None
) -> PathRecords | None:
    """Load the per-detected-photon path records stored in an archive, if any.

    Returns ``None`` when the archive carries no records (saves of runs
    without ``capture_paths``, or archives predating path capture).  Like
    :func:`load_tally`, ``expected_fingerprint`` makes the read
    self-verifying against the provenance fingerprint.
    """
    path = Path(path)
    with np.load(path) as data:
        header = _read_header(data, path)
        _check_fingerprint(header, path, expected_fingerprint)
        meta = header.get("paths")
        if meta is None:
            return None
        arrays = {
            key: data[f"p_{key}"]
            for key in (
                "layer_paths", "weight", "opl", "max_depth",
                "detector", "keys", "lengths",
            )
        }
    return PathRecords.from_arrays(int(meta["n_layers"]), arrays)


def load_frontier(
    path: str | Path, *, expected_fingerprint: str | None = None
) -> TallyFrontier | None:
    """Load the reduction frontier stored in an archive, if any.

    Returns ``None`` when the archive carries no frontier (format-1
    archives, or saves that did not request capture).  Like
    :func:`load_tally`, ``expected_fingerprint`` makes the read
    self-verifying against the provenance fingerprint.
    """
    path = Path(path)
    with np.load(path) as data:
        header = _read_header(data, path)
        _check_fingerprint(header, path, expected_fingerprint)
        span_headers = header.get("frontier")
        if not span_headers:
            return None
        spans = []
        for i, sub in enumerate(span_headers):
            partial = _unpack_tally(sub, data, prefix=f"f{i}_")
            spans.append((int(sub["start"]), int(sub["stop"]), partial))
    return TallyFrontier(spans)
