"""Zero-copy binary tally codec for the distributed transports.

Pickling a :class:`~repro.core.tally.Tally` rebuilds every ndarray, stat
and histogram object on the receiving side and copies each array out of the
pickle stream.  On the coordinator — which deserialises *every* worker's
result — that object churn is the paper's classic master bottleneck.  This
module replaces the pickled tally with a single self-describing buffer:

    ┌──────────────────────────────────────────────────────────────┐
    │ magic ``b"RTLY"`` · u16 version · u32 header length   (16 B) │
    ├──────────────────────────────────────────────────────────────┤
    │ JSON manifest: scalars, RunningStats, RecordConfig,          │
    │ and an array table of ``{name, dtype, shape, offset}``       │
    ├──────────────────────────────────────────────────────────────┤
    │ raw ndarray bytes, each 8-byte aligned                       │
    └──────────────────────────────────────────────────────────────┘

:func:`decode_tally` reconstructs arrays as ``np.frombuffer`` **views into
the received buffer** — no copy, no per-array allocation.  Views inherit
the buffer's mutability: decode from a ``bytearray`` (what the network
layer's ``recv_into`` and pickle round-trips of :class:`EncodedTally`
produce) and the tally is writable, so the reducer can merge siblings into
it in place; decode from immutable ``bytes`` and the arrays are read-only
(merge sites must treat such a tally as unowned).

The format is versioned: a decoder refuses buffers whose magic or version
it does not understand, so the codec can evolve without silent corruption.
The codec composes with, and is orthogonal to, the frame-level zlib
compression negotiated by :mod:`repro.distributed.net`.
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass

import numpy as np

from ..core.config import RecordConfig
from ..core.tally import Tally
from ..detect.records import Histogram, PathRecords
from .results import (
    _grid_spec_from_dict,
    _grid_spec_to_dict,
    _stat_from_list,
    _stat_to_list,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "EncodedTally",
    "decode_tally",
    "encode_tally",
    "pickled_baseline_bytes",
]

#: Bump on any incompatible change to the buffer layout or manifest schema.
CODEC_VERSION = 1

_MAGIC = b"RTLY"
#: magic, version, header(manifest) length; padded to 16 bytes so the
#: manifest starts aligned.
_PREAMBLE = struct.Struct("<4sHxxI4x")
_ALIGN = 8


class CodecError(ValueError):
    """The buffer is not a tally this codec (version) can decode."""


def _pad(n: int) -> int:
    return (-n) % _ALIGN


#: (name, attribute) pairs of the optional histogram recordings.
_HISTS = ("pathlength_hist", "reflectance_rho_hist", "penetration_hist")


def encode_tally(tally: Tally) -> bytearray:
    """Serialise ``tally`` into one contiguous, self-describing buffer.

    Returns a ``bytearray`` (not ``bytes``) deliberately: pickle preserves
    the type, so a buffer that crosses a process pool still decodes into
    *writable* zero-copy views on the other side.
    """
    arrays: list[tuple[str, np.ndarray]] = [
        ("absorbed_by_layer", tally.absorbed_by_layer)
    ]
    if tally.absorption_grid is not None:
        arrays.append(("absorption_grid", tally.absorption_grid))
    if tally.path_grid is not None:
        arrays.append(("path_grid", tally.path_grid))
    for name in _HISTS:
        hist = getattr(tally, name)
        if hist is not None:
            arrays.append((f"{name}_edges", hist.edges))
            arrays.append((f"{name}_counts", hist.counts))
    paths_meta = None
    if tally.paths is not None:
        # Records must be sealed before crossing a transport (the worker
        # seals under its task index right after the kernel returns).
        for name, array in tally.paths.to_arrays().items():
            arrays.append((f"paths_{name}", array))
        paths_meta = {"n_layers": tally.paths.n_layers}

    table = []
    offset = 0  # relative to the start of the array section
    prepared: list[np.ndarray] = []
    for name, array in arrays:
        data = np.ascontiguousarray(array)
        prepared.append(data)
        table.append(
            {
                "name": name,
                "dtype": data.dtype.str,
                "shape": list(data.shape),
                "offset": offset,
            }
        )
        offset += data.nbytes + _pad(data.nbytes)

    r = tally.records
    manifest = json.dumps(
        {
            "n_layers": tally.n_layers,
            "n_launched": tally.n_launched,
            "specular_weight": tally.specular_weight,
            "diffuse_reflectance_weight": tally.diffuse_reflectance_weight,
            "transmittance_weight": tally.transmittance_weight,
            "lost_weight": tally.lost_weight,
            "roulette_net_weight": tally.roulette_net_weight,
            "detected_count": tally.detected_count,
            "detected_weight": tally.detected_weight,
            "pathlength": _stat_to_list(tally.pathlength),
            "penetration_depth": _stat_to_list(tally.penetration_depth),
            "records": {
                "absorption_grid": _grid_spec_to_dict(r.absorption_grid),
                "path_grid": _grid_spec_to_dict(r.path_grid),
                "pathlength_bins": (
                    list(r.pathlength_bins) if r.pathlength_bins else None
                ),
                "reflectance_rho_bins": (
                    list(r.reflectance_rho_bins) if r.reflectance_rho_bins else None
                ),
                "penetration_bins": (
                    list(r.penetration_bins) if r.penetration_bins else None
                ),
            },
            "paths": paths_meta,
            "arrays": table,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    manifest += b" " * _pad(len(manifest))

    buf = bytearray(_PREAMBLE.size + len(manifest) + offset)
    _PREAMBLE.pack_into(buf, 0, _MAGIC, CODEC_VERSION, len(manifest))
    buf[_PREAMBLE.size : _PREAMBLE.size + len(manifest)] = manifest
    base = _PREAMBLE.size + len(manifest)
    for entry, data in zip(table, prepared):
        start = base + entry["offset"]
        buf[start : start + data.nbytes] = data.tobytes()
    return buf


def decode_tally(buf: bytes | bytearray | memoryview) -> Tally:
    """Rebuild a :class:`Tally` whose arrays are zero-copy views into ``buf``.

    The views are writable iff ``buf`` is (``bytearray``: writable;
    ``bytes``: read-only).  Raises :class:`CodecError` on a foreign,
    truncated or future-versioned buffer.
    """
    view = memoryview(buf)
    if len(view) < _PREAMBLE.size:
        raise CodecError(f"buffer of {len(view)} bytes is too short for a tally")
    magic, version, header_len = _PREAMBLE.unpack_from(view, 0)
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}: not an encoded tally")
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported tally codec version {version} (supported: {CODEC_VERSION})"
        )
    base = _PREAMBLE.size + header_len
    if len(view) < base:
        raise CodecError("truncated tally buffer: manifest incomplete")
    try:
        manifest = json.loads(bytes(view[_PREAMBLE.size : base]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"corrupt tally manifest: {exc}") from exc

    views: dict[str, np.ndarray] = {}
    for entry in manifest["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        start = base + entry["offset"]
        if start + count * dtype.itemsize > len(view):
            raise CodecError(
                f"truncated tally buffer: array {entry['name']!r} out of bounds"
            )
        views[entry["name"]] = np.frombuffer(
            buf, dtype=dtype, count=count, offset=start
        ).reshape(shape)

    rd = manifest["records"]
    records = RecordConfig(
        absorption_grid=_grid_spec_from_dict(rd["absorption_grid"]),
        path_grid=_grid_spec_from_dict(rd["path_grid"]),
        pathlength_bins=(
            tuple(rd["pathlength_bins"]) if rd["pathlength_bins"] else None
        ),
        reflectance_rho_bins=(
            tuple(rd["reflectance_rho_bins"]) if rd["reflectance_rho_bins"] else None
        ),
        penetration_bins=(
            tuple(rd["penetration_bins"]) if rd["penetration_bins"] else None
        ),
    )
    tally = Tally(
        n_layers=manifest["n_layers"],
        records=records,
        n_launched=manifest["n_launched"],
        specular_weight=manifest["specular_weight"],
        diffuse_reflectance_weight=manifest["diffuse_reflectance_weight"],
        transmittance_weight=manifest["transmittance_weight"],
        lost_weight=manifest["lost_weight"],
        roulette_net_weight=manifest["roulette_net_weight"],
        detected_count=manifest["detected_count"],
        detected_weight=manifest["detected_weight"],
        absorbed_by_layer=views["absorbed_by_layer"],
        pathlength=_stat_from_list(manifest["pathlength"]),
        penetration_depth=_stat_from_list(manifest["penetration_depth"]),
    )
    if "absorption_grid" in views:
        tally.absorption_grid = views["absorption_grid"]
    if "path_grid" in views:
        tally.path_grid = views["path_grid"]
    for name in _HISTS:
        if f"{name}_edges" in views:
            setattr(
                tally,
                name,
                Histogram(edges=views[f"{name}_edges"], counts=views[f"{name}_counts"]),
            )
    paths_meta = manifest.get("paths")
    if paths_meta is not None:
        tally.paths = PathRecords.from_arrays(
            int(paths_meta["n_layers"]),
            {
                key: views[f"paths_{key}"]
                for key in (
                    "layer_paths", "weight", "opl", "max_depth",
                    "detector", "keys", "lengths",
                )
            },
        )
    return tally


@dataclass
class EncodedTally:
    """A tally in codec form, ready for any byte transport.

    Travels inside protocol messages in place of a live :class:`Tally`;
    the receiving side calls :meth:`decode` (or
    :func:`repro.distributed.protocol.thaw_result`) exactly once, at the
    point the arrays are actually needed.
    """

    payload: bytearray

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def decode(self) -> Tally:
        return decode_tally(self.payload)


#: Pickle-size baselines keyed by tally shape — see
#: :func:`pickled_baseline_bytes`.
_baselines: dict[tuple[int, RecordConfig], int] = {}


def pickled_baseline_bytes(tally: Tally) -> int:
    """What pickling this tally would have cost, calibrated once per shape.

    The ``codec.bytes_saved`` telemetry compares the codec payload against
    the pickle the wire used to carry.  Pickling every tally just to
    measure it would reintroduce the cost the codec removes, so the
    baseline is measured once per ``(n_layers, records)`` shape — tallies
    of one run share a shape, and their pickles differ by at most a few
    bytes of varint wiggle.
    """
    key = (tally.n_layers, tally.records)
    cached = _baselines.get(key)
    if cached is None:
        cached = len(pickle.dumps(tally, protocol=pickle.HIGHEST_PROTOCOL))
        _baselines[key] = cached
    return cached
