"""Plain-text table formatting for reports and benches.

The benches regenerate the paper's tables on stdout; this keeps the
formatting in one place and aligned.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are padded to the widest cell.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
