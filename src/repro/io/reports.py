"""Persistence of distributed run reports.

A production campaign wants more than the merged tally on disk: per-task
timings reconstruct worker utilisation, and per-task tallies feed the
uncertainty and convergence analyses (:mod:`repro.analysis.uncertainty`,
:mod:`repro.analysis.convergence`).  ``save_report``/``load_report``
round-trip a full :class:`~repro.distributed.datamanager.RunReport` as a
directory of one merged-tally archive, one per-task tally archive and a
JSON manifest.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..distributed.datamanager import RunReport
from ..distributed.health import WorkerStats
from ..distributed.protocol import TaskResult
from .results import load_tally, save_tally

__all__ = ["save_report", "load_report"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def save_report(directory: str | Path, report: RunReport) -> Path:
    """Write a run report to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    save_tally(directory / "merged.npz", report.tally)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "wall_seconds": report.wall_seconds,
        "retries": report.retries,
        "speculative_duplicates": report.speculative_duplicates,
        "worker_health": {
            worker_id: stats.as_dict()
            for worker_id, stats in report.worker_health.items()
        },
        "tasks": [],
    }
    for result in report.task_results:
        entry = {
            "task_index": result.task_index,
            "worker_id": result.worker_id,
            "elapsed_seconds": result.elapsed_seconds,
            "attempt": result.attempt,
            "n_photons": result.photons,
        }
        # Runs with retain_task_tallies=False carry metadata-only results;
        # only the merged tally exists to persist.
        if result.tally is not None:
            filename = f"task-{result.task_index:06d}.npz"
            save_tally(directory / filename, result.tally)
            entry["tally"] = filename
        manifest["tasks"].append(entry)
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def load_report(directory: str | Path) -> RunReport:
    """Load a report written by :func:`save_report`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported report format version {manifest.get('format_version')!r}"
        )
    task_results = [
        TaskResult(
            task_index=entry["task_index"],
            tally=(
                load_tally(directory / entry["tally"])
                if entry.get("tally") is not None
                else None
            ),
            worker_id=entry["worker_id"],
            elapsed_seconds=entry["elapsed_seconds"],
            attempt=entry["attempt"],
            n_photons=entry.get("n_photons"),
        )
        for entry in manifest["tasks"]
    ]
    return RunReport(
        tally=load_tally(directory / "merged.npz"),
        task_results=task_results,
        wall_seconds=manifest["wall_seconds"],
        retries=manifest["retries"],
        speculative_duplicates=manifest.get("speculative_duplicates", 0),
        worker_health={
            worker_id: WorkerStats.from_dict(d)
            for worker_id, d in manifest.get("worker_health", {}).items()
        },
    )
