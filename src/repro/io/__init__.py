"""Result persistence, report formatting and the zero-copy tally codec."""

from .codec import CodecError, EncodedTally, decode_tally, encode_tally
from .reports import load_report, save_report
from .results import (
    archive_summary,
    load_frontier,
    load_paths,
    load_tally,
    save_tally,
)
from .tables import format_table

__all__ = [
    "CodecError",
    "archive_summary",
    "EncodedTally",
    "decode_tally",
    "encode_tally",
    "format_table",
    "load_frontier",
    "load_paths",
    "load_report",
    "load_tally",
    "save_report",
    "save_tally",
]
