"""Result persistence and report formatting."""

from .reports import load_report, save_report
from .results import load_tally, save_tally
from .tables import format_table

__all__ = [
    "format_table",
    "load_report",
    "load_tally",
    "save_report",
    "save_tally",
]
