"""Stdlib-only HTTP front end for the simulation service.

A :class:`ServiceServer` wraps a :class:`~repro.service.jobs.JobManager`
behind ``http.server.ThreadingHTTPServer`` — no framework, no third-party
dependency, in keeping with the repo's stdlib+numpy discipline.  The API:

``POST /v2/runs``
    Submit a run.  Body: a JSON object with the physics fields of a
    :class:`~repro.api.RunRequest` (``model``, ``n_photons``, ``seed``,
    ``kernel``, ``task_size``, ``detector_spacing``, ``gate``,
    ``boundary_mode``) plus local execution knobs (``workers``,
    ``backend``, ``retain_task_tallies``, ``capture_paths``).  Optional
    headers: ``X-Priority: high|normal|low`` (queue class) and
    ``X-Client`` (admission-control identity; defaults to the peer
    address).  Returns ``200`` with the job status when the result was
    already cached, ``202`` otherwise; ``429`` (rate/quota, with
    ``Retry-After``) or ``503`` (queue saturated or draining) under
    admission control.
``GET /v2/runs/<job_id>``
    Job status (state, fingerprint, cache/coalesce/recovered flags,
    timings, error).
``GET /v2/results/<fingerprint>``
    The stored tally as the raw ``.npz`` archive written by
    :func:`repro.io.save_tally` — load it with
    :func:`repro.io.load_tally`.  ``404`` until the run has completed.
``GET /v2/metrics``
    JSON snapshot of the service metrics registry (cache hits/misses,
    coalesced submissions, admission decisions, queue depth, journal
    fsync latency, job latency, kernel counters).

The v2 surface:

* **Uniform error envelope.**  Every error response carries
  ``{"error": {"code": <machine-readable>, "message": <human-readable>,
  "retry_after": <seconds|null>}}`` — admission rejections use the
  controller's reason as the code (``rate``, ``inflight``, ``saturated``,
  ``over_budget``) and still set the ``Retry-After`` header.
* **Cache provenance.**  Job payloads report how the cache served them via
  ``cache`` (``"exact"`` / ``"prefix"`` / ``"derived"`` / ``"miss"``);
  prefix extensions add ``base_fingerprint`` and ``delta_photons``,
  derivations add ``base_fingerprint`` and ``perturbation``.
* **Partial-range runs.**  Requests may carry ``task_range: [lo, hi)``
  (task indices) to simulate a slice of the budget; the partial tally is
  cached under its own fingerprint.

The retired ``/v1`` prefix (an alias of ``/v2`` for one release) now
answers ``410 Gone`` with the v2 error envelope naming the ``/v2``
replacement path — a machine-actionable pointer instead of a silent
``404``.

Responses are JSON except for the archive endpoint
(``application/octet-stream``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import RunRequest
from .admission import AdmissionController
from .jobs import JobManager, JobState, PRIORITIES

__all__ = ["ServiceServer", "request_from_json", "request_to_json"]

#: RunRequest fields a remote caller may set.  Everything else — mode,
#: host/port, checkpointing, telemetry, callbacks — is the server's
#: business, not the wire's.
_REQUEST_FIELDS = frozenset({
    "model",
    "n_photons",
    "seed",
    "kernel",
    "task_size",
    "workers",
    "backend",
    "detector_spacing",
    "gate",
    "boundary_mode",
    "retain_task_tallies",
    "task_range",
    "capture_paths",
})


def request_from_json(payload: object) -> RunRequest:
    """Build a :class:`RunRequest` from an untrusted JSON body.

    Only whitelisted fields are accepted (unknown keys are a hard error so
    typos fail loudly instead of silently simulating the wrong thing), and
    the resulting request is validated by ``RunRequest`` itself.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown request field(s) {unknown}; allowed: {sorted(_REQUEST_FIELDS)}"
        )
    if "model" not in payload:
        raise ValueError("request must name a 'model'")
    kwargs = dict(payload)
    if kwargs.get("gate") is not None:
        gate = kwargs["gate"]
        if not isinstance(gate, (list, tuple)) or len(gate) != 2:
            raise ValueError(f"gate must be a [l_min, l_max] pair, got {gate!r}")
        kwargs["gate"] = (float(gate[0]), float(gate[1]))
    if kwargs.get("task_range") is not None:
        task_range = kwargs["task_range"]
        if (
            not isinstance(task_range, (list, tuple))
            or len(task_range) != 2
            or not all(isinstance(v, int) for v in task_range)
        ):
            raise ValueError(
                f"task_range must be a [lo, hi) pair of task indices, "
                f"got {task_range!r}"
            )
        kwargs["task_range"] = (int(task_range[0]), int(task_range[1]))
    try:
        return RunRequest(**kwargs)
    except TypeError as exc:
        raise ValueError(str(exc)) from None


def request_to_json(request: RunRequest) -> dict | None:
    """The wire form of a request, or ``None`` when the wire can't carry it.

    The inverse of :func:`request_from_json`, used by the job journal: a
    journaled request must round-trip *exactly* (same fingerprint, same
    RNG consumption) or not at all.  Requests built from an explicit
    ``config``, carrying custom ``records``, a ``sub_batch`` override
    (changes RNG consumption but not the fingerprint) or a non-local
    ``mode`` are therefore unexpressible — the journal records them
    without a payload and refuses to replay them, rather than silently
    re-simulating something else.  So is a request carrying an injected
    ``frontier`` (it changes which tasks are simulated) or an explicit
    ``capture_frontier`` flag (dropping it would silently produce a
    non-extendable archive on replay).
    """
    if (
        request.model is None
        or request.records is not None
        or request.sub_batch is not None
        or request.mode != "local"
        or request.frontier is not None
        or request.capture_frontier
    ):
        return None
    payload = {}
    for name in sorted(_REQUEST_FIELDS):
        value = getattr(request, name)
        payload[name] = list(value) if isinstance(value, tuple) else value
    return payload


class _Handler(BaseHTTPRequestHandler):
    """One request; routing only — all state lives in the JobManager."""

    server_ref: "ServiceServer"  # injected by ServiceServer via a subclass attr
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server_ref.manager

    # ----------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the service speaks through /v2/metrics, not stderr

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, data: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        """The v2 error envelope: one shape for every failure.

        ``retry_after`` (seconds) doubles as the ``Retry-After`` header,
        rounded up to at least 1 for header validity.
        """
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = (
                f"{retry_after:.0f}" if retry_after >= 1 else "1"
            )
        self._send_json(
            status,
            {"error": {"code": code, "message": message,
                       "retry_after": retry_after}},
            headers=headers,
        )

    # ------------------------------------------------------------------ routes
    #: Path prefixes served.  /v1 was an alias of /v2 for one release and
    #: is now retired: every /v1 path answers 410 Gone (see _retired).
    _API_VERSIONS = ("v2",)

    def _retired(self) -> bool:
        """Answer retired ``/v1`` paths with ``410 Gone``; True if handled.

        The envelope's message names the exact ``/v2`` replacement path so
        a stale client's error log is its own migration guide.
        """
        parts = [p for p in self.path.split("/") if p]
        if not parts or parts[0] != "v1":
            return False
        replacement = "/".join(["/v2", *parts[1:]])
        self._send_error(
            410,
            "gone",
            f"the /v1 API has been retired; use {replacement}",
        )
        return True

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self._retired():
            return
        if self.path.rstrip("/") != "/v2/runs":
            self._send_error(404, "not_found", f"no such endpoint {self.path!r}")
            return
        server = self.server_ref
        if server.draining:
            self._send_error(
                503, "draining", "draining: not admitting new runs",
                retry_after=30.0,
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            request = request_from_json(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_error(400, "bad_request", str(exc))
            return
        priority = self.headers.get("X-Priority", "normal")
        if priority not in PRIORITIES:
            self._send_error(
                400, "bad_request",
                f"unknown priority {priority!r}; choose from {sorted(PRIORITIES)}",
            )
            return
        client = self.headers.get("X-Client") or self.client_address[0]
        admission = server.admission
        if admission is not None:
            decision = admission.admit(
                client, request, queue_depth=self.manager.queue_depth()
            )
            if not decision.admitted:
                self._send_error(
                    decision.status,
                    decision.reason or "rejected",
                    f"admission refused: {decision.reason}",
                    retry_after=decision.retry_after,
                )
                return
        try:
            job = self.manager.submit(request, priority=priority, client=client)
        except RuntimeError as exc:  # manager closed or draining
            self._send_error(503, "unavailable", str(exc), retry_after=30.0)
            return
        if admission is not None:
            admission.track(client, job)
        status = 200 if job.state == JobState.DONE else 202
        self._send_json(status, job.as_dict())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self._retired():
            return
        parts = [p for p in self.path.split("/") if p]
        version = parts[0] if parts else None
        if version not in self._API_VERSIONS:
            self._send_error(404, "not_found", f"no such endpoint {self.path!r}")
        elif parts[1:] == ["metrics"]:
            self._send_json(200, self.manager.telemetry.snapshot())
        elif parts[1:] == ["healthz"]:
            self._send_json(
                200, {"ok": True, "draining": self.server_ref.draining}
            )
        elif len(parts) == 3 and parts[1] == "runs":
            job = self.manager.job(parts[2])
            if job is None:
                self._send_error(404, "not_found", f"unknown job {parts[2]!r}")
            else:
                self._send_json(200, job.as_dict())
        elif len(parts) == 3 and parts[1] == "results":
            self._get_result(parts[2])
        else:
            self._send_error(404, "not_found", f"no such endpoint {self.path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        if self._retired():
            return
        parts = [p for p in self.path.split("/") if p]
        if len(parts) == 3 and parts[0] in self._API_VERSIONS and parts[1] == "runs":
            if self.manager.cancel(parts[2]):
                self._send_json(200, self.manager.job(parts[2]).as_dict())
            else:
                self._send_error(
                    409, "not_cancellable", f"job {parts[2]!r} not cancellable"
                )
        else:
            self._send_error(404, "not_found", f"no such endpoint {self.path!r}")

    def _get_result(self, fingerprint: str) -> None:
        store = self.manager.store
        if store is None:
            self._send_error(404, "no_store", "server runs without a result store")
            return
        try:
            data = store.read_bytes(fingerprint)
        except ValueError as exc:  # malformed fingerprint
            self._send_error(400, "bad_request", str(exc))
            return
        if data is None:
            self._send_error(404, "not_found", f"no result for {fingerprint!r}")
            return
        self.manager.telemetry.count("service.results.served")
        self._send_bytes(data, "application/octet-stream")


class ServiceServer:
    """The HTTP face of a :class:`JobManager`.

    ``port=0`` binds a free port (read :attr:`port` after construction).
    :meth:`start` serves on a daemon thread; :meth:`serve_forever` serves on
    the calling thread (the CLI's foreground mode).  Closing the server
    also closes the manager unless it was caller-owned
    (``close(shutdown_manager=False)``).  :meth:`close` is idempotent and
    joins both the HTTP thread and the manager's worker threads, so a
    bounced server never leaks threads.  An optional
    :class:`~repro.service.admission.AdmissionController` guards
    ``POST /v2/runs``; :meth:`drain` is the graceful-shutdown path (stop
    admitting → let flights checkpoint/finish → close).
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionController | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.manager = manager
        self.admission = admission
        self.drain_timeout = drain_timeout
        self.draining = False
        if admission is not None and admission.telemetry is None:
            admission.telemetry = manager.telemetry
        handler = type("BoundHandler", (_Handler,), {"server_ref": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serving = False
        self._closed = False
        self._close_lock = threading.Lock()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        self._httpd.serve_forever()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: refuse new runs, let running jobs settle, close.

        Returns ``True`` when every job settled within ``timeout``
        (default :attr:`drain_timeout`).  Jobs still running at the
        deadline keep their journal records and checkpoints, so a
        restarted server resumes them; either way the listener and the
        manager are closed (worker threads joined) before returning.
        """
        if timeout is None:
            timeout = self.drain_timeout
        self.draining = True  # handler answers 503 from here on
        drained = self.manager.drain(timeout)
        self.close()
        return drained

    def close(self, *, shutdown_manager: bool = True) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._serving:
            # shutdown() waits on the serve loop; calling it on a server
            # that never served would block forever.
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if shutdown_manager:
            self.manager.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
