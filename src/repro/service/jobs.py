"""Async job manager: dedup, coalesce, execute with bounded concurrency.

The paper's platform answers one question per campaign; a *serving* system
faces many callers asking overlapping questions concurrently.  The
:class:`JobManager` is the piece that exploits determinism at submission
time:

1. **Cache check** — the request's fingerprint is looked up in the
   :class:`~repro.service.store.ResultStore`; a hit completes the job
   immediately, no simulation.
2. **Coalescing** — if an identical request is already *in flight*, the new
   submission attaches to the running flight instead of starting a second
   simulation: N concurrent identical submissions cost exactly one run, and
   every attached job receives the same result.
3. **Execution** — cache-cold, un-coalesced work runs through the
   :func:`repro.api.run` facade on a bounded thread pool (each run may
   itself fan out over its own process/thread backend).

Job lifecycle: ``queued → running → done | failed | cancelled``.  A queued
job can be cancelled; cancelling every job of a flight cancels the flight
(if it has not started).  All state transitions are metered into
:mod:`repro.observe` — cache hits/misses, coalesced submissions, a
queue-depth gauge and a job-latency histogram.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from ..api import RunRequest
from ..core.tally import Tally
from ..observe import Telemetry
from .fingerprint import request_fingerprint
from .store import ResultStore

__all__ = ["Job", "JobManager", "JobState"]


class JobState:
    """The five job states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One submission: identity, state and (eventually) a result."""

    id: str
    fingerprint: str
    request: RunRequest
    state: str = JobState.QUEUED
    cache_hit: bool = False
    coalesced: bool = False
    error: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    tally: Tally | None = None
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> Tally:
        """The job's tally, blocking until it settles.

        Raises ``TimeoutError`` if the job does not settle in time and
        ``RuntimeError`` if it failed or was cancelled.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} did not settle in {timeout}s")
        if self.state != JobState.DONE:
            raise RuntimeError(f"job {self.id} {self.state}: {self.error or ''}")
        assert self.tally is not None
        return self.tally

    def as_dict(self) -> dict:
        """JSON-serialisable view (the HTTP status payload)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }

    # -- transitions (called by the manager, under its lock) -----------------
    def _complete(self, tally: Tally, *, cache_hit: bool = False) -> None:
        self.tally = tally
        self.cache_hit = cache_hit
        self.state = JobState.DONE
        self.finished = time.time()
        self._done.set()

    def _fail(self, error: str) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished = time.time()
        self._done.set()

    def _cancel(self) -> None:
        self.state = JobState.CANCELLED
        self.finished = time.time()
        self._done.set()


class _Flight:
    """One in-flight simulation and the jobs riding on it."""

    def __init__(self, fingerprint: str, request: RunRequest) -> None:
        self.fingerprint = fingerprint
        self.request = request
        self.jobs: list[Job] = []
        self.future = None
        self.started = False
        self.started_at: float | None = None
        self.cancelled = False


class JobManager:
    """Submit/track/cancel simulation jobs with caching and coalescing."""

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        max_workers: int = 2,
        telemetry: Telemetry | None = None,
        runner=None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {max_workers}")
        self.store = store
        #: Always present: metrics accumulate even with a Null event sink,
        #: so ``/v1/metrics`` works out of the box.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if store is not None and store.telemetry is None:
            store.telemetry = self.telemetry
        self._runner = runner if runner is not None else self._default_runner
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._flights: dict[str, _Flight] = {}
        self._closed = False

    # -------------------------------------------------------------- lifecycle
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running flights."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        with self._lock:
            flights = list(self._flights.values())
            self._flights.clear()
        for flight in flights:
            if not flight.started:
                for job in flight.jobs:
                    job._cancel()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def submit(self, request: RunRequest) -> Job:
        """Register a run request; returns immediately with a :class:`Job`.

        The job may already be ``done`` (cache hit), attached to an
        in-flight identical request (``coalesced``), or queued for
        execution.
        """
        fingerprint = request_fingerprint(request)
        job = Job(id=uuid.uuid4().hex, fingerprint=fingerprint, request=request)
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            self._jobs[job.id] = job
        self.telemetry.count("service.jobs.submitted")

        if self.store is not None:
            tally = self.store.get(fingerprint)
            if tally is not None:
                job._complete(tally, cache_hit=True)
                self.telemetry.count("service.cache.hits")
                return job
        self.telemetry.count("service.cache.misses")

        with self._lock:
            flight = self._flights.get(fingerprint)
            if flight is not None:
                job.coalesced = True
                job.state = JobState.RUNNING if flight.started else JobState.QUEUED
                job.started = flight.started_at
                flight.jobs.append(job)
                self.telemetry.count("service.coalesced")
                self._update_queue_depth()
                return job
            flight = _Flight(fingerprint, request)
            flight.jobs.append(job)
            self._flights[fingerprint] = flight
            self._update_queue_depth()
        flight.future = self._executor.submit(self._execute, flight)
        return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; True if it was still cancellable.

        A coalesced job detaches from its flight without disturbing the
        other riders.  When the last rider of a not-yet-started flight
        cancels, the flight itself is cancelled.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in JobState.TERMINAL:
                return False
            flight = self._flights.get(job.fingerprint)
            if flight is not None and job in flight.jobs:
                flight.jobs.remove(job)
                if not flight.jobs:
                    flight.cancelled = True
                    if flight.future is not None:
                        flight.future.cancel()
                    if not flight.started:
                        self._flights.pop(job.fingerprint, None)
            job._cancel()
            self._update_queue_depth()
        self.telemetry.count("service.jobs.cancelled")
        return True

    # ------------------------------------------------------------- execution
    @staticmethod
    def _default_runner(request: RunRequest) -> Tally:
        from .. import api

        return api.run(request).tally

    def _execute(self, flight: _Flight) -> None:
        with self._lock:
            if flight.cancelled:
                self._flights.pop(flight.fingerprint, None)
                self._update_queue_depth()
                return
            flight.started = True
            flight.started_at = now = time.time()
            for job in flight.jobs:
                job.state = JobState.RUNNING
                job.started = now
        t0 = time.perf_counter()
        tally: Tally | None = None
        error: str | None = None
        try:
            request = flight.request
            if request.telemetry is None:
                # Attach the service telemetry so kernel/dispatch spans and
                # photon counters land in the same registry as the service
                # metrics (a request carrying its own telemetry keeps it).
                request = replace(request, telemetry=self.telemetry)
            tally = self._runner(request)
            if self.store is not None:
                self.store.put(
                    flight.fingerprint, tally, provenance=flight.request.provenance()
                )
        except Exception as exc:  # noqa: BLE001 - failures settle the job
            error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._flights.pop(flight.fingerprint, None)
            riders = list(flight.jobs)
            self._update_queue_depth()
        for job in riders:
            if job.state in JobState.TERMINAL:
                continue
            if error is None and tally is not None:
                job._complete(tally)
            else:
                job._fail(error or "no result")
        self.telemetry.observe("service.job.seconds", time.perf_counter() - t0)
        if error is not None:
            self.telemetry.count("service.jobs.failed")

    def _update_queue_depth(self) -> None:
        # Callers hold self._lock; gauge = jobs not yet settled.
        depth = sum(len(f.jobs) for f in self._flights.values())
        self.telemetry.registry.gauge("service.queue.depth").set(depth)
